"""Tests for the lattice-surgery extension model (Section 8.2)."""

import pytest

from repro.qec import DOUBLE_DEFECT, PLANAR
from repro.qec.lattice_surgery import (
    DEFAULT_LATTICE_SURGERY,
    LatticeSurgeryModel,
)


class TestLatticeSurgery:
    def test_latency_scales_with_distance_and_hops(self):
        m = DEFAULT_LATTICE_SURGERY
        assert m.communication_cycles(4, 9) == 2 * m.communication_cycles(2, 9)
        assert m.communication_cycles(2, 18) == 2 * m.communication_cycles(2, 9)

    def test_adjacent_patches_still_pay_one_merge_split(self):
        m = DEFAULT_LATTICE_SURGERY
        assert m.communication_cycles(0, 5) == m.communication_cycles(1, 5)
        assert m.communication_cycles(1, 5) == 10  # (1+1) * d

    def test_not_prefetchable(self):
        assert not DEFAULT_LATTICE_SURGERY.is_prefetchable()

    def test_channel_tiles(self):
        m = DEFAULT_LATTICE_SURGERY
        assert m.channel_tiles(1) == 0
        assert m.channel_tiles(5) == 4
        with pytest.raises(ValueError):
            m.channel_tiles(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatticeSurgeryModel(rounds_per_merge=0)
        with pytest.raises(ValueError):
            DEFAULT_LATTICE_SURGERY.communication_cycles(-1, 5)
        with pytest.raises(ValueError):
            DEFAULT_LATTICE_SURGERY.communication_cycles(2, 0)

    def test_section_8_2_argument(self):
        """Surgery has neither braiding's speed nor teleportation's
        prefetchability: for long-distance communication it is the
        slowest option, which is why the paper sets it aside."""
        comparison = DEFAULT_LATTICE_SURGERY.compare_against(
            PLANAR, DOUBLE_DEFECT, hops=8, distance=9
        )
        assert comparison["lattice-surgery"] > comparison["braiding"]
        assert (
            comparison["lattice-surgery"]
            > comparison["teleportation(prefetched)"]
        )

    def test_compare_requires_braiding_code(self):
        with pytest.raises(ValueError, match="braiding"):
            DEFAULT_LATTICE_SURGERY.compare_against(PLANAR, PLANAR, 2, 5)
