"""Tests for the surface code cost models and factory models."""

import pytest

from repro.qasm.gates import GateKind
from repro.qec import (
    DOUBLE_DEFECT,
    EPR_FACTORY,
    MAGIC_STATE_FACTORY,
    PLANAR,
    CommunicationStyle,
    ancilla_region_tiles,
    factories_needed,
)


class TestCodeModels:
    def test_planar_tile_is_smaller(self):
        """Paper Section 3: planar tiles need fewer qubits at equal d."""
        for d in (3, 5, 9, 15, 25):
            assert PLANAR.tile_qubits(d) < DOUBLE_DEFECT.tile_qubits(d)

    def test_planar_tile_formula(self):
        assert PLANAR.tile_qubits(3) == 25  # (2*3-1)^2
        assert PLANAR.tile_qubits(5) == 81

    def test_double_defect_area_factor(self):
        assert DOUBLE_DEFECT.tile_qubits(4) == 200  # 12.5 * 16

    def test_tile_ratio_roughly_constant(self):
        ratios = [
            DOUBLE_DEFECT.tile_qubits(d) / PLANAR.tile_qubits(d)
            for d in (5, 9, 15, 25)
        ]
        assert all(2.0 < r < 4.0 for r in ratios)

    def test_tile_qubits_validation(self):
        with pytest.raises(ValueError):
            PLANAR.tile_qubits(0)

    def test_communication_styles(self):
        assert PLANAR.communication is CommunicationStyle.TELEPORTATION
        assert DOUBLE_DEFECT.communication is CommunicationStyle.BRAIDING

    def test_prefetchability_matches_table1(self):
        assert PLANAR.communication.prefetchable
        assert not DOUBLE_DEFECT.communication.prefetchable

    def test_braid_two_qubit_cost_scales_with_distance(self):
        # Figure 5: two braid segments each stabilized for d cycles.
        assert DOUBLE_DEFECT.two_qubit_cycles(5) == 12  # 2d + 2
        assert DOUBLE_DEFECT.two_qubit_cycles(9) == 20

    def test_t_costs_more_than_cnot(self):
        for code in (PLANAR, DOUBLE_DEFECT):
            assert code.t_cycles(9) > code.two_qubit_cycles(9)

    @pytest.mark.parametrize(
        "kind",
        [
            GateKind.CLIFFORD_1Q,
            GateKind.CLIFFORD_2Q,
            GateKind.NON_CLIFFORD,
            GateKind.MEASUREMENT,
            GateKind.PREPARATION,
        ],
    )
    def test_op_cycles_all_kinds(self, kind):
        for code in (PLANAR, DOUBLE_DEFECT):
            assert code.op_cycles(kind, 9) > 0

    def test_composites_rejected(self):
        with pytest.raises(ValueError, match="decomposed"):
            PLANAR.op_cycles(GateKind.COMPOSITE, 9)


class TestFactories:
    def test_magic_state_factory_is_12_tiles(self):
        """Section 4.3: 'every magic state factory consumes 12 encoded
        qubits' [41]."""
        assert MAGIC_STATE_FACTORY.tiles == 12

    def test_epr_factory_cheaper(self):
        assert EPR_FACTORY.tiles < MAGIC_STATE_FACTORY.tiles

    def test_qubit_footprint(self):
        d = 5
        assert MAGIC_STATE_FACTORY.qubits(PLANAR, d) == 12 * 81

    def test_throughput_decreases_with_distance(self):
        assert MAGIC_STATE_FACTORY.throughput(15) < MAGIC_STATE_FACTORY.throughput(5)

    def test_factories_needed_scales_with_demand(self):
        few = factories_needed(0.01, MAGIC_STATE_FACTORY, 9)
        many = factories_needed(1.0, MAGIC_STATE_FACTORY, 9)
        assert many > few >= 1

    def test_factories_needed_zero_demand(self):
        assert factories_needed(0.0, MAGIC_STATE_FACTORY, 9) == 0

    def test_factories_needed_validation(self):
        with pytest.raises(ValueError):
            factories_needed(-1.0, MAGIC_STATE_FACTORY, 9)

    def test_ancilla_region_default_quarter(self):
        """Section 4.3: 1:4 ancilla-to-data ratio."""
        assert ancilla_region_tiles(100) == 25
        assert ancilla_region_tiles(10) == 3  # ceil

    def test_ancilla_region_validation(self):
        with pytest.raises(ValueError):
            ancilla_region_tiles(-1)
        with pytest.raises(ValueError):
            ancilla_region_tiles(10, ratio=0.0)
