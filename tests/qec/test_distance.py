"""Tests for code distance selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qec import (
    choose_distance,
    logical_error_rate,
    max_computation_size,
)
from repro.tech import CURRENT, OPTIMISTIC, Technology, technology_for_error_rate


class TestLogicalErrorRate:
    def test_decreases_with_distance(self):
        assert logical_error_rate(7, CURRENT) < logical_error_rate(5, CURRENT)

    def test_decreases_with_better_tech(self):
        assert logical_error_rate(5, OPTIMISTIC) < logical_error_rate(5, CURRENT)

    def test_formula(self):
        tech = Technology(physical_error_rate=1e-4, threshold_error_rate=1e-2)
        # (1e-2)^((5+1)/2) = 1e-6, times prefactor 0.03.
        assert logical_error_rate(5, tech) == pytest.approx(0.03e-6)

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            logical_error_rate(0, CURRENT)


class TestChooseDistance:
    def test_meets_target(self):
        for target in (1e-6, 1e-10, 1e-15):
            d = choose_distance(target, CURRENT)
            assert logical_error_rate(d, CURRENT) <= target

    def test_minimal_odd(self):
        d = choose_distance(1e-10, CURRENT)
        assert d % 2 == 1
        assert d >= 5
        # d-2 must NOT meet the target (minimality).
        assert logical_error_rate(d - 2, CURRENT) > 1e-10

    def test_easy_target_gives_smallest_code(self):
        assert choose_distance(0.5, OPTIMISTIC) == 3

    def test_better_tech_needs_smaller_distance(self):
        target = 1e-12
        assert choose_distance(target, OPTIMISTIC) < choose_distance(
            target, CURRENT
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_distance(0.0, CURRENT)
        with pytest.raises(ValueError):
            choose_distance(1.5, CURRENT)

    def test_near_threshold_tech_can_fail(self):
        tech = Technology(
            physical_error_rate=9.99e-3, threshold_error_rate=1e-2
        )
        with pytest.raises(ValueError, match="cannot reach"):
            choose_distance(1e-30, tech)

    @given(
        st.floats(min_value=1e-30, max_value=1e-2),
        st.sampled_from([1e-8, 1e-6, 1e-4, 1e-3]),
    )
    @settings(max_examples=80)
    def test_always_meets_target_property(self, target, p_phys):
        tech = technology_for_error_rate(p_phys)
        d = choose_distance(target, tech)
        assert d % 2 == 1
        assert logical_error_rate(d, tech) <= target


class TestMaxComputationSize:
    def test_inverse_of_budget(self):
        d = 9
        size = max_computation_size(d, CURRENT)
        assert size * logical_error_rate(d, CURRENT) == pytest.approx(0.5)

    def test_monotone_in_distance(self):
        assert max_computation_size(11, CURRENT) > max_computation_size(
            9, CURRENT
        )
