"""Shared braid simulation plans: golden equivalence, immutability, memo.

The plan refactor moves every policy-independent setup product (tasks,
prebound routes, DAG arrays, critical path) out of the simulator into a
:class:`~repro.network.plan.BraidPlan` shared by all seven policies of
a design point.  These tests pin three contracts:

* a plan-backed simulation is bit-identical to the reference loop for
  every policy (the plan must not observable-change anything);
* a plan's arrays are *unchanged* after simulations run from it (the
  mutation guard hashes them before and after);
* the process-wide memo builds one plan per design point and validates
  placement identity on hits.
"""

import pytest

from repro.network import (
    BraidMesh,
    BraidSimConfig,
    BraidSimulator,
    braid_plan,
    plan_memo_stats,
    reset_plan_memo,
    simulate_braids,
    simulate_braids_reference,
    simulate_plan,
)
from repro.network.plan import BraidPlan
from repro.partition import GridShape, naive_layout
from repro.qasm import Circuit
from repro.runner import StageCache
from repro.runner.stages import POLICIES, compute_frontend, compute_layout


def _contended_instance(cache):
    """A small real machine with enough contention to matter."""
    fe = compute_frontend(cache, "sq", 2, None)
    machine = compute_layout(cache, "sq", 2, None, True)
    return fe, machine


class TestPlanGolden:
    """One shared plan, all seven policies, bit-identical results."""

    @pytest.fixture(scope="class")
    def cache(self):
        return StageCache()

    @pytest.fixture(scope="class")
    def shared(self, cache):
        fe, machine = _contended_instance(cache)
        return machine, machine.plan(3, dag=fe.dag)

    @pytest.mark.parametrize("policy", range(7))
    def test_plan_backed_matches_reference(self, shared, policy):
        machine, plan = shared
        optimized = simulate_plan(plan, policy)
        mesh = BraidMesh(machine.grid.rows, machine.grid.cols)
        reference = simulate_braids_reference(
            machine.circuit, machine.placement, mesh, policy, 3,
            code=machine.code, factory_routers=machine.factory_routers,
            dag=plan.dag,
        )
        assert optimized == reference

    @pytest.mark.parametrize("policy", range(7))
    def test_synthetic_contention_from_shared_plan(self, policy):
        qubits = [f"q{i}" for i in range(4)]
        placement = naive_layout(qubits, GridShape(2, 2))
        c = Circuit(qubits=qubits)
        for i in range(4):
            for j in range(i + 1, 4):
                c.apply("CNOT", f"q{i}", f"q{j}")
        config = BraidSimConfig(adaptive_timeout=1, drop_timeout=3)
        plan = BraidPlan.build(
            c, placement, BraidMesh(2, 2), distance=3,
            max_detour=config.max_detour,
        )
        optimized = simulate_plan(plan, policy, config=config)
        reference = simulate_braids_reference(
            c, placement, BraidMesh(2, 2), policy, 3, config=config
        )
        assert optimized == reference


class TestPlanImmutability:
    def _fingerprint(self, plan):
        # criticality() materializes lazily on first use; force it first
        # so the fingerprint covers the array the policies share.
        return hash((
            plan.is_braid,
            plan.route_length,
            plan.segments,
            plan.in_degrees,
            plan.successors,
            plan.sources,
            plan.critical_path,
            tuple(plan.criticality()),
            tuple(task.index for task in plan.tasks),
        ))

    def test_shared_plan_unchanged_across_policies(self):
        cache = StageCache()
        fe, machine = _contended_instance(cache)
        plan = machine.plan(3, dag=fe.dag)
        before = self._fingerprint(plan)
        first = [simulate_plan(plan, p) for p in (0, 4, 5, 6)]
        assert self._fingerprint(plan) == before
        # Re-running from the same plan reproduces the results exactly:
        # nothing per-run leaked into the shared arrays.
        again = [simulate_plan(plan, p) for p in (0, 4, 5, 6)]
        assert first == again

    def test_plan_rejects_attribute_mutation(self):
        cache = StageCache()
        fe, machine = _contended_instance(cache)
        plan = machine.plan(3, dag=fe.dag)
        with pytest.raises(AttributeError):
            plan.critical_path = 0

    def test_plan_rejects_mismatched_detour_config(self):
        cache = StageCache()
        fe, machine = _contended_instance(cache)
        plan = machine.plan(3, dag=fe.dag)
        with pytest.raises(ValueError, match="max_detour"):
            BraidSimulator(
                policy=POLICIES[6],
                plan=plan,
                config=BraidSimConfig(max_detour=2),
            )


class TestPlanMemo:
    def test_simulate_braids_shares_one_build(self):
        reset_plan_memo()
        qubits = ["a", "b", "c", "d"]
        placement = naive_layout(qubits, GridShape(2, 2))
        c = Circuit(qubits=qubits)
        for i in range(3):
            c.apply("CNOT", qubits[i], qubits[i + 1])
        for policy in range(7):
            simulate_braids(c, placement, BraidMesh(2, 2), policy, 3)
        stats = plan_memo_stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 6
        # A different distance is a different plan.
        simulate_braids(c, placement, BraidMesh(2, 2), 6, 5)
        assert plan_memo_stats()["builds"] == 2

    def test_distinct_placements_do_not_alias(self):
        reset_plan_memo()
        qubits = ["a", "b", "c", "d"]
        c = Circuit(qubits=qubits)
        c.apply("CNOT", "a", "b")
        p1 = naive_layout(qubits, GridShape(2, 2))
        p2 = naive_layout(list(reversed(qubits)), GridShape(2, 2))
        r1 = simulate_braids(c, p1, BraidMesh(2, 2), 6, 3)
        r2 = simulate_braids(c, p2, BraidMesh(2, 2), 6, 3)
        assert plan_memo_stats()["builds"] == 2
        ref1 = simulate_braids_reference(c, p1, BraidMesh(2, 2), 6, 3)
        ref2 = simulate_braids_reference(c, p2, BraidMesh(2, 2), 6, 3)
        assert (r1, r2) == (ref1, ref2)

    def test_machine_plan_memoizes_per_distance(self):
        reset_plan_memo()
        cache = StageCache()
        fe, machine = _contended_instance(cache)
        plan_a = machine.plan(3, dag=fe.dag)
        plan_b = machine.plan(3, dag=fe.dag)
        plan_c = machine.plan(5, dag=fe.dag)
        assert plan_a is plan_b
        assert plan_c is not plan_a
        stats = plan_memo_stats()
        assert stats["builds"] == 2 and stats["hits"] == 1

    def test_reset_clears_counters_and_entries(self):
        reset_plan_memo()
        stats = plan_memo_stats()
        assert stats["builds"] == 0
        assert stats["hits"] == 0
        assert stats["plans"] == 0
        assert stats["capacity"] >= 8  # a Fig. 6 sweep's working set

    def test_memo_is_lru_bounded(self):
        from repro.network import plan as plan_module

        reset_plan_memo()
        qubits = ["a", "b"]
        placement = naive_layout(qubits, GridShape(1, 2))
        c = Circuit(qubits=qubits)
        c.apply("CNOT", "a", "b")
        for distance in range(1, plan_module.PLAN_MEMO_CAPACITY + 4):
            braid_plan(c, placement, BraidMesh(1, 2), distance=distance)
        stats = plan_memo_stats()
        assert stats["plans"] == plan_module.PLAN_MEMO_CAPACITY
        assert stats["builds"] == plan_module.PLAN_MEMO_CAPACITY + 3

    def test_mutating_a_planned_circuit_fails_loudly(self):
        reset_plan_memo()
        qubits = ["a", "b", "c"]
        placement = naive_layout(qubits, GridShape(1, 3))
        c = Circuit(qubits=qubits)
        c.apply("CNOT", "a", "b")
        first = simulate_braids(c, placement, BraidMesh(1, 3), 6, 3)
        assert first.operations == 1
        c.apply("CNOT", "b", "c")
        with pytest.raises(ValueError, match="changed length"):
            simulate_braids(c, placement, BraidMesh(1, 3), 6, 3)

    def test_explicit_plan_with_wrong_distance_rejected(self):
        cache = StageCache()
        fe, machine = _contended_instance(cache)
        plan = machine.plan(3, dag=fe.dag)
        with pytest.raises(ValueError, match="distance"):
            machine.simulate(6, 9, plan=plan)
        with pytest.raises(ValueError, match="distance"):
            BraidSimulator(policy=POLICIES[6], distance=9, plan=plan)
