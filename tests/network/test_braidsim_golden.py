"""Golden equivalence: optimized braid simulator vs the seed event loop.

The optimized core (flat event ints, mesh bitmasks, cached routes,
epoch early-outs) must be *bit-identical* to the pre-optimization
simulator preserved in ``repro.network._braidsim_reference`` -- same
schedule lengths, same braid/adaptive/drop counters, same utilization
floats.  These tests sweep every policy over small application
instances and over synthetic high-contention circuits (which exercise
adaptive routing and the drop/re-inject path); the full Figure 6 grid
is verified by ``python -m repro bench --reference`` (the CI perf job).

The scheduler-family policies (7 reservation-table, 8 matrix-
scoreboard) predate no seed loop to compare against, so their contract
is pinned the other way: a committed golden JSON
(``golden_policy_sched.json``) records their results on a small fixed
grid, and ``TestSchedulerFamilyGolden`` recomputes and compares every
field.  Refactors that change their scheduling decisions must update
the golden file deliberately.
"""

import json
from pathlib import Path

import pytest

from repro.network import (
    BraidMesh,
    BraidSimConfig,
    simulate_braids,
    simulate_braids_reference,
)
from repro.network.braidsim import simulate_plan
from repro.network.plan import BraidPlan
from repro.partition import GridShape, naive_layout
from repro.qasm import Circuit
from repro.runner import StageCache
from repro.runner.stages import POLICIES, compute_frontend, compute_layout

GOLDEN_PATH = Path(__file__).parent / "golden_policy_sched.json"


def assert_equivalent(circuit, placement, rows, cols, policy, distance,
                      factories=(), config=None, dag=None):
    optimized = simulate_braids(
        circuit, placement, BraidMesh(rows, cols), policy, distance,
        factory_routers=factories, config=config, dag=dag,
    )
    reference = simulate_braids_reference(
        circuit, placement, BraidMesh(rows, cols), policy, distance,
        factory_routers=factories, config=config, dag=dag,
    )
    assert optimized == reference
    return optimized


class TestSyntheticCircuits:
    """Hand-built circuits hitting contention, adaptivity, and drops."""

    @pytest.mark.parametrize("policy", range(7))
    def test_crossing_braids_tiny_mesh(self, policy):
        qubits = [f"q{i}" for i in range(4)]
        placement = naive_layout(qubits, GridShape(2, 2))
        c = Circuit(qubits=qubits)
        # All pairs interact: heavy crossing on a 2x2 mesh.
        for i in range(4):
            for j in range(i + 1, 4):
                c.apply("CNOT", f"q{i}", f"q{j}")
        result = assert_equivalent(c, placement, 2, 2, policy, 3)
        assert result.operations == 6

    @pytest.mark.parametrize("policy", range(7))
    def test_serializing_1x2_mesh_forces_drops(self, policy):
        qubits = ["q0", "q1"]
        placement = naive_layout(qubits, GridShape(1, 2))
        c = Circuit(qubits=qubits)
        for _ in range(6):
            c.apply("CNOT", "q0", "q1")
        config = BraidSimConfig(adaptive_timeout=1, drop_timeout=3)
        assert_equivalent(c, placement, 1, 2, policy, 4, config=config)

    @pytest.mark.parametrize("policy", (0, 1, 5, 6))
    def test_t_gates_with_factories(self, policy):
        qubits = [f"q{i}" for i in range(6)]
        placement = naive_layout(qubits, GridShape(2, 3))
        factories = ((2, 0), (2, 3))
        c = Circuit(qubits=qubits)
        for i in range(6):
            c.apply("T", f"q{i}")
        for i in range(5):
            c.apply("CNOT", f"q{i}", f"q{i + 1}")
        c.apply("H", "q0")
        assert_equivalent(c, placement, 2, 3, policy, 3, factories=factories)


class TestApplicationInstances:
    """Small real instances through the staged pipeline's machines."""

    @pytest.fixture(scope="class")
    def cache(self):
        return StageCache()

    @pytest.mark.parametrize("policy", range(7))
    @pytest.mark.parametrize("app,size", [("sq", 2), ("gse", 3)])
    def test_policy_grid(self, cache, app, size, policy):
        fe = compute_frontend(cache, app, size, None)
        optimize = POLICIES[policy].optimized_layout
        machine = compute_layout(cache, app, size, None, optimize)
        optimized = machine.simulate(POLICIES[policy], 3, dag=fe.dag)
        mesh = BraidMesh(machine.grid.rows, machine.grid.cols)
        reference = simulate_braids_reference(
            machine.circuit, machine.placement, mesh, policy, 3,
            code=machine.code, factory_routers=machine.factory_routers,
            dag=fe.dag,
        )
        assert optimized == reference

    @pytest.mark.parametrize(
        "policy,distance",
        [(1, 5), (6, 3)],  # p1/d5 hits adaptive routes, p6/d3 drops
    )
    def test_contended_parallel_app(self, cache, policy, distance):
        """An Ising instance big enough to need adaptivity or drops."""
        fe = compute_frontend(cache, "im", 8, None)
        machine = compute_layout(cache, "im", 8, None, True)
        optimized = machine.simulate(POLICIES[policy], distance, dag=fe.dag)
        mesh = BraidMesh(machine.grid.rows, machine.grid.cols)
        reference = simulate_braids_reference(
            machine.circuit, machine.placement, mesh, policy, distance,
            code=machine.code,
            factory_routers=machine.factory_routers,
            dag=fe.dag,
        )
        assert optimized == reference
        assert optimized.adaptive_routes + optimized.drops > 0, (
            "instance too small to exercise contention handling"
        )


class TestSchedulerFamilyGolden:
    """Policies 7/8 pinned against the committed golden JSON."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    @pytest.fixture(scope="class")
    def cache(self):
        return StageCache()

    def _plan(self, cache, app, size):
        fe = compute_frontend(cache, app, size, None)
        machine = compute_layout(cache, app, size, None, True)
        mesh = BraidMesh(machine.grid.rows, machine.grid.cols)
        return BraidPlan.build(
            machine.circuit, machine.placement, mesh, machine.code, 3,
            machine.factory_routers, dag=fe.dag,
        )

    @pytest.mark.parametrize("policy", (7, 8))
    @pytest.mark.parametrize(
        "app,size", [("sq", 2), ("gse", 3), ("im", 8)]
    )
    def test_pinned_results(self, golden, cache, app, size, policy):
        expected = golden[f"{app}[{size}]/d=3/p{policy}"]
        result = simulate_plan(self._plan(cache, app, size), policy)
        actual = {
            "schedule_length": result.schedule_length,
            "critical_path": result.critical_path,
            "operations": result.operations,
            "braids": result.braids,
            "adaptive_routes": result.adaptive_routes,
            "drops": result.drops,
            "mean_utilization": result.mean_utilization,
        }
        assert actual == expected

    def test_golden_covers_contention(self, golden):
        # The grid must keep exercising the scoreboard's drop and
        # adaptive paths, or the pin loses most of its power.
        assert any(
            entry["drops"] or entry["adaptive_routes"]
            for entry in golden.values()
        )
