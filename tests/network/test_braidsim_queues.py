"""The close-first ready-open queues vs the policy sort oracle.

``_FifoReadyQueue`` (Policy 5) and ``_BucketReadyQueue`` (Policy 6)
replace the per-fixpoint-iteration full sort with incremental
maintenance; these tests drive them through randomized add / remove /
re-stamp churn and assert the produced order matches
``Policy.open_sort_key`` — the same oracle the reference simulator
sorts with — at every step.  Full-simulation equivalence for the
policies that use the queues is covered by the golden tests and the
bench ``--reference`` pass.
"""

import random

from repro.network import (
    POLICIES,
    BraidSimConfig,
    simulate_braids,
    simulate_braids_reference,
)
from repro.network.braidsim import _BucketReadyQueue, _FifoReadyQueue
from repro.network.mesh import BraidMesh
from repro.partition import GridShape, naive_layout
from repro.qasm import Circuit

N_OPS = 64


def oracle_order(policy_num, ready, crit, length, arrival):
    policy = POLICIES[policy_num]
    key = policy.open_sort_key(
        crit.__getitem__,
        length.__getitem__,
        arrival.__getitem__,
        [crit[op] for op in ready],
    )
    return sorted(ready, key=key)


def churn(make_queue, policy_num, crit, length, seed):
    """Random add/remove/restamp schedule, checking order every step."""
    rng = random.Random(seed)
    arrival = [0] * N_OPS
    queue = make_queue(arrival)
    stamp = 0
    ready: set[int] = set()
    for _ in range(400):
        action = rng.random()
        if action < 0.5 and len(ready) < N_OPS:
            op = rng.choice([i for i in range(N_OPS) if i not in ready])
            stamp += 1
            arrival[op] = stamp
            ready.add(op)
            queue.add(op)
        elif action < 0.75 and ready:
            op = rng.choice(sorted(ready))
            ready.discard(op)
            queue.remove(op)
        elif ready:
            op = rng.choice(sorted(ready))
            stamp += 1
            arrival[op] = stamp
            queue.restamp(op)
        got = queue.ordered(ready)
        want = oracle_order(policy_num, ready, crit, length, arrival)
        assert got == want, (got, want)
    return arrival


class TestFifoReadyQueue:
    def test_matches_policy5_oracle_under_churn(self):
        arrival = [0] * N_OPS
        queue = _FifoReadyQueue(arrival)
        crit = [0] * N_OPS
        length = [0] * N_OPS

        rng = random.Random(7)
        stamp = 0
        ready: set[int] = set()
        for _ in range(500):
            action = rng.random()
            if action < 0.5 and len(ready) < N_OPS:
                op = rng.choice([i for i in range(N_OPS) if i not in ready])
                stamp += 1
                arrival[op] = stamp
                ready.add(op)
                queue.add(op)
            elif action < 0.75 and ready:
                op = rng.choice(sorted(ready))
                ready.discard(op)
                queue.remove(op)
            elif ready:
                op = rng.choice(sorted(ready))
                stamp += 1
                arrival[op] = stamp
                queue.restamp(op)
            got = queue.ordered(ready)
            want = oracle_order(5, ready, crit, length, arrival)
            assert got == want

    def test_compaction_preserves_order(self):
        arrival = [0] * N_OPS
        queue = _FifoReadyQueue(arrival)
        ready: set[int] = set()
        # Enough stale entries to force the compaction path repeatedly.
        for round_ in range(6):
            for op in range(N_OPS):
                arrival[op] = round_ * N_OPS + op + 1
                ready.add(op)
                queue.add(op)
            order = queue.ordered(ready)
            assert order == sorted(ready, key=arrival.__getitem__)
            for op in list(ready):
                ready.discard(op)
                queue.remove(op)
            assert queue.ordered(ready) == []


class TestBucketReadyQueue:
    def test_matches_policy6_oracle_under_churn(self):
        rng = random.Random(13)
        for seed in range(5):
            crit = [rng.randrange(6) for _ in range(N_OPS)]
            length = [rng.randrange(1, 9) for _ in range(N_OPS)]
            arrival = churn(
                lambda arr: _BucketReadyQueue(crit, length, arr),
                6,
                crit,
                length,
                seed,
            )
            assert max(arrival) >= 0  # churn completed

    def test_threshold_flip_resorts_bucket(self):
        # Two criticality groups; removing the high group flips the
        # low group from "long first" to ... it stays low-side, but the
        # *threshold value* moves onto it, flipping its length sign.
        crit = [2, 2, 1, 1, 1]
        length = [5, 3, 2, 7, 4]
        arrival = [0] * 5
        queue = _BucketReadyQueue(crit, length, arrival)
        ready: set[int] = set()
        for op in range(5):
            arrival[op] = op + 1
            ready.add(op)
            queue.add(op)
        assert queue.ordered(ready) == oracle_order(
            6, ready, crit, length, arrival
        )
        # Remove the high-criticality ops: the crit=1 bucket becomes
        # the top half and must re-sort ascending-by-length.
        for op in (0, 1):
            ready.discard(op)
            queue.remove(op)
        assert queue.ordered(ready) == oracle_order(
            6, ready, crit, length, arrival
        )


class TestCloseFirstGoldenWithDrops:
    """Drop-heavy close-first sims stay bit-identical to the seed loop.

    Drops re-stamp arrivals, which is the queues' subtlest transition
    (stale FIFO entries, bucket order-cache invalidation), so this
    hammers them specifically under both close-first policies.
    """

    def _congested(self):
        qubits = [f"q{i}" for i in range(9)]
        placement = naive_layout(qubits, GridShape(3, 3))
        c = Circuit(qubits=qubits)
        # Rotating long-range strides on a 3x3 mesh: overlapping routes
        # hold links for d cycles and starve each other into drops.
        for r in range(5):
            for i in range(9):
                j = (i + 1 + (r % 7)) % 9
                if i != j:
                    c.apply("CNOT", f"q{i}", f"q{j}")
        return c, placement

    def test_policies_5_and_6_with_aggressive_drops(self):
        circuit, placement = self._congested()
        config = BraidSimConfig(adaptive_timeout=1, drop_timeout=2)
        for policy in (5, 6):
            optimized = simulate_braids(
                circuit, placement, BraidMesh(3, 3), policy, 9,
                config=config,
            )
            reference = simulate_braids_reference(
                circuit, placement, BraidMesh(3, 3), policy, 9,
                config=config,
            )
            assert optimized == reference
            assert optimized.drops > 0  # the scenario really drops
