"""Scheduler-family invariants: reservation tables and the scoreboard.

Property tests over Hypothesis-generated plans pin the contracts the
classical-scheduler policies (7 reservation-table, 8 matrix-scoreboard)
are built on:

* a reservation schedule never double-books a link-cycle slot (its
  bookings replay into a fresh :class:`ReservationTable` without
  conflict);
* the achieved initiation interval is never below the link-pressure
  ``ii()`` lower bound;
* the scoreboard never selects an op whose dependency row still has
  unresolved bits (asserted inside an instrumented simulator);
* both policies yield makespans at or above the plan's
  policy-independent critical path, and the reservation policy's
  simulated schedule length equals the planner's makespan exactly
  (no drops, no adaptive reroutes — periodic issue by construction).

The ``check_sched`` IR pass is exercised both ways: clean artifacts
produce zero diagnostics, and seeded defects (shifted reservations,
lowered ii, corrupted matrix rows) are each flagged as errors.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ir_checks import check_sched
from repro.network import (
    BraidMesh,
    MatrixScoreboard,
    ReservationTable,
    build_reservation,
    dependency_matrix,
    ii_lower_bound,
    reservation_schedule,
    scoreboard_matrix,
)
from repro.network.braidsim import BraidSimulator, simulate_plan
from repro.network.plan import BraidPlan
from repro.network.policies import POLICIES
from repro.partition import GridShape, naive_layout
from repro.qasm import Circuit

_MESHES = ((1, 2), (2, 2), (2, 3), (3, 3))


@st.composite
def small_plans(draw):
    """A small random circuit compiled to a BraidPlan on a tiny mesh."""
    rows, cols = draw(st.sampled_from(_MESHES))
    n = draw(st.integers(2, min(6, rows * cols)))
    qubits = [f"q{i}" for i in range(n)]
    with_factory = draw(st.booleans())
    factories = ((rows, 0),) if with_factory else ()
    gates = ("CNOT", "H", "X") + (("T",) if with_factory else ())
    circuit = Circuit(qubits=qubits)
    for _ in range(draw(st.integers(1, 10))):
        gate = draw(st.sampled_from(gates))
        i = draw(st.integers(0, n - 1))
        if gate == "CNOT":
            j = draw(st.integers(0, n - 2))
            if j >= i:
                j += 1
            circuit.apply("CNOT", qubits[i], qubits[j])
        else:
            circuit.apply(gate, qubits[i])
    return BraidPlan.build(
        circuit,
        naive_layout(qubits, GridShape(rows, cols)),
        BraidMesh(rows, cols),
        distance=3,
        factory_routers=factories,
    )


def _fixed_plan():
    qubits = [f"q{i}" for i in range(4)]
    circuit = Circuit(qubits=qubits)
    for i in range(4):
        for j in range(i + 1, 4):
            circuit.apply("CNOT", f"q{i}", f"q{j}")
    return BraidPlan.build(
        circuit,
        naive_layout(qubits, GridShape(2, 2)),
        BraidMesh(2, 2),
        distance=3,
    )


class TestReservationTable:
    """The per-cycle link-slot table primitive."""

    def test_booking_claims_slots(self):
        table = ReservationTable(4)
        assert table.conflict(0, 2, 0b11) == -1
        table.book(0, 2, 0b11)
        assert table.conflict(0, 1, 0b01) == 0
        assert table.conflict(1, 1, 0b10) == 0
        # Disjoint links share the cycle freely.
        assert table.conflict(0, 2, 0b100) == -1

    def test_double_book_raises(self):
        table = ReservationTable(3)
        table.book(1, 1, 0b1)
        with pytest.raises(ValueError):
            table.book(1, 1, 0b1)

    def test_modulo_wraparound_conflicts(self):
        table = ReservationTable(3)
        table.book(0, 1, 0b1)
        # Cycle 3 aliases cycle 0 at ii=3.
        assert table.conflict(3, 1, 0b1) == 0

    def test_window_longer_than_ii_self_overlaps(self):
        table = ReservationTable(2)
        assert table.conflict(0, 3, 0b1) == 0

    def test_empty_mask_never_conflicts(self):
        table = ReservationTable(2)
        table.book(0, 2, 0b11)
        assert table.conflict(0, 5, 0) == -1


class TestMatrixScoreboard:
    """The dependency bit-matrix primitive."""

    def test_retire_clears_column(self):
        board = MatrixScoreboard([0, 0b1, 0b11])
        assert not board.row_clear(1)
        board.retire(0, [[1, 2], [2], []])
        assert board.row_clear(1)
        assert not board.row_clear(2)
        board.retire(1, [[1, 2], [2], []])
        assert board.row_clear(2)

    def test_ready_set_orders_by_program_index(self):
        board = MatrixScoreboard([0, 0, 0])
        board.add_ready(2)
        board.add_ready(0)
        assert board.ordered_ready() == [0, 2]
        board.remove_ready(0)
        assert board.ordered_ready() == [2]

    def test_outstanding_counts_unresolved_rows(self):
        board = MatrixScoreboard([0, 0b1])
        assert board.outstanding() == 1
        board.retire(0, [[1], []])
        assert board.outstanding() == 0


class _AssertingScoreboardSim(BraidSimulator):
    """Flat scoreboard run that asserts the selection invariant."""

    def _try_open(self, op, time):
        assert self._scoreboard is not None
        assert self._scoreboard.row_clear(op), (
            f"scoreboard selected op {op} with unresolved dependencies"
        )
        assert self._remaining_preds[op] == 0
        return super()._try_open(op, time)


class TestSchedulerProperties:
    """Hypothesis-driven invariants over random small plans."""

    @given(plan=small_plans())
    @settings(max_examples=40, deadline=None)
    def test_reservation_never_double_books(self, plan):
        schedule = build_reservation(plan)
        table = ReservationTable(schedule.ii)
        for op in range(plan.num_ops):
            if not plan.is_braid[op]:
                assert schedule.reserved[op] == ()
                continue
            for seg, cycle in zip(plan.segments[op], schedule.reserved[op]):
                table.book(cycle, seg[2] + 2, seg[5])  # raises on overlap

    @given(plan=small_plans())
    @settings(max_examples=40, deadline=None)
    def test_achieved_ii_at_least_lower_bound(self, plan):
        schedule = build_reservation(plan)
        assert schedule.ii_lower == ii_lower_bound(plan)
        assert schedule.ii >= schedule.ii_lower

    @given(plan=small_plans())
    @settings(max_examples=40, deadline=None)
    def test_makespans_at_least_critical_path(self, plan):
        for policy in (7, 8):
            result = simulate_plan(plan, policy)
            assert result.schedule_length >= plan.critical_path

    @given(plan=small_plans())
    @settings(max_examples=40, deadline=None)
    def test_reservation_sim_matches_planner(self, plan):
        schedule = build_reservation(plan)
        result = simulate_plan(plan, 7)
        assert result.schedule_length == schedule.makespan
        assert result.drops == 0
        assert result.adaptive_routes == 0

    @given(plan=small_plans())
    @settings(max_examples=40, deadline=None)
    def test_scoreboard_never_selects_blocked_op(self, plan):
        result = _AssertingScoreboardSim(policy=POLICIES[8], plan=plan).run()
        assert result.operations == plan.num_ops

    @given(plan=small_plans())
    @settings(max_examples=40, deadline=None)
    def test_matrix_rows_match_in_degrees(self, plan):
        matrix = dependency_matrix(plan)
        for op, row in enumerate(matrix):
            assert row.bit_count() == plan.in_degrees[op]
            assert not row & (1 << op)


class TestSchedMemo:
    """The per-plan memo returns identical artifacts per identity."""

    def test_memo_reuses_per_plan(self):
        plan = _fixed_plan()
        assert reservation_schedule(plan) is reservation_schedule(plan)
        assert scoreboard_matrix(plan) is scoreboard_matrix(plan)


class TestCheckSchedPass:
    """``check_sched`` accepts clean artifacts, flags seeded defects."""

    @pytest.fixture(scope="class")
    def plan(self):
        return _fixed_plan()

    def test_clean_plan_has_no_findings(self, plan):
        assert check_sched(plan) == []

    def _errors(self, plan, **kwargs):
        return [d.format() for d in check_sched(plan, **kwargs)]

    def test_lowered_ii_is_flagged(self, plan):
        schedule = build_reservation(plan)
        bad = dataclasses.replace(schedule, ii=schedule.ii_lower - 1)
        errors = self._errors(plan, schedule=bad)
        assert any("lower bound" in e for e in errors)

    def test_shifted_reservation_is_flagged(self, plan):
        schedule = build_reservation(plan)
        braid = next(
            op for op in range(plan.num_ops) if schedule.reserved[op]
        )
        reserved = list(schedule.reserved)
        cycles = list(reserved[braid])
        cycles[0] += 1
        reserved[braid] = tuple(cycles)
        bad = dataclasses.replace(schedule, reserved=tuple(reserved))
        assert self._errors(plan, schedule=bad)

    def test_truncated_schedule_is_flagged(self, plan):
        schedule = build_reservation(plan)
        bad = dataclasses.replace(
            schedule, reserved=schedule.reserved[:-1]
        )
        errors = self._errors(plan, schedule=bad)
        assert any("covers" in e for e in errors)

    def test_self_dependent_matrix_row_is_flagged(self, plan):
        matrix = list(dependency_matrix(plan))
        matrix[0] |= 1
        errors = self._errors(plan, matrix=matrix)
        assert any("own predecessor" in e for e in errors)

    def test_dropped_dependency_bit_is_flagged(self, plan):
        matrix = list(dependency_matrix(plan))
        victim = next(op for op, row in enumerate(matrix) if row)
        matrix[victim] &= matrix[victim] - 1  # clear lowest bit
        errors = self._errors(plan, matrix=matrix)
        assert any("popcount" in e for e in errors)
