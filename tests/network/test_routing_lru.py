"""LRU bounding of the process-wide route-table registry."""

import pytest

from repro.network.routing import (
    RouteTable,
    route_table,
    route_table_stats,
    set_route_table_capacity,
)

# Shapes deliberately outside anything the app sweeps use, so these
# tests neither disturb nor depend on other tests' cached tables.
BASE = 90


def shape(i: int) -> tuple[int, int]:
    return (BASE + i, BASE + i)


@pytest.fixture
def small_capacity():
    previous = set_route_table_capacity(3)
    try:
        yield 3
    finally:
        set_route_table_capacity(previous)


class TestRouteTableLru:
    def test_hit_returns_same_instance(self, small_capacity):
        first = route_table(*shape(0))
        assert route_table(*shape(0)) is first

    def test_miss_creates_new_table(self, small_capacity):
        a = route_table(*shape(1))
        b = route_table(*shape(2))
        assert a is not b
        assert isinstance(a, RouteTable) and isinstance(b, RouteTable)

    def test_capacity_bounds_resident_shapes(self, small_capacity):
        for i in range(10):
            route_table(*shape(i))
        stats = route_table_stats()
        assert stats["capacity"] == 3
        assert len(stats["shapes"]) == 3

    def test_least_recently_used_is_evicted(self, small_capacity):
        t0 = route_table(*shape(0))
        route_table(*shape(1))
        route_table(*shape(2))
        # Touch shape 0: it becomes most recent; shape 1 is now LRU.
        assert route_table(*shape(0)) is t0
        route_table(*shape(3))  # evicts shape 1
        resident = route_table_stats()["shapes"]
        assert (*shape(1), 4) not in resident
        assert (*shape(0), 4) in resident
        assert (*shape(3), 4) in resident
        # Shape 0 survived the eviction: still the same instance.
        assert route_table(*shape(0)) is t0
        # Shape 1 was evicted: a fresh table is built on re-request.
        rebuilt = route_table(*shape(1))
        assert isinstance(rebuilt, RouteTable)

    def test_mesh_shape_churn_stays_bounded(self, small_capacity):
        for i in range(50):
            table = route_table(*shape(i % 7))
            # Tables stay functional regardless of eviction pressure.
            path, mask = table.dor((0, 0), (1, 1))
            assert path and mask
        assert len(route_table_stats()["shapes"]) <= 3

    def test_evicted_table_keeps_working_for_holders(self, small_capacity):
        held = route_table(*shape(0))
        for i in range(1, 5):  # push shape 0 out of the registry
            route_table(*shape(i))
        assert (*shape(0), 4) not in route_table_stats()["shapes"]
        path, mask = held.dor((0, 0), (2, 3))
        assert path[0] == (0, 0) and path[-1] == (2, 3) and mask

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            set_route_table_capacity(0)

    def test_set_capacity_returns_previous(self):
        previous = set_route_table_capacity(5)
        try:
            assert set_route_table_capacity(previous) == 5
        finally:
            set_route_table_capacity(previous)

    def test_shrinking_capacity_evicts_immediately(self, small_capacity):
        for i in range(3):
            route_table(*shape(i))
        previous = set_route_table_capacity(1)
        try:
            assert len(route_table_stats()["shapes"]) == 1
        finally:
            set_route_table_capacity(previous)
