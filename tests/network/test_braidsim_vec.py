"""Vectorized engine: three-way golden equivalence + batched-path properties.

The vec engine's batched open-candidate prefilter must agree
bit-for-bit with the flat engine and the preserved seed loop.  Beyond
the three-way golden sweeps (which mirror the synthetic contention
scenarios of ``test_braidsim_golden``), Hypothesis drives the batched
primitives directly against their scalar definitions — word
packing/unpacking, the policy lexsort vs ``_sort_opens``, and the
blocked-candidate verdicts vs a per-route mask scan — and mutation
guards pin down that the engine never writes the shared plan-derived
arrays.  The no-numpy fallback (``ImportError`` naming the ``vec``
extra) is tested by monkeypatching the module's ``np`` to ``None``, so
it runs on every matrix leg including the numpy-less one.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import BraidMesh, BraidSimConfig, simulate_braids
from repro.network import braidsim_vec
from repro.network.braidsim import ENGINES, engine_class, simulate_plan
from repro.network.plan import BraidPlan
from repro.network.policies import POLICIES
from repro.partition import GridShape, naive_layout
from repro.qasm import Circuit

np = braidsim_vec.np
requires_numpy = pytest.mark.skipif(
    np is None, reason="vec engine needs the numpy optional extra"
)


def assert_engines_agree(circuit, placement, rows, cols, policy, distance,
                         factories=(), config=None):
    results = {
        engine: simulate_braids(
            circuit, placement, BraidMesh(rows, cols), policy, distance,
            factory_routers=factories, config=config, engine=engine,
        )
        for engine in ("flat", "vec", "reference")
    }
    assert results["vec"] == results["flat"]
    assert results["vec"] == results["reference"]
    return results["vec"]


@requires_numpy
class TestThreeEngineGolden:
    """The golden synthetic scenarios, now across all three engines."""

    @pytest.mark.parametrize("policy", range(7))
    def test_crossing_braids_tiny_mesh(self, policy):
        qubits = [f"q{i}" for i in range(4)]
        placement = naive_layout(qubits, GridShape(2, 2))
        c = Circuit(qubits=qubits)
        for i in range(4):
            for j in range(i + 1, 4):
                c.apply("CNOT", f"q{i}", f"q{j}")
        result = assert_engines_agree(c, placement, 2, 2, policy, 3)
        assert result.operations == 6

    @pytest.mark.parametrize("policy", range(7))
    def test_serializing_1x2_mesh_forces_drops(self, policy):
        qubits = ["q0", "q1"]
        placement = naive_layout(qubits, GridShape(1, 2))
        c = Circuit(qubits=qubits)
        for _ in range(6):
            c.apply("CNOT", "q0", "q1")
        config = BraidSimConfig(adaptive_timeout=1, drop_timeout=3)
        assert_engines_agree(c, placement, 1, 2, policy, 4, config=config)

    @pytest.mark.parametrize("policy", (0, 1, 5, 6))
    def test_t_gates_with_factories(self, policy):
        qubits = [f"q{i}" for i in range(6)]
        placement = naive_layout(qubits, GridShape(2, 3))
        factories = ((2, 0), (2, 3))
        c = Circuit(qubits=qubits)
        for i in range(6):
            c.apply("T", f"q{i}")
        for i in range(5):
            c.apply("CNOT", f"q{i}", f"q{i + 1}")
        c.apply("H", "q0")
        assert_engines_agree(
            c, placement, 2, 3, policy, 3, factories=factories
        )


def _wide_plan():
    """16 qubits, 8 simultaneously-ready crossing CNOTs on a 4x4 mesh.

    Wide enough (>= _BATCH_MIN ready opens in round one) that the vec
    engine's batched classify path must engage.
    """
    qubits = [f"q{i}" for i in range(16)]
    placement = naive_layout(qubits, GridShape(4, 4))
    c = Circuit(qubits=qubits)
    for i in range(8):
        c.apply("CNOT", f"q{i}", f"q{15 - i}")
    for i in range(8):
        c.apply("CNOT", f"q{i}", f"q{(i + 8) % 16}")
    return BraidPlan.build(c, placement, BraidMesh(4, 4), distance=3)


@requires_numpy
class TestBatchedPath:
    """The >= _BATCH_MIN path engages and stays bit-identical."""

    @pytest.fixture(scope="class")
    def plan(self):
        return _wide_plan()

    @pytest.mark.parametrize("policy", range(7))
    def test_wide_rounds_match_flat(self, plan, policy):
        assert simulate_plan(plan, policy, engine="vec") == simulate_plan(
            plan, policy, engine="flat"
        )

    @pytest.mark.parametrize("policy", (1, 4, 5, 6))
    def test_batched_classify_fires(self, plan, policy):
        class CountingVec(braidsim_vec.VecBraidSimulator):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.batched_rounds = 0

            def _classify_opens(self, *args, **kwargs):
                self.batched_rounds += 1
                return super()._classify_opens(*args, **kwargs)

        sim = CountingVec(policy=POLICIES[policy], plan=plan)
        result = sim.run()
        assert sim.batched_rounds > 0, (
            "circuit too narrow to exercise the batched path"
        )
        assert result == simulate_plan(plan, policy, engine="flat")


def _multiword_plan():
    """A plan on a 6x6 mesh: 84 links, so masks span two uint64 words."""
    qubits = [f"q{i}" for i in range(36)]
    placement = naive_layout(qubits, GridShape(6, 6))
    c = Circuit(qubits=qubits)
    for i in range(18):
        c.apply("CNOT", f"q{i}", f"q{35 - i}")
    c.apply("H", "q0")
    return BraidPlan.build(c, placement, BraidMesh(6, 6), distance=3)


_MULTIWORD_CACHE: dict = {}


def _multiword_state():
    """(plan, braid op indices, num_links) built once per process."""
    if "state" not in _MULTIWORD_CACHE:
        plan = _multiword_plan()
        braid_ops = [
            op for op in range(plan.num_ops) if plan.is_braid[op]
        ]
        num_links = (plan.rows + 1) * plan.cols + plan.rows * (
            plan.cols + 1
        )
        _MULTIWORD_CACHE["state"] = (plan, braid_ops, num_links)
    return _MULTIWORD_CACHE["state"]


def _scalar_would_fail(plan, op, occ, adaptive):
    """The flat engine's failure predicate for a first-segment open.

    Non-adaptive opens only probe the dominant route; adaptive opens
    fail iff *every* alternative of the segment's pair is blocked.
    """
    seg = plan.segments[op][0]
    if not adaptive:
        return bool(seg[5] & occ)
    return all(
        mask & occ for _, mask in plan.routes.alternatives(seg[0], seg[1])
    )


@requires_numpy
class TestBatchedPrimitivesProperties:
    """Hypothesis: batched verdicts == the scalar ``_try_open`` decision."""

    @given(
        words=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_mask_words_round_trip(self, words, data):
        mask = data.draw(
            st.integers(min_value=0, max_value=(1 << (64 * words)) - 1)
        )
        row = braidsim_vec._mask_words(mask, words)
        assert row.shape == (words,)
        assert not row.flags.writeable
        assert braidsim_vec._words_mask(row) == mask

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_classify_matches_scalar_decision(self, data):
        plan, braid_ops, num_links = _multiword_state()
        occ = data.draw(
            st.integers(min_value=0, max_value=(1 << num_links) - 1)
        )
        ops = data.draw(
            st.lists(
                st.sampled_from(braid_ops), min_size=1, max_size=12,
                unique=True,
            )
        )
        adaptive_flags = data.draw(
            st.lists(
                st.booleans(), min_size=len(ops), max_size=len(ops)
            )
        )
        sim = braidsim_vec.VecBraidSimulator(
            policy=POLICIES[1], plan=plan
        )
        time = sim.config.adaptive_timeout
        for op, adaptive in zip(ops, adaptive_flags):
            # time - wait_start >= adaptive_timeout <=> adaptive
            sim._wait_start[op] = 0 if adaptive else time
        definite_fail, adaptive_arr = sim._classify_opens(
            ops, time, sim._occ_words(occ), use_memo=False
        )
        for i, (op, adaptive) in enumerate(zip(ops, adaptive_flags)):
            assert bool(adaptive_arr[i]) == adaptive
            assert bool(definite_fail[i]) == _scalar_would_fail(
                plan, op, occ, adaptive
            )

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_bank_all_blocked_matches_route_scan(self, data):
        plan, braid_ops, num_links = _multiword_state()
        occ = data.draw(
            st.integers(min_value=0, max_value=(1 << num_links) - 1)
        )
        ops = data.draw(
            st.lists(
                st.sampled_from(braid_ops), min_size=1, max_size=12,
                unique=True,
            )
        )
        sim = braidsim_vec.VecBraidSimulator(
            policy=POLICIES[0], plan=plan
        )
        verdicts = sim._bank_all_blocked(ops, sim._occ_words(occ))
        for op, verdict in zip(ops, verdicts):
            assert bool(verdict) == _scalar_would_fail(
                plan, op, occ, adaptive=True
            )

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_lexsort_matches_sort_opens(self, data):
        plan, braid_ops, _ = _multiword_state()
        policy = data.draw(st.integers(min_value=0, max_value=6))
        ops = data.draw(
            st.lists(
                st.sampled_from(braid_ops), min_size=1, max_size=14,
                unique=True,
            )
        )
        # Arrival stamps come from a global counter in the simulator,
        # so they are unique by construction; _sort_opens relies on it.
        arrivals = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=50),
                min_size=len(ops), max_size=len(ops), unique=True,
            )
        )
        sim = braidsim_vec.VecBraidSimulator(
            policy=POLICIES[policy], plan=plan
        )
        for op, arrival in zip(ops, arrivals):
            sim._arrival[op] = arrival
        assert sim._ordered_opens_vec(list(ops)) == sim._sort_opens(
            list(ops)
        )


@requires_numpy
class TestPlanStaysReadOnly:
    """Mutation guards: simulations never write the shared arrays."""

    def test_shared_arrays_unchanged_across_policies(self):
        plan = _wide_plan()
        vec = braidsim_vec.vec_plan_arrays(plan)
        # Bind every pair up front so the bank snapshot is complete.
        for segs in plan.segments:
            for seg in segs:
                vec.pair_span(seg[0], seg[1])
        bank_before = vec.bank_matrix().copy()
        lengths_before = vec.route_length.copy()
        crit_before = list(plan.criticality())
        segments_before = plan.segments
        for policy in range(7):
            simulate_plan(plan, policy, engine="vec")
        assert np.array_equal(vec.bank_matrix(), bank_before)
        assert np.array_equal(vec.route_length, lengths_before)
        assert list(plan.criticality()) == crit_before
        assert plan.segments is segments_before

    def test_segment_rows_are_read_only(self):
        plan = _wide_plan()
        vec = braidsim_vec.vec_plan_arrays(plan)
        rows = [row for op_rows in vec.seg_rows for row in op_rows]
        assert rows, "plan has no braid segments"
        for row in rows:
            assert not row.flags.writeable
        with pytest.raises(ValueError, match="read-only"):
            rows[0][0] = 1

    def test_plan_arrays_memo_is_identity_checked(self):
        plan = _wide_plan()
        vec = braidsim_vec.vec_plan_arrays(plan)
        assert braidsim_vec.vec_plan_arrays(plan) is vec
        other = _wide_plan()
        assert braidsim_vec.vec_plan_arrays(other) is not vec


class TestEngineSelection:
    """Engine resolution and the no-numpy fallback contract."""

    def test_engine_registry(self):
        assert set(ENGINES) == {"flat", "vec", "reference"}
        from repro.network.braidsim import BraidSimulator

        assert engine_class("flat") is BraidSimulator
        from repro.network._braidsim_reference import (
            ReferenceBraidSimulator,
        )

        assert engine_class("reference") is ReferenceBraidSimulator

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError, match="unknown braid engine"):
            engine_class("turbo")

    @requires_numpy
    def test_vec_engine_resolves_with_numpy(self):
        assert engine_class("vec") is braidsim_vec.VecBraidSimulator

    def test_vec_without_numpy_names_the_extra(self, monkeypatch):
        monkeypatch.setattr(braidsim_vec, "np", None)
        with pytest.raises(ImportError, match=r"repro\[vec\]"):
            engine_class("vec")
        with pytest.raises(ImportError, match=r"repro\[vec\]"):
            braidsim_vec.VecBraidSimulator(
                policy=POLICIES[0], plan=object()
            )
        with pytest.raises(ImportError, match=r"repro\[vec\]"):
            braidsim_vec.vec_plan_arrays(object())

    def test_flat_engine_needs_no_numpy(self, monkeypatch):
        monkeypatch.setattr(braidsim_vec, "np", None)
        qubits = ["q0", "q1"]
        placement = naive_layout(qubits, GridShape(1, 2))
        c = Circuit(qubits=qubits)
        c.apply("CNOT", "q0", "q1")
        result = simulate_braids(
            c, placement, BraidMesh(1, 2), 0, 3, engine="flat"
        )
        assert result.operations == 1

    def test_simulate_braids_vec_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(braidsim_vec, "np", None)
        qubits = ["q0", "q1"]
        placement = naive_layout(qubits, GridShape(1, 2))
        c = Circuit(qubits=qubits)
        c.apply("CNOT", "q0", "q1")
        with pytest.raises(ImportError, match=r"repro\[vec\]"):
            simulate_braids(
                c, placement, BraidMesh(1, 2), 0, 3, engine="vec"
            )
