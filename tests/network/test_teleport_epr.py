"""Tests for teleportation costs and the pipelined EPR distributor."""

import pytest

from repro.frontend import asap_schedule
from repro.network import (
    DEFAULT_TELEPORT_MODEL,
    EprDemand,
    EprPipelineConfig,
    TeleportModel,
    demands_from_schedule,
    simulate_epr_pipeline,
)
from repro.partition import GridShape, naive_layout
from repro.qasm import Circuit


class TestTeleportModel:
    def test_teleport_is_distance_independent(self):
        m = DEFAULT_TELEPORT_MODEL
        near = m.communication_cycles((0, 0), (0, 1), (0, 2), 9, prefetched=True)
        far = m.communication_cycles((0, 0), (5, 5), (9, 9), 9, prefetched=True)
        assert near == far == m.teleport_cycles

    def test_unprefetched_pays_distribution(self):
        m = DEFAULT_TELEPORT_MODEL
        cost = m.communication_cycles((0, 0), (0, 3), (0, 1), 9, prefetched=False)
        assert cost == pytest.approx(3 * 9 + m.teleport_cycles)

    def test_distribution_scales_with_distance_and_hops(self):
        m = DEFAULT_TELEPORT_MODEL
        assert m.distribution_cycles((0, 0), (0, 2), (0, 0), 9) == 18
        assert m.distribution_cycles((0, 0), (0, 2), (0, 0), 18) == 36

    def test_slower_endpoint_binds(self):
        m = DEFAULT_TELEPORT_MODEL
        assert m.distribution_cycles((0, 0), (0, 1), (4, 4), 2) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            TeleportModel(teleport_cycles=0)
        with pytest.raises(ValueError):
            DEFAULT_TELEPORT_MODEL.distribution_cycles((0, 0), (0, 1), (0, 1), 0)


def _simple_demands(count: int, spacing: int, hops: int = 2, offset: int = 0):
    return [
        EprDemand(i, offset + i * spacing, (0, hops), (0, 0))
        for i in range(count)
    ]


class TestEprPipeline:
    def test_empty_demands(self):
        result = simulate_epr_pipeline([], EprPipelineConfig())
        assert result.total_pairs == 0
        assert result.stall_cycles == 0.0

    def test_ample_window_no_stalls(self):
        # Sparse demand, big window, and enough lead time before the
        # first use (a demand at cycle 0 can never be prefetched).
        demands = _simple_demands(10, spacing=50, offset=500)
        config = EprPipelineConfig(window=200, bandwidth=4, distance=9)
        result = simulate_epr_pipeline(demands, config)
        assert result.stall_cycles == 0.0
        assert result.latency_overhead == 0.0

    def test_zero_window_stalls(self):
        demands = _simple_demands(10, spacing=1)
        config = EprPipelineConfig(window=0, bandwidth=4, distance=9)
        result = simulate_epr_pipeline(demands, config)
        assert result.stall_cycles > 0

    def test_larger_window_reduces_stalls(self):
        demands = _simple_demands(50, spacing=2)
        stalls = []
        for window in (0, 8, 64, 512):
            config = EprPipelineConfig(window=window, bandwidth=2, distance=9)
            stalls.append(simulate_epr_pipeline(demands, config).stall_cycles)
        assert stalls[0] >= stalls[1] >= stalls[2] >= stalls[3]

    def test_larger_window_raises_peak_occupancy(self):
        demands = _simple_demands(60, spacing=4)
        small = simulate_epr_pipeline(
            demands, EprPipelineConfig(window=4, bandwidth=8, distance=3)
        )
        huge = simulate_epr_pipeline(
            demands, EprPipelineConfig(window=100_000, bandwidth=8, distance=3)
        )
        assert huge.peak_epr_pairs >= small.peak_epr_pairs
        assert huge.peak_epr_pairs > 1

    def test_peak_bounded_by_total(self):
        demands = _simple_demands(30, spacing=3)
        result = simulate_epr_pipeline(
            demands, EprPipelineConfig(window=1000, bandwidth=4)
        )
        assert result.peak_epr_pairs <= result.total_pairs == 30
        assert result.peak_epr_qubits == 2 * result.peak_epr_pairs

    def test_bandwidth_relieves_stalls(self):
        demands = _simple_demands(40, spacing=1)
        narrow = simulate_epr_pipeline(
            demands, EprPipelineConfig(window=16, bandwidth=1, distance=9)
        )
        wide = simulate_epr_pipeline(
            demands, EprPipelineConfig(window=16, bandwidth=16, distance=9)
        )
        assert wide.stall_cycles <= narrow.stall_cycles

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EprPipelineConfig(window=-1)
        with pytest.raises(ValueError):
            EprPipelineConfig(bandwidth=0)


class TestDemandsFromSchedule:
    def test_extracts_teleports(self):
        c = Circuit(qubits=["a", "b", "c"])
        c.apply("H", "a")          # local: no demand
        c.apply("CNOT", "a", "b")  # teleport
        c.apply("T", "c")          # magic state delivery
        placement = naive_layout(["a", "b", "c"], GridShape(2, 2))
        schedule = asap_schedule(c)
        demands = demands_from_schedule(schedule, placement)
        assert len(demands) == 2
        kinds = {d.op_index for d in demands}
        assert kinds == {1, 2}

    def test_use_cycles_match_schedule(self):
        c = Circuit(qubits=["a", "b"])
        c.apply("CNOT", "a", "b")
        c.apply("CNOT", "a", "b")
        placement = naive_layout(["a", "b"], GridShape(1, 2))
        demands = demands_from_schedule(asap_schedule(c), placement)
        assert [d.use_cycle for d in demands] == [0, 1]
