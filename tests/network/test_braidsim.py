"""Tests for the braid schedule simulator and policies."""

import pytest

from repro.frontend import decompose_circuit
from repro.network import (
    ALL_POLICIES,
    POLICIES,
    BraidMesh,
    BraidSimConfig,
    build_tasks,
    simulate_braids,
)
from repro.partition import GridShape, naive_layout
from repro.qasm import Circuit
from repro.qec import DOUBLE_DEFECT


def make_env(num_qubits: int, rows: int, cols: int):
    qubits = [f"q{i}" for i in range(num_qubits)]
    grid = GridShape(rows, cols)
    placement = naive_layout(qubits, grid)
    mesh = BraidMesh(rows, cols)
    factories = ((rows, cols),)  # bottom-right corner router
    return qubits, placement, mesh, factories


class TestBuildTasks:
    def test_two_qubit_op_gets_two_segments(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        c = Circuit(qubits=qubits)
        c.apply("CNOT", "q0", "q3")
        tasks = build_tasks(c, placement, mesh, DOUBLE_DEFECT, 5, factories)
        assert len(tasks[0].segments) == 2
        assert all(seg.hold == 5 for seg in tasks[0].segments)

    def test_t_op_braids_from_factory(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        c = Circuit(qubits=qubits)
        c.apply("T", "q0")
        tasks = build_tasks(c, placement, mesh, DOUBLE_DEFECT, 5, factories)
        assert len(tasks[0].segments) == 1
        assert tasks[0].segments[0].src == factories[0]

    def test_t_without_factory_rejected(self):
        qubits, placement, mesh, _ = make_env(4, 2, 2)
        c = Circuit(qubits=qubits)
        c.apply("T", "q0")
        with pytest.raises(ValueError, match="factory"):
            build_tasks(c, placement, mesh, DOUBLE_DEFECT, 5, ())

    def test_local_op(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        c = Circuit(qubits=qubits)
        c.apply("H", "q0")
        tasks = build_tasks(c, placement, mesh, DOUBLE_DEFECT, 5, factories)
        assert not tasks[0].is_braid
        assert tasks[0].local_cycles >= 1

    def test_composites_rejected(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        c = Circuit(qubits=qubits)
        c.apply("TOFFOLI", "q0", "q1", "q2")
        with pytest.raises(ValueError, match="decomposed"):
            build_tasks(c, placement, mesh, DOUBLE_DEFECT, 5, factories)

    def test_route_length_metric(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        c = Circuit(qubits=qubits)
        c.apply("CNOT", "q0", "q3")  # (0,0) -> (1,1): manhattan 2, x2 segs
        tasks = build_tasks(c, placement, mesh, DOUBLE_DEFECT, 5, factories)
        assert tasks[0].route_length == 4


class TestSimulateBraids:
    def simple_circuit(self, qubits):
        c = Circuit(qubits=qubits)
        c.apply("CNOT", "q0", "q1")
        c.apply("CNOT", "q2", "q3")
        c.apply("CNOT", "q0", "q3")
        return c

    def test_all_ops_complete_zero_contention(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        c = Circuit(qubits=qubits)
        c.apply("CNOT", "q0", "q1")
        result = simulate_braids(c, placement, mesh, 1, distance=5,
                                 factory_routers=factories)
        # One 2-segment braid: exactly 2*(d+1) cycles, ratio 1.
        assert result.schedule_length == 12
        assert result.schedule_to_critical_ratio == pytest.approx(1.0)
        assert result.braids == 2

    @pytest.mark.parametrize("policy", list(range(7)))
    def test_every_policy_completes(self, policy):
        qubits, placement, mesh, factories = make_env(6, 2, 3)
        c = self.simple_circuit(qubits)
        c.apply("T", "q1")
        c.apply("H", "q5")
        result = simulate_braids(c, placement, mesh, policy, distance=3,
                                 factory_routers=factories)
        assert result.operations == 5
        assert result.schedule_length >= result.critical_path or (
            result.schedule_to_critical_ratio >= 0.99
        )

    def test_schedule_never_beats_critical_path(self):
        qubits, placement, mesh, factories = make_env(9, 3, 3)
        c = Circuit(qubits=qubits)
        for i in range(8):
            c.apply("CNOT", f"q{i}", f"q{i + 1}")
        for policy in (0, 1, 6):
            result = simulate_braids(
                c, placement, BraidMesh(3, 3), policy, distance=3,
                factory_routers=factories,
            )
            assert result.schedule_length >= result.critical_path

    def test_policy0_serializes_braids(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        c = self.simple_circuit(qubits)
        serial = simulate_braids(c, placement, BraidMesh(2, 2), 0, distance=3,
                                 factory_routers=factories)
        parallel = simulate_braids(c, placement, BraidMesh(2, 2), 1, distance=3,
                                   factory_routers=factories)
        assert serial.schedule_length >= parallel.schedule_length

    def test_contention_detected_on_tiny_mesh(self):
        # Many crossing braids on a 1x2 mesh must serialize.
        qubits, placement, mesh, factories = make_env(2, 1, 2)
        c = Circuit(qubits=qubits)
        for _ in range(4):
            c.apply("CNOT", "q0", "q1")
        result = simulate_braids(c, placement, mesh, 1, distance=3,
                                 factory_routers=factories)
        assert result.schedule_length >= 4 * 2 * 4  # serial lower bound

    def test_utilization_in_unit_range(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        result = simulate_braids(
            self.simple_circuit(qubits), placement, mesh, 6, distance=3,
            factory_routers=factories,
        )
        assert 0.0 < result.mean_utilization < 1.0

    def test_local_only_circuit(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        c = Circuit(qubits=qubits)
        for q in qubits:
            c.apply("H", q)
        result = simulate_braids(c, placement, mesh, 1, distance=3,
                                 factory_routers=factories)
        assert result.braids == 0
        assert result.schedule_length == 1
        assert result.mean_utilization == 0.0

    def test_empty_circuit(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        result = simulate_braids(Circuit(qubits=qubits), placement, mesh, 1,
                                 distance=3, factory_routers=factories)
        assert result.schedule_length == 0
        assert result.operations == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BraidSimConfig(adaptive_timeout=5, drop_timeout=3)
        with pytest.raises(ValueError):
            BraidSimConfig(drop_timeout=0)

    def test_policy_lookup_by_number(self):
        qubits, placement, mesh, factories = make_env(4, 2, 2)
        by_num = simulate_braids(
            self.simple_circuit(qubits), placement, mesh, 2, distance=3,
            factory_routers=factories,
        )
        by_obj = simulate_braids(
            self.simple_circuit(qubits), placement, BraidMesh(2, 2),
            POLICIES[2], distance=3, factory_routers=factories,
        )
        assert by_num.schedule_length == by_obj.schedule_length


class TestPolicies:
    def test_nine_policies(self):
        assert len(ALL_POLICIES) == 9
        assert [p.number for p in ALL_POLICIES] == list(range(9))

    def test_policy_families(self):
        assert all(POLICIES[i].family == "reactive" for i in range(7))
        assert POLICIES[7].family == "reservation"
        assert POLICIES[8].family == "scoreboard"

    def test_policy0_no_interleave(self):
        assert not POLICIES[0].interleave
        assert all(POLICIES[i].interleave for i in range(1, 7))

    def test_layout_from_policy2(self):
        assert not POLICIES[1].optimized_layout
        assert all(POLICIES[i].optimized_layout for i in range(2, 7))

    def test_policy6_combines_everything(self):
        p6 = POLICIES[6]
        assert p6.closes_first
        assert p6.use_criticality
        assert p6.combined_length_rule

    def test_sort_key_criticality(self):
        key = POLICIES[3].open_sort_key(
            criticality=lambda op: {1: 5, 2: 9}[op],
            route_length=lambda op: 0,
            arrival=lambda op: op,
        )
        assert sorted([1, 2], key=key) == [2, 1]

    def test_sort_key_length(self):
        key = POLICIES[4].open_sort_key(
            criticality=lambda op: 0,
            route_length=lambda op: {1: 3, 2: 8}[op],
            arrival=lambda op: op,
        )
        assert sorted([1, 2], key=key) == [2, 1]

    def test_policy6_length_rule_splits_by_criticality(self):
        crit = {1: 10, 2: 10, 3: 1, 4: 1}
        length = {1: 5, 2: 2, 3: 5, 4: 2}
        key = POLICIES[6].open_sort_key(
            criticality=crit.get,
            route_length=length.get,
            arrival=lambda op: 0,
            ready_criticalities=list(crit.values()),
        )
        ordered = sorted(crit, key=key)
        # Critical group first, short before long; low group long first.
        assert ordered == [2, 1, 3, 4]
