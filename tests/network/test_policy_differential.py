"""Cross-engine differential harness over the full 9-policy plane.

The scheduler-family policies (7 reservation-table, 8 matrix-
scoreboard) have no seed-reference oracle — the preserved seed loop in
``repro.network._braidsim_reference`` predates them and refuses to run
them.  Their correctness oracle is *differential*: the flat and vec
engines implement the same semantics through very different code paths
(scalar event walk vs batched word-packed candidate filtering), so
Hypothesis-generated circuits run through every (policy x engine) pair
and must agree not just on the final counters but on the *entire event
order* — every successful segment open, every close, every op
completion, at the same cycle in the same sequence.

Traces are recorded by a mixin that hooks the three state-changing
methods both engines share (``_try_open`` success, ``_close_segment``,
``_complete``); the vec engine's batched prefilter only short-circuits
*failing* candidates, so identical traces mean identical scheduling
decisions.

On the numpy-absent matrix leg the vec half self-skips and the
flat-engine determinism subset still runs (same circuit twice must
yield the same trace), so the harness is load-bearing on every leg.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import BraidMesh, BraidSimConfig, braidsim_vec
from repro.network.braidsim import BraidSimulator, simulate_plan
from repro.network.plan import BraidPlan
from repro.network.policies import ALL_POLICIES, POLICIES
from repro.partition import GridShape, naive_layout
from repro.qasm import Circuit

np = braidsim_vec.np
requires_numpy = pytest.mark.skipif(
    np is None, reason="vec engine needs the numpy optional extra"
)

ALL_POLICY_NUMBERS = tuple(p.number for p in ALL_POLICIES)

_MESHES = ((1, 2), (2, 2), (2, 3), (3, 3))


@st.composite
def small_plans(draw):
    """A small random circuit compiled to a BraidPlan on a tiny mesh."""
    rows, cols = draw(st.sampled_from(_MESHES))
    n = draw(st.integers(2, min(6, rows * cols)))
    qubits = [f"q{i}" for i in range(n)]
    with_factory = draw(st.booleans())
    factories = ((rows, 0),) if with_factory else ()
    gates = ("CNOT", "H", "X") + (("T",) if with_factory else ())
    circuit = Circuit(qubits=qubits)
    for _ in range(draw(st.integers(1, 12))):
        gate = draw(st.sampled_from(gates))
        i = draw(st.integers(0, n - 1))
        if gate == "CNOT":
            j = draw(st.integers(0, n - 2))
            if j >= i:
                j += 1
            circuit.apply("CNOT", qubits[i], qubits[j])
        else:
            circuit.apply(gate, qubits[i])
    return BraidPlan.build(
        circuit,
        naive_layout(qubits, GridShape(rows, cols)),
        BraidMesh(rows, cols),
        distance=3,
        factory_routers=factories,
    )


class _TraceMixin:
    """Record every scheduling decision as (kind, time, op[, segment]).

    Both engines share these three methods (the vec engine overrides
    only the candidate-selection loop above them), so the recorded
    sequence is the engines' common observable behavior.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace = []

    def _try_open(self, op, time):
        segment = self._segment_index[op]
        opened = super()._try_open(op, time)
        if opened:
            self.trace.append(("open", time, op, segment))
        return opened

    def _close_segment(self, op, time):
        self.trace.append(("close", time, op, self._segment_index[op]))
        super()._close_segment(op, time)

    def _complete(self, op, time):
        self.trace.append(("done", time, op))
        super()._complete(op, time)


class _TracingFlat(_TraceMixin, BraidSimulator):
    pass


if np is not None:

    class _TracingVec(_TraceMixin, braidsim_vec.VecBraidSimulator):
        pass


def _traced_run(cls, plan, policy, config=None):
    sim = cls(policy=POLICIES[policy], plan=plan, config=config)
    return sim.run(), sim.trace


def _assert_flat_vec_identical(plan, policy, config=None):
    flat_result, flat_trace = _traced_run(
        _TracingFlat, plan, policy, config
    )
    vec_result, vec_trace = _traced_run(_TracingVec, plan, policy, config)
    assert vec_result == flat_result, (
        f"policy {policy}: vec result diverged from flat"
    )
    assert vec_trace == flat_trace, (
        f"policy {policy}: engines agree on totals but took different "
        "scheduling decisions"
    )
    return flat_result, flat_trace


def _wide_plan():
    """8 simultaneously-ready crossing CNOTs: the batched vec path."""
    qubits = [f"q{i}" for i in range(16)]
    placement = naive_layout(qubits, GridShape(4, 4))
    circuit = Circuit(qubits=qubits)
    for i in range(8):
        circuit.apply("CNOT", f"q{i}", f"q{15 - i}")
    for i in range(8):
        circuit.apply("CNOT", f"q{i}", f"q{(i + 8) % 16}")
    return BraidPlan.build(
        circuit, placement, BraidMesh(4, 4), distance=3
    )


@requires_numpy
class TestDifferentialHypothesis:
    """Random circuits: flat and vec must make identical decisions."""

    @pytest.mark.parametrize("policy", ALL_POLICY_NUMBERS)
    @given(plan=small_plans())
    @settings(max_examples=25, deadline=None)
    def test_flat_vs_vec_traces(self, policy, plan):
        result, trace = _assert_flat_vec_identical(plan, policy)
        assert result.operations == plan.num_ops
        done = [entry for entry in trace if entry[0] == "done"]
        assert len(done) == plan.num_ops

    @pytest.mark.parametrize("policy", ALL_POLICY_NUMBERS)
    @given(plan=small_plans())
    @settings(max_examples=15, deadline=None)
    def test_flat_vs_vec_under_contention_config(self, policy, plan):
        config = BraidSimConfig(adaptive_timeout=1, drop_timeout=3)
        _assert_flat_vec_identical(plan, policy, config)


@requires_numpy
class TestDifferentialFixed:
    """Deterministic scenarios covering every policy on both engines."""

    @pytest.mark.parametrize("policy", ALL_POLICY_NUMBERS)
    def test_wide_batched_rounds(self, policy):
        plan = _wide_plan()
        result, _ = _assert_flat_vec_identical(plan, policy)
        assert result.operations == 16

    @pytest.mark.parametrize("policy", ALL_POLICY_NUMBERS)
    def test_factories_and_locals(self, policy):
        qubits = [f"q{i}" for i in range(6)]
        circuit = Circuit(qubits=qubits)
        for i in range(6):
            circuit.apply("T", f"q{i}")
        for i in range(5):
            circuit.apply("CNOT", f"q{i}", f"q{i + 1}")
        circuit.apply("H", "q0")
        plan = BraidPlan.build(
            circuit,
            naive_layout(qubits, GridShape(2, 3)),
            BraidMesh(2, 3),
            distance=3,
            factory_routers=((2, 0), (2, 3)),
        )
        _assert_flat_vec_identical(plan, policy)

    @pytest.mark.parametrize("policy", ALL_POLICY_NUMBERS)
    def test_engine_selector_agrees_with_traced_run(self, policy):
        plan = _wide_plan()
        traced, _ = _traced_run(_TracingFlat, plan, policy)
        assert simulate_plan(plan, policy, engine="flat") == traced
        assert simulate_plan(plan, policy, engine="vec") == traced


class TestFlatDeterminism:
    """Numpy-free subset: the flat engine replays identically."""

    @pytest.mark.parametrize("policy", ALL_POLICY_NUMBERS)
    @given(plan=small_plans())
    @settings(max_examples=10, deadline=None)
    def test_flat_trace_is_deterministic(self, policy, plan):
        first = _traced_run(_TracingFlat, plan, policy)
        second = _traced_run(_TracingFlat, plan, policy)
        assert first == second

    def test_nine_policies_registered(self):
        assert ALL_POLICY_NUMBERS == tuple(range(9))
