"""Tests for the braid mesh and route generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    BraidMesh,
    alternative_paths,
    dor_path,
    find_free_path,
    manhattan,
    path_links,
)


class TestMesh:
    def test_dimensions(self):
        mesh = BraidMesh(2, 3)
        assert mesh.router_rows == 3
        assert mesh.router_cols == 4
        # links: 3*3 horizontal + 2*4 vertical = 17
        assert mesh.num_links == 17

    def test_validation(self):
        with pytest.raises(ValueError):
            BraidMesh(0, 3)

    def test_tile_router(self):
        mesh = BraidMesh(2, 2)
        assert mesh.tile_router((1, 1)) == (1, 1)
        with pytest.raises(ValueError):
            mesh.tile_router((5, 0))

    def test_claim_release_cycle(self):
        mesh = BraidMesh(3, 3)
        path = [(0, 0), (0, 1), (0, 2)]
        assert mesh.is_path_free(path)
        mesh.claim(path, owner="b1")
        assert not mesh.is_path_free(path)
        assert mesh.busy_links() == 2
        assert mesh.release("b1") == 2
        assert mesh.is_path_free(path)

    def test_double_claim_rejected(self):
        mesh = BraidMesh(3, 3)
        mesh.claim([(0, 0), (0, 1)], owner="b1")
        with pytest.raises(ValueError, match="claimed"):
            mesh.claim([(0, 1), (0, 0)], owner="b2")

    def test_same_owner_double_claim_rejected(self):
        mesh = BraidMesh(3, 3)
        mesh.claim([(0, 0), (0, 1)], owner="b1")
        with pytest.raises(ValueError, match="already holds"):
            mesh.claim([(2, 0), (2, 1)], owner="b1")

    def test_overlapping_paths_conflict(self):
        mesh = BraidMesh(3, 3)
        mesh.claim([(0, 0), (0, 1), (1, 1)], owner="b1")
        assert not mesh.is_path_free([(0, 1), (1, 1), (2, 1)])
        assert mesh.is_path_free([(2, 0), (2, 1)])

    def test_path_links_validates_hops(self):
        with pytest.raises(ValueError, match="not a mesh hop"):
            path_links([(0, 0), (1, 1)])

    def test_out_of_bounds_path_not_free(self):
        mesh = BraidMesh(2, 2)
        assert not mesh.is_path_free([(0, 0), (0, -1)])

    def test_utilization_accounting(self):
        mesh = BraidMesh(1, 1)  # 4 links
        mesh.claim([(0, 0), (0, 1)], owner="b")
        mesh.observe_cycle()
        mesh.observe_cycle()
        assert mesh.mean_utilization == pytest.approx(0.25)
        mesh.reset_stats()
        assert mesh.mean_utilization == 0.0


class TestRouting:
    def test_dor_is_x_first(self):
        path = dor_path((0, 0), (2, 2))
        assert path == [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]

    def test_dor_degenerate(self):
        assert dor_path((1, 1), (1, 1)) == [(1, 1)]
        assert dor_path((0, 0), (0, 2)) == [(0, 0), (0, 1), (0, 2)]

    def test_alternatives_start_with_dor(self):
        mesh = BraidMesh(4, 4)
        paths = list(alternative_paths(mesh, (0, 0), (2, 2)))
        assert paths[0] == dor_path((0, 0), (2, 2))
        assert len(paths) >= 2

    def test_alternatives_unique_and_valid(self):
        mesh = BraidMesh(4, 4)
        seen = set()
        for path in alternative_paths(mesh, (0, 0), (3, 3)):
            key = tuple(path)
            assert key not in seen
            seen.add(key)
            path_links(path)  # validates hops
            assert path[0] == (0, 0)
            assert path[-1] == (3, 3)
            assert all(mesh.in_bounds(r) for r in path)

    def test_find_free_path_picks_detour(self):
        mesh = BraidMesh(3, 3)
        # Block the DOR route from (0,0) to (0,3).
        mesh.claim([(0, 1), (0, 2)], owner="blocker")
        found = find_free_path(mesh, (0, 0), (0, 3), adaptive=True)
        assert found is not None
        assert frozenset(((0, 1), (0, 2))) not in set(path_links(found))

    def test_find_free_path_non_adaptive_fails_when_blocked(self):
        mesh = BraidMesh(3, 3)
        mesh.claim([(0, 1), (0, 2)], owner="blocker")
        assert find_free_path(mesh, (0, 0), (0, 3), adaptive=False) is None

    def test_fully_blocked_returns_none(self):
        mesh = BraidMesh(1, 1)
        mesh.claim([(0, 0), (0, 1), (1, 1)], owner="a")
        mesh.claim([(1, 0), (1, 1)], owner="b")
        # (0,0)->(1,1): remaining link (0,0)-(1,0) can't complete a path.
        assert find_free_path(mesh, (0, 0), (1, 1), adaptive=True) is None

    @given(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
    )
    @settings(max_examples=60)
    def test_dor_length_is_manhattan(self, src, dst):
        path = dor_path(src, dst)
        deduped = [p for i, p in enumerate(path) if i == 0 or p != path[i - 1]]
        assert len(deduped) - 1 == manhattan(src, dst)
        path_links(deduped)

    @given(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
    )
    @settings(max_examples=40)
    def test_alternatives_always_reach(self, src, dst):
        mesh = BraidMesh(4, 4)
        for path in alternative_paths(mesh, src, dst):
            assert path[0] == src
            assert path[-1] == dst
