"""Cross-module integration and invariant tests.

These exercise whole-pipeline properties that no single module test
covers: QASM round-trips of real applications, braid-simulator
conservation laws on random circuits, and consistency between the
analytic models and the simulators they are calibrated from.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_circuit
from repro.arch import build_tiled_machine
from repro.frontend import decompose_circuit, estimate_circuit
from repro.network import BraidMesh, simulate_braids
from repro.partition import GridShape, naive_layout
from repro.qasm import Circuit, CircuitDag, parse_qasm, write_flat_qasm
from repro.qec import DOUBLE_DEFECT, PLANAR, choose_distance, logical_error_rate
from repro.tech import OPTIMISTIC


class TestRealAppRoundTrips:
    @pytest.mark.parametrize("app,size", [("gse", 3), ("sq", 2), ("im", 4)])
    def test_qasm_round_trip_real_apps(self, app, size):
        circuit = build_circuit(app, size)
        reparsed = parse_qasm(write_flat_qasm(circuit))
        assert len(reparsed) == len(circuit)
        assert reparsed.qubits == circuit.qubits
        for a, b in zip(circuit, reparsed):
            assert a.gate == b.gate
            assert a.qubits == b.qubits

    @pytest.mark.parametrize("app,size", [("gse", 3), ("sq", 2), ("im", 4)])
    def test_decomposition_preserves_qubits(self, app, size):
        circuit = build_circuit(app, size)
        lowered = decompose_circuit(circuit)
        assert set(circuit.qubits) <= set(lowered.qubits)
        assert not lowered.has_composites()

    @pytest.mark.parametrize("app,size", [("gse", 3), ("im", 4)])
    def test_estimates_consistent_with_dag(self, app, size):
        lowered = decompose_circuit(build_circuit(app, size))
        dag = CircuitDag(lowered)
        estimate = estimate_circuit(lowered, dag)
        assert estimate.critical_path == dag.critical_path_length
        assert estimate.total_operations == dag.num_nodes


@st.composite
def braidable_circuits(draw):
    """Random Clifford+T circuits over a fixed 3x3 tile layout."""
    qubits = [f"q{i}" for i in range(9)]
    circuit = Circuit("random", qubits=qubits)
    for _ in range(draw(st.integers(1, 25))):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            a, b = draw(st.permutations(qubits))[:2]
            circuit.apply("CNOT", a, b)
        elif choice == 1:
            circuit.apply("T", draw(st.sampled_from(qubits)))
        elif choice == 2:
            circuit.apply("H", draw(st.sampled_from(qubits)))
        else:
            circuit.apply("MEASZ", draw(st.sampled_from(qubits)))
    return circuit


class TestBraidSimProperties:
    @given(braidable_circuits(), st.integers(0, 6))
    @settings(max_examples=25, deadline=None)
    def test_all_policies_complete_and_bound(self, circuit, policy):
        placement = naive_layout(circuit.qubits, GridShape(3, 3))
        mesh = BraidMesh(3, 3)
        result = simulate_braids(
            circuit, placement, mesh, policy, distance=3,
            factory_routers=((3, 3), (0, 3)),
        )
        assert result.operations == len(circuit)
        # Schedule length respects the dependence lower bound.
        assert result.schedule_length >= result.critical_path
        # Utilization is a valid fraction.
        assert 0.0 <= result.mean_utilization <= 1.0
        # All claimed links were released (mesh drained).
        assert mesh.busy_links() == 0

    @given(braidable_circuits())
    @settings(max_examples=15, deadline=None)
    def test_policy6_never_loses_badly_to_policy1(self, circuit):
        placement = naive_layout(circuit.qubits, GridShape(3, 3))
        factories = ((3, 3),)
        r1 = simulate_braids(
            circuit, placement, BraidMesh(3, 3), 1, distance=3,
            factory_routers=factories,
        )
        r6 = simulate_braids(
            circuit, placement, BraidMesh(3, 3), 6, distance=3,
            factory_routers=factories,
        )
        assert r6.schedule_length <= r1.schedule_length * 1.5 + 10


class TestModelSimConsistency:
    def test_distance_choice_consistent_with_rate(self):
        for target in (1e-8, 1e-12, 1e-16):
            d = choose_distance(target, OPTIMISTIC)
            assert logical_error_rate(d, OPTIMISTIC) <= target

    def test_tile_models_agree_with_machine_accounting(self):
        circuit = decompose_circuit(build_circuit("im", 4))
        machine = build_tiled_machine(circuit)
        d = 5
        per_tile = DOUBLE_DEFECT.tile_qubits(d)
        assert machine.physical_qubits(d) % per_tile == 0

    def test_planar_tile_smaller_at_all_distances(self):
        for d in range(3, 31, 2):
            assert PLANAR.tile_qubits(d) < DOUBLE_DEFECT.tile_qubits(d)

    def test_toolflow_congestion_matches_direct_sim(self):
        """The toolflow's braid result equals a direct machine sim."""
        circuit = decompose_circuit(build_circuit("im", 4))
        machine = build_tiled_machine(circuit, optimize_layout=True)
        direct = machine.simulate(6, distance=3)
        repeat = machine.simulate(6, distance=3)
        # Determinism: identical runs give identical schedules.
        assert direct.schedule_length == repeat.schedule_length
        assert direct.mean_utilization == repeat.mean_utilization
