"""``repro check`` / ``repro lint`` CLIs, stage verify hooks, and the
round-trip validation of persisted ``lowered`` cache payloads."""

import json
from pathlib import Path

import pytest

from repro.analysis import AnalysisError
from repro.analysis.verify import (
    check_grid,
    lowered_payload_check,
    stage_verifier,
)
from repro.runner import stages
from repro.runner.backends import decode_record, make_record
from repro.runner.cache import StageCache
from repro.runner.cli import main
from repro.runner.keys import StageKey
from repro.runner.sweep import GridSpec

FIXTURE = Path(__file__).resolve().parent / "fixture_bad_stage.py"

SMALL_GRID = GridSpec(
    apps=("gse",), sizes={"gse": 3}, policies=(0, 6), distance=3
)


class TestCheckGrid:
    def test_small_grid_is_clean(self):
        report = check_grid(SMALL_GRID)
        assert report.ok
        # Policies 0 and 6 use different layouts -> two artifact sets.
        assert report.artifacts_checked == 2
        assert report.points_checked == 2
        payload = report.to_jsonable()
        assert payload["ok"] is True
        assert payload["diagnostics"] == []

    def test_derives_distance_like_run_point(self):
        # No explicit distance: derived from the frontend error budget.
        grid = GridSpec(
            apps=("gse",), sizes={"gse": 3}, policies=(0,), distance=None
        )
        report = check_grid(grid)
        assert report.ok
        assert report.artifacts_checked == 1

    def test_check_cli_json(self, capsys):
        exit_code = main(["check", "--grid", "tiny", "--json"])
        assert exit_code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["ok"] is True
        assert "0 error(s)" in captured.err


class TestLintCli:
    def test_clean_package_exits_zero(self):
        assert main(["lint", "src/repro"]) == 0

    def test_fixture_fails_the_build(self, capsys):
        assert main(["lint", str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        for rule in ("ND01", "ND02", "SK01", "FM01"):
            assert rule in out

    def test_missing_path_is_usage_error(self):
        assert main(["lint", "no/such/path.py"]) == 2


class TestStageVerifyHook:
    def test_rejected_value_never_enters_the_cache(self):
        cache = StageCache()
        key = StageKey.make("probe", x=1)

        def verify(value):
            raise AnalysisError([])

        with pytest.raises(AnalysisError):
            cache.get_or_compute(key, lambda: 42, verify=verify)
        assert key not in cache
        # Without the verifier the same key computes normally.
        assert cache.get_or_compute(key, lambda: 42) == 42

    def test_stage_verifier_catches_a_corrupt_revived_circuit(self):
        verifier = stage_verifier("lowered")
        assert verifier is not None
        from repro.qasm.circuit import Circuit

        good = Circuit(name="ok")
        good.apply("PREPZ", "q0")
        verifier(good)  # no raise
        bad = Circuit(name="bad")
        bad.apply("TOFFOLI", "a", "b", "c")  # composite: not lowered
        with pytest.raises(AnalysisError):
            verifier(bad)

    def test_set_stage_verification_round_trips(self):
        assert stages.set_stage_verification(True) is False
        try:
            cache = StageCache()
            circuit = stages.compute_lowered(cache, "gse", 3)
            assert len(circuit) > 0
        finally:
            assert stages.set_stage_verification(False) is True

    def test_verified_run_cli(self, tmp_path, capsys):
        exit_code = main([
            "run", "gse", "--size", "3", "--policy", "0",
            "--distance", "3", "--verify-stages",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert exit_code == 0
        capsys.readouterr()

    def teardown_method(self):
        stages.set_stage_verification(False)


def _persist_lowered(tmp_path):
    cache = StageCache(tmp_path / "cache")
    stages.compute_lowered(cache, "gse", 3)
    files = list((tmp_path / "cache" / "lowered").glob("*.json"))
    assert len(files) == 1
    return cache, files[0]


def _rewrite_value(path, mutate):
    # Entries may be gzipped and carry a payload checksum; decode through
    # the backend helpers and re-record so only the mutation is visible.
    record = decode_record(path.read_bytes(), path=path)
    record = make_record(record["key"], mutate(record["value"]))
    path.write_text(json.dumps(record), encoding="utf-8")


class TestCacheVerifyRoundTrip:
    def test_intact_payload_verifies(self, tmp_path):
        cache, _ = _persist_lowered(tmp_path)
        result = cache.verify(
            payload_checks={"lowered": lowered_payload_check}
        )
        assert result["checked"] >= 1
        assert result["invalid_payload"] == []
        assert result["ok"] == result["checked"]

    def test_bad_arity_payload_is_reported_not_raised(self, tmp_path):
        cache, path = _persist_lowered(tmp_path)

        def mutate(value):
            lines = value["ops"].split("\n")
            lines[0] = "CNOT " + lines[0].split(" ", 1)[1].split(" ")[0]
            value["ops"] = "\n".join(lines)
            return value

        _rewrite_value(path, mutate)
        result = cache.verify(
            payload_checks={"lowered": lowered_payload_check}
        )
        (entry,) = result["invalid_payload"]
        assert entry["path"] == str(path)
        assert "CNOT" in entry["error"]

    def test_dangling_operand_payload_is_reported(self, tmp_path):
        cache, path = _persist_lowered(tmp_path)

        def mutate(value):
            # Drop a registered qubit: its operations now dangle.
            value["qubits"] = value["qubits"][1:]
            return value

        _rewrite_value(path, mutate)
        result = cache.verify(
            payload_checks={"lowered": lowered_payload_check}
        )
        (entry,) = result["invalid_payload"]
        assert "dangling" in entry["error"]

    def test_cache_verify_cli_reports_and_fails(self, tmp_path, capsys):
        _, path = _persist_lowered(tmp_path)
        _rewrite_value(
            path, lambda value: {**value, "qubits": value["qubits"][1:]}
        )
        exit_code = main([
            "cache", "verify", "--cache-dir", str(tmp_path / "cache")
        ])
        assert exit_code == 1
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert len(payload["invalid_payload"]) == 1
        assert "problematic" in captured.err

    def test_cache_verify_cli_clean(self, tmp_path, capsys):
        _persist_lowered(tmp_path)
        exit_code = main([
            "cache", "verify", "--cache-dir", str(tmp_path / "cache")
        ])
        assert exit_code == 0
        assert "verified" in capsys.readouterr().err
