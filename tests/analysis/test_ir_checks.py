"""Seeded-defect coverage for the IR verifier passes.

Each test class plants one class of defect in an otherwise-valid
artifact — through the same trusted/bypass paths a real bug would use
(``Circuit.from_operations``, direct DAG list mutation, the raw
``BraidPlan(**fields)`` constructor) — and asserts the verifier flags
it with an actionable diagnostic.  Hypothesis sweeps randomized
variants of the highest-value classes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Severity
from repro.analysis.ir_checks import (
    check_circuit,
    check_dag,
    check_placement,
    check_plan,
    check_point_artifacts,
)
from repro.arch.tiled import build_tiled_machine
from repro.network.plan import BraidPlan
from repro.partition.layout import GridShape, Placement
from repro.qasm.circuit import Circuit, Operation
from repro.qasm.dag import CircuitDag


def raw_operation(gate, qubits, param=None):
    """Build an Operation bypassing ``__post_init__`` validation."""
    op = object.__new__(Operation)
    object.__setattr__(op, "gate", gate)
    object.__setattr__(op, "qubits", tuple(qubits))
    object.__setattr__(op, "param", param)
    return op


def tiny_circuit():
    c = Circuit(name="tiny")
    qs = c.add_register("q", 4)
    for q in qs:
        c.apply("PREPZ", q)
    c.apply("CNOT", qs[0], qs[1])
    c.apply("T", qs[2])
    c.apply("CNOT", qs[2], qs[3])
    c.apply("H", qs[0])
    c.apply("MEASZ", qs[0])
    return c


def tiny_plan(distance=3):
    machine = build_tiled_machine(tiny_circuit(), optimize_layout=False)
    return machine.plan(distance)


def corrupted(plan, **overrides):
    """Clone a plan through its raw constructor with fields replaced."""
    fields = {name: getattr(plan, name) for name in BraidPlan.__slots__}
    fields.update(overrides)
    return BraidPlan(**fields)


def errors_of(diags, pass_name=None):
    return [
        d
        for d in diags
        if d.severity is Severity.ERROR
        and (pass_name is None or d.pass_name == pass_name)
    ]


class TestCleanArtifacts:
    def test_tiny_point_is_clean(self):
        plan = tiny_plan()
        diags = check_point_artifacts(
            plan.circuit,
            dag=plan.dag,
            placement=plan.placement,
            plan=plan,
            strict=True,
        )
        assert diags == []


class TestCircuitDefects:
    def test_bad_arity(self):
        c = tiny_circuit()
        bad = Circuit.from_operations(
            c.name, c.qubits, [*c.operations, raw_operation("CNOT", ("q0",))]
        )
        (diag,) = errors_of(check_circuit(bad), "circuit")
        assert "arity" in diag.message
        assert diag.location == f"op {len(bad) - 1}"

    def test_unknown_gate(self):
        bad = Circuit.from_operations(
            "g", ["q0"], [raw_operation("WARP", ("q0",))]
        )
        (diag,) = errors_of(check_circuit(bad), "circuit")
        assert "unknown gate" in diag.message

    def test_duplicate_operands(self):
        bad = Circuit.from_operations(
            "g", ["q0"], [raw_operation("CNOT", ("q0", "q0"))]
        )
        (diag,) = errors_of(check_circuit(bad), "circuit")
        assert "distinct" in diag.message

    def test_dangling_operand(self):
        bad = Circuit.from_operations(
            "g", ["q0"], [raw_operation("CNOT", ("q0", "ghost"))]
        )
        (diag,) = errors_of(check_circuit(bad), "circuit")
        assert "dangling" in diag.message and "ghost" in diag.message

    def test_composite_gate_in_lowered_circuit(self):
        c = Circuit(name="g")
        c.apply("TOFFOLI", "a", "b", "c")
        assert errors_of(check_circuit(c, lowered=False)) == []
        (diag,) = errors_of(check_circuit(c, lowered=True), "circuit")
        assert "composite" in diag.message

    def test_missing_parameter(self):
        bad = Circuit.from_operations(
            "g", ["q0"], [raw_operation("RZ", ("q0",), param=None)]
        )
        diags = errors_of(check_circuit(bad), "circuit")
        assert any("parameter" in d.message for d in diags)

    def test_invalid_qubit_name(self):
        bad = Circuit(name="g")
        bad._qubits["a b"] = None  # bypasses add_qubit validation
        bad._operations.append(raw_operation("H", ("a b",)))
        diags = errors_of(check_circuit(bad), "circuit")
        assert any("invalid qubit name" in d.message for d in diags)

    def test_fence_out_of_range(self):
        c = tiny_circuit()
        bad = Circuit.from_operations(
            c.name, c.qubits, c.operations, fences=[(999, ("q0",))]
        )
        diags = errors_of(check_circuit(bad), "circuit")
        assert any("fence position" in d.message for d in diags)

    def test_use_before_init_is_strict_only(self):
        c = Circuit(name="g")
        c.apply("H", "q0")  # no PREPZ first
        assert check_circuit(c) == []
        diags = check_circuit(c, strict=True)
        assert any(
            d.severity is Severity.WARNING and "preparation" in d.message
            for d in diags
        )


class TestDagDefects:
    def test_back_edge_violates_program_order(self):
        c = tiny_circuit()
        dag = CircuitDag(c)
        dag._successors[5].append(4)
        dag._predecessors[4].append(5)
        diags = errors_of(check_dag(dag, circuit=c), "dag")
        assert any("program order" in d.message for d in diags)

    def test_two_cycle_fails_topological_sweep(self):
        c = tiny_circuit()
        dag = CircuitDag(c)
        # 4 <-> 5 cycle (one direction may already exist).
        if 5 not in dag._successors[4]:
            dag._successors[4].append(5)
            dag._predecessors[5].append(4)
        dag._successors[5].append(4)
        dag._predecessors[4].append(5)
        diags = errors_of(check_dag(dag, circuit=c), "dag")
        assert any("cycle" in d.message for d in diags)

    def test_unmirrored_edge(self):
        c = tiny_circuit()
        dag = CircuitDag(c)
        dag._successors[0].append(len(c) - 1)  # no predecessor entry
        diags = errors_of(check_dag(dag, circuit=c), "dag")
        assert any("mirrored" in d.message for d in diags)

    def test_edge_out_of_range(self):
        c = tiny_circuit()
        dag = CircuitDag(c)
        dag._successors[0].append(999)
        diags = errors_of(check_dag(dag, circuit=c), "dag")
        assert any("node range" in d.message for d in diags)

    def test_node_count_mismatch(self):
        c = tiny_circuit()
        dag = CircuitDag(c)
        grown = c.copy()
        grown.apply("H", "q1")
        diags = errors_of(check_dag(dag, circuit=grown), "dag")
        assert any("nodes" in d.message for d in diags)

    def test_edges_accessor_is_forward_only(self):
        dag = CircuitDag(tiny_circuit())
        edges = list(dag.edges())
        assert edges and all(src < dst for src, dst in edges)


class TestPlacementDefects:
    def test_off_grid_site(self):
        placement = Placement(GridShape(2, 2), {"a": (0, 0)})
        placement.positions["b"] = (9, 9)  # bypasses __post_init__
        diags = errors_of(check_placement(placement), "placement")
        assert any("off-grid" in d.message for d in diags)

    def test_double_booked_site(self):
        placement = Placement(GridShape(2, 2), {"a": (0, 0)})
        placement.positions["b"] = (0, 0)
        diags = errors_of(check_placement(placement), "placement")
        assert any("already assigned" in d.message for d in diags)

    def test_unplaced_operand(self):
        c = tiny_circuit()
        placement = Placement(GridShape(3, 3), {"q0": (0, 0)})
        diags = errors_of(
            check_placement(placement, circuit=c), "placement"
        )
        missing = {d.message.split("'")[1] for d in diags}
        assert missing == {"q1", "q2", "q3"}


def replace_segment(plan, op_index, seg_index, **seg_overrides):
    """Corrupt one prebound segment tuple of one op."""
    src, dst, hold, min_len, path, mask = plan.segments[op_index][seg_index]
    seg = {
        "src": src, "dst": dst, "hold": hold,
        "min_len": min_len, "path": path, "mask": mask,
    }
    seg.update(seg_overrides)
    new_seg = (
        seg["src"], seg["dst"], seg["hold"],
        seg["min_len"], seg["path"], seg["mask"],
    )
    segments = list(plan.segments)
    per_op = list(segments[op_index])
    per_op[seg_index] = new_seg
    segments[op_index] = tuple(per_op)
    return corrupted(plan, segments=tuple(segments))


def first_braid_op(plan):
    return next(i for i in range(plan.num_ops) if plan.is_braid[i])


class TestPlanDefects:
    def test_off_mesh_route(self):
        plan = tiny_plan()
        index = first_braid_op(plan)
        bad = replace_segment(plan, index, 0, src=(99, 99))
        diags = errors_of(check_plan(bad), "plan")
        assert any("off-mesh" in d.message for d in diags)

    def test_mask_link_mismatch(self):
        plan = tiny_plan()
        index = first_braid_op(plan)
        old_mask = plan.segments[index][0][5]
        bad = replace_segment(plan, index, 0, mask=old_mask ^ 1 or 1)
        diags = errors_of(check_plan(bad), "plan")
        assert any("mask" in d.message for d in diags)

    def test_mask_beyond_mesh_links(self):
        plan = tiny_plan()
        index = first_braid_op(plan)
        old_mask = plan.segments[index][0][5]
        from repro.network.mesh import BraidMesh

        num_links = BraidMesh(plan.rows, plan.cols).num_links
        bad = replace_segment(
            plan, index, 0, mask=old_mask | (1 << num_links)
        )
        diags = errors_of(check_plan(bad), "plan")
        assert any("beyond" in d.message for d in diags)

    def test_distance_mismatch(self):
        plan = tiny_plan(distance=3)
        index = first_braid_op(plan)
        bad = replace_segment(plan, index, 0, hold=5)
        diags = errors_of(check_plan(bad), "plan")
        assert any("hold 5" in d.message and "distance 3" in d.message
                   for d in diags)

    def test_disconnected_route(self):
        plan = tiny_plan()
        index = first_braid_op(plan)
        src, dst, *_ = plan.segments[index][0]
        bad = replace_segment(plan, index, 0, path=(src, src))
        diags = errors_of(check_plan(bad), "plan")
        assert any("route" in d.message for d in diags)

    def test_mutated_plan_array_type(self):
        plan = tiny_plan()
        bad = corrupted(plan, in_degrees=list(plan.in_degrees))
        diags = errors_of(check_plan(bad), "plan")
        assert any(
            "mutable" in d.message and "in_degrees" in d.message
            for d in diags
        )

    def test_stale_dag_arrays(self):
        plan = tiny_plan()
        in_degrees = list(plan.in_degrees)
        in_degrees[0] += 1
        bad = corrupted(plan, in_degrees=tuple(in_degrees))
        diags = errors_of(check_plan(bad), "plan")
        assert any("in_degrees" in (d.location or d.message) for d in diags)

    def test_critical_path_mismatch(self):
        plan = tiny_plan()
        bad = corrupted(plan, critical_path=plan.critical_path + 1)
        diags = errors_of(check_plan(bad), "plan")
        assert any("critical path" in d.message for d in diags)

    def test_missing_factory(self):
        plan = tiny_plan()
        assert plan.circuit.t_count > 0
        bad = corrupted(plan, factory_routers=())
        diags = errors_of(check_plan(bad), "plan")
        assert any("no factory" in d.message for d in diags)

    def test_route_length_mismatch(self):
        plan = tiny_plan()
        index = first_braid_op(plan)
        lengths = list(plan.route_length)
        lengths[index] += 3
        bad = corrupted(plan, route_length=tuple(lengths))
        diags = errors_of(check_plan(bad), "plan")
        assert any("route_length" in d.message for d in diags)

    def test_circuit_length_drift(self):
        plan = tiny_plan()
        plan.circuit.apply("H", "q1")  # mutate the planned circuit
        try:
            diags = errors_of(check_plan(plan), "plan")
            assert any("must not be mutated" in d.message for d in diags)
        finally:
            # Restore: the circuit object is shared with the plan memo.
            del plan.circuit._operations[-1]


# ---------------------------------------------------------------------------
# Hypothesis: randomized defect variants

GATE_POOL = st.sampled_from(["H", "X", "Z", "S", "T", "CNOT", "CZ"])
QUBITS = [f"q{i}" for i in range(5)]


@st.composite
def valid_circuits(draw):
    c = Circuit(name="gen")
    c.add_qubits(QUBITS)
    for q in QUBITS:
        c.apply("PREPZ", q)
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        gate = draw(GATE_POOL)
        if gate in ("CNOT", "CZ"):
            a, b = draw(
                st.lists(
                    st.sampled_from(QUBITS),
                    min_size=2, max_size=2, unique=True,
                )
            )
            c.apply(gate, a, b)
        else:
            c.apply(gate, draw(st.sampled_from(QUBITS)))
    return c


@settings(max_examples=25, deadline=None)
@given(circuit=valid_circuits())
def test_generated_circuits_verify_clean(circuit):
    assert check_circuit(circuit, lowered=True) == []
    assert check_dag(CircuitDag(circuit), circuit=circuit) == []


@settings(max_examples=25, deadline=None)
@given(
    circuit=valid_circuits(),
    data=st.data(),
)
def test_seeded_arity_defect_is_always_flagged(circuit, data):
    index = data.draw(
        st.integers(min_value=0, max_value=len(circuit) - 1)
    )
    ops = list(circuit.operations)
    victim = ops[index]
    ops[index] = raw_operation(victim.gate, (*victim.qubits, "q0", "q0"))
    bad = Circuit.from_operations(circuit.name, circuit.qubits, ops)
    diags = errors_of(check_circuit(bad), "circuit")
    assert any(d.location == f"op {index}" for d in diags)


@settings(max_examples=25, deadline=None)
@given(circuit=valid_circuits(), data=st.data())
def test_seeded_back_edge_is_always_flagged(circuit, data):
    dag = CircuitDag(circuit)
    dst = data.draw(
        st.integers(min_value=0, max_value=dag.num_nodes - 2)
    )
    src = data.draw(
        st.integers(min_value=dst + 1, max_value=dag.num_nodes - 1)
    )
    dag._successors[src].append(dst)
    dag._predecessors[dst].append(src)
    diags = errors_of(check_dag(dag, circuit=circuit), "dag")
    assert diags


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_seeded_mask_flip_is_always_flagged(data):
    plan = tiny_plan()
    braid_ops = [i for i in range(plan.num_ops) if plan.is_braid[i]]
    index = data.draw(st.sampled_from(braid_ops))
    seg_index = data.draw(
        st.integers(
            min_value=0, max_value=len(plan.segments[index]) - 1
        )
    )
    mask = plan.segments[index][seg_index][5]
    bit = data.draw(st.integers(min_value=0, max_value=7))
    flipped = mask ^ (1 << bit)
    bad = replace_segment(plan, index, seg_index, mask=flipped)
    assert errors_of(check_plan(bad), "plan")
