"""Linter fixture: a stage module with known determinism violations.

The CI ``analysis`` job runs ``python -m repro lint`` over this file
and asserts a *nonzero* exit — proving the linter actually fails the
build on the defect classes it claims to catch.  Not a test module
(``fixture_`` prefix keeps pytest from collecting it) and never
imported; the code only needs to parse.

Expected findings: ND01 (time in a key function), ND02 (set feeding a
key), SK01 (``distance`` never reaches the key), FM01 (plan array
mutation + ``object.__setattr__`` outside a constructor).
"""

import time

from repro.runner.keys import StageKey


def compute_bad_stage(cache, app, sizes, distance):
    """Every rule violated at once; ``distance`` never reaches the key."""
    key = StageKey.make(
        "bad_stage",
        app=app,
        sizes={s for s in sizes},
        stamp=time.time(),
    )
    return cache.get_or_compute(key, lambda: app)


def clobber_plan(plan):
    plan.in_degrees.append(0)
    object.__setattr__(plan, "critical_path", 0)
    return plan
