"""Determinism/purity linter: rule coverage, self-cleanliness, fixture."""

from pathlib import Path

import repro
from repro.analysis.lint import lint_paths, lint_source

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURE = Path(__file__).resolve().parent / "fixture_bad_stage.py"


def rules_of(findings):
    return {f.pass_name for f in findings}


class TestRules:
    def test_nd01_time_in_key_function(self):
        findings = lint_source(
            "def f(cache, app):\n"
            "    key = StageKey.make('s', app=app, t=time.time())\n"
            "    return cache.get_or_compute(key, lambda: app)\n"
        )
        assert "ND01" in rules_of(findings)

    def test_nd01_requires_key_context(self):
        # time.time() in a non-key function (e.g. prune) is fine.
        findings = lint_source(
            "def prune(self):\n"
            "    cutoff = time.time() - 3600\n"
            "    return cutoff\n"
        )
        assert findings == []

    def test_nd01_id_into_key(self):
        findings = lint_source(
            "def f(cache, plan):\n"
            "    key = StageKey.make('s', plan=id(plan))\n"
            "    return cache.get_or_compute(key, lambda: plan)\n"
        )
        assert "ND01" in rules_of(findings)

    def test_nd02_set_into_key(self):
        findings = lint_source(
            "def f(cache, apps):\n"
            "    key = StageKey.make('s', apps=set(apps))\n"
            "    return cache.get_or_compute(key, lambda: apps)\n"
        )
        assert "ND02" in rules_of(findings)

    def test_nd02_sorted_set_is_fine(self):
        findings = lint_source(
            "def f(cache, apps):\n"
            "    key = StageKey.make('s', apps=sorted({a for a in apps}))\n"
            "    return cache.get_or_compute(key, lambda: apps)\n"
        )
        assert findings == []

    def test_nd02_set_in_payload(self):
        findings = lint_source(
            "def to_jsonable(self):\n"
            "    return {'qubits': set(self.qubits)}\n"
        )
        assert "ND02" in rules_of(findings)

    def test_sk01_parameter_never_reaches_key(self):
        findings = lint_source(
            "def f(cache, app, distance):\n"
            "    key = StageKey.make('s', app=app)\n"
            "    return cache.get_or_compute(key, lambda: app)\n"
        )
        (finding,) = findings
        assert finding.pass_name == "SK01"
        assert "distance" in finding.message

    def test_sk01_tracks_assignment_aliases(self):
        findings = lint_source(
            "def f(cache, app, size, distance):\n"
            "    name, size = _resolve(app, size)\n"
            "    key = StageKey.make('s', app=name, size=size, d=distance)\n"
            "    return cache.get_or_compute(key, lambda: name)\n"
        )
        assert findings == []

    def test_sk01_accepts_key_helper_functions(self):
        findings = lint_source(
            "def f(cache, app, size):\n"
            "    return cache.get_or_compute(\n"
            "        frontend_key(app, size), lambda: app\n"
            "    )\n"
        )
        assert findings == []

    def test_fm01_setattr_outside_constructor(self):
        findings = lint_source(
            "def hack(plan):\n"
            "    object.__setattr__(plan, 'distance', 3)\n"
        )
        assert "FM01" in rules_of(findings)

    def test_fm01_setattr_in_constructor_is_fine(self):
        findings = lint_source(
            "class Frozen:\n"
            "    def __init__(self, value):\n"
            "        object.__setattr__(self, 'value', value)\n"
        )
        assert findings == []

    def test_fm01_plan_array_mutations(self):
        findings = lint_source(
            "def hack(self, plan):\n"
            "    plan.in_degrees.append(0)\n"
            "    self.plan.route_length[0] = 99\n"
        )
        assert [f.pass_name for f in findings] == ["FM01", "FM01"]

    def test_fm01_rebinding_is_not_mutation(self):
        findings = lint_source(
            "class Sim:\n"
            "    def bind(self, plan):\n"
            "        self.plan = plan\n"
        )
        assert findings == []

    def test_fm01_skipped_inside_plan_classes(self):
        findings = lint_source(
            "class BraidPlan:\n"
            "    def _rebuild(self, plan):\n"
            "        plan.segments[0] = ()\n"
        )
        assert findings == []

    def test_suppression_marker(self):
        findings = lint_source(
            "def f(cache, app):\n"
            "    key = StageKey.make('s', t=time.time(), app=app)"
            "  # repro-lint: skip\n"
            "    return cache.get_or_compute(key, lambda: app)\n"
        )
        assert findings == []

    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n")
        (finding,) = findings
        assert finding.pass_name == "parse"


class TestTrees:
    def test_src_repro_is_clean(self):
        package_root = Path(repro.__file__).parent
        findings = lint_paths([package_root])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_fixture_module_is_flagged(self):
        findings = lint_paths([FIXTURE])
        rules = rules_of(findings)
        assert {"ND01", "ND02", "SK01", "FM01"} <= rules
