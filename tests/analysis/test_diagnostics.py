"""Diagnostic shape, serialization, and the unified guard exception."""

import pickle

import pytest

from repro.analysis import (
    AnalysisError,
    Diagnostic,
    PlanMismatchError,
    Severity,
    max_severity,
    raise_on_errors,
)


class TestDiagnostic:
    def test_format_is_one_line(self):
        diag = Diagnostic(
            Severity.ERROR, "plan", "gse[size=4]/d=5", "op 3", "bad mask"
        )
        assert diag.format() == (
            "error [plan] gse[size=4]/d=5 op 3: bad mask"
        )
        assert "\n" not in diag.format()

    def test_format_without_location(self):
        diag = Diagnostic.warning("circuit", "sq", "", "unused qubit")
        assert diag.format() == "warning [circuit] sq: unused qubit"

    def test_json_round_trip(self):
        diag = Diagnostic.error("dag", "im[size=8]", "op 0", "cycle")
        revived = Diagnostic.from_jsonable(diag.to_jsonable())
        assert revived == diag
        assert diag.to_jsonable()["pass"] == "dag"

    def test_severity_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank

    def test_max_severity(self):
        assert max_severity([]) is None
        diags = [
            Diagnostic.warning("a", "", "", "w"),
            Diagnostic.error("b", "", "", "e"),
        ]
        assert max_severity(diags) is Severity.ERROR
        assert max_severity(diags[:1]) is Severity.WARNING


class TestAnalysisError:
    def test_carries_diagnostics_and_lists_them(self):
        diags = [
            Diagnostic.error("plan", "x", "op 1", "first"),
            Diagnostic.error("plan", "x", "op 2", "second"),
        ]
        error = AnalysisError(diags)
        assert error.diagnostics == tuple(diags)
        assert "first" in str(error) and "second" in str(error)

    def test_raise_on_errors_ignores_warnings(self):
        raise_on_errors([Diagnostic.warning("a", "", "", "advisory")])
        with pytest.raises(AnalysisError) as excinfo:
            raise_on_errors([
                Diagnostic.warning("a", "", "", "advisory"),
                Diagnostic.error("b", "", "", "fatal"),
            ])
        assert len(excinfo.value.diagnostics) == 1
        assert excinfo.value.diagnostics[0].message == "fatal"


class TestPlanMismatchError:
    def test_is_a_value_error_with_plain_message(self):
        error = PlanMismatchError(
            "plan was compiled for distance=5", artifact="plan for 'gse'"
        )
        assert isinstance(error, ValueError)
        assert isinstance(error, AnalysisError)
        assert str(error) == "plan was compiled for distance=5"

    def test_carries_a_runtime_guard_diagnostic(self):
        error = PlanMismatchError("mutated", artifact="plan for 'sq'")
        (diag,) = error.diagnostics
        assert diag.severity is Severity.ERROR
        assert diag.pass_name == "runtime-guard"
        assert diag.artifact == "plan for 'sq'"

    def test_picklable(self):
        # Sweep workers send exceptions across process boundaries.
        error = PlanMismatchError("boom", artifact="a", location="op 1")
        revived = pickle.loads(pickle.dumps(error))
        assert isinstance(revived, PlanMismatchError)
        assert str(revived) == "boom"
