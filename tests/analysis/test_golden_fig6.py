"""Golden coverage: the IR verifier over all 28 Fig. 6 design points.

The acceptance bar for the analysis layer — every artifact the paper's
headline figure compiles (4 apps x 7 policies, collapsing to 8 unique
(app, layout, distance) artifact sets) verifies with zero diagnostics,
including the strict advisory passes staying warning-only.
"""

import pytest

from repro.analysis import Severity
from repro.analysis.verify import check_grid
from repro.runner.cache import StageCache
from repro.runner.sweep import fig6_grid


@pytest.fixture(scope="module")
def fig6_report():
    return check_grid(fig6_grid(), cache=StageCache(), strict=True)


@pytest.mark.slow
class TestFig6Golden:
    def test_covers_all_28_points(self, fig6_report):
        assert fig6_report.points_checked == 28
        assert fig6_report.artifacts_checked == 8

    def test_zero_error_diagnostics(self, fig6_report):
        errors = fig6_report.errors
        assert errors == (), "\n".join(d.format() for d in errors)
        assert fig6_report.ok

    def test_strict_warnings_stay_advisory(self, fig6_report):
        # Real lowered workloads legitimately trip the advisory passes
        # (sq first-touches qubits without preparations); those must
        # surface as warnings, never errors.
        assert all(
            d.severity is not Severity.ERROR
            for d in fig6_report.diagnostics
        )
