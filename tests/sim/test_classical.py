"""Tests for the classical reversible simulator."""

import pytest

from repro.qasm import Circuit
from repro.sim import ClassicalState, register_value, simulate_classical


class TestClassicalState:
    def test_default_zero(self):
        state = ClassicalState()
        assert state["anything"] == 0

    def test_set_get(self):
        state = ClassicalState({"a": 1})
        assert state["a"] == 1
        state["b"] = 1
        assert state["b"] == 1

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            ClassicalState({"a": 2})

    def test_register_round_trip(self):
        state = ClassicalState()
        reg = ["r0", "r1", "r2", "r3"]
        state.load_register(reg, 11)
        assert state.register_value(reg) == 11
        assert state["r0"] == 1  # little-endian LSB

    def test_load_overflow_rejected(self):
        with pytest.raises(ValueError):
            ClassicalState().load_register(["r0"], 2)


class TestSimulation:
    def test_x(self):
        c = Circuit()
        c.apply("X", "a")
        assert simulate_classical(c)["a"] == 1

    def test_cnot(self):
        c = Circuit()
        c.apply("CNOT", "a", "b")
        assert simulate_classical(c, {"a": 1})["b"] == 1
        assert simulate_classical(c, {"a": 0})["b"] == 0

    def test_toffoli(self):
        c = Circuit()
        c.apply("TOFFOLI", "a", "b", "t")
        assert simulate_classical(c, {"a": 1, "b": 1})["t"] == 1
        assert simulate_classical(c, {"a": 1, "b": 0})["t"] == 0

    def test_swap(self):
        c = Circuit()
        c.apply("SWAP", "a", "b")
        state = simulate_classical(c, {"a": 1})
        assert state["a"] == 0
        assert state["b"] == 1

    def test_fredkin(self):
        c = Circuit()
        c.apply("FREDKIN", "ctl", "a", "b")
        on = simulate_classical(c, {"ctl": 1, "a": 1})
        assert (on["a"], on["b"]) == (0, 1)
        off = simulate_classical(c, {"ctl": 0, "a": 1})
        assert (off["a"], off["b"]) == (1, 0)

    def test_prepz_resets(self):
        c = Circuit()
        c.apply("PREPZ", "a")
        assert simulate_classical(c, {"a": 1})["a"] == 0

    def test_measz_identity(self):
        c = Circuit()
        c.apply("MEASZ", "a")
        assert simulate_classical(c, {"a": 1})["a"] == 1

    def test_rejects_quantum_gates(self):
        c = Circuit()
        c.apply("H", "a")
        with pytest.raises(ValueError, match="not classical-reversible"):
            simulate_classical(c)

    def test_initial_state_not_mutated(self):
        initial = ClassicalState({"a": 0})
        c = Circuit()
        c.apply("X", "a")
        simulate_classical(c, initial)
        assert initial["a"] == 0

    def test_register_value_helper(self):
        c = Circuit()
        c.apply("X", "r1")
        assert register_value(c, ["r0", "r1"]) == 2
