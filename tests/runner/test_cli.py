"""CLI smoke tests: ``python -m repro run/sweep/report``."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runner.bench import BenchReport
from repro.runner.cli import _parse_policies, _parse_size, build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _repro(*args: str, timeout: int = 300) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=REPO_ROOT,
    )


class TestArgParsing:
    def test_parse_policies(self):
        assert _parse_policies("6") == (6,)
        assert _parse_policies("0,3,6") == (0, 3, 6)
        assert _parse_policies("0-3") == (0, 1, 2, 3)
        assert _parse_policies("0-2,6,6") == (0, 1, 2, 6)

    def test_parse_size(self):
        assert _parse_size("default", "sq") is None
        assert _parse_size("small", "sq") == 3
        assert _parse_size("7", "sq") == 7


def _bench_report(**overrides) -> BenchReport:
    base = dict(
        grid="tiny",
        points=21,
        workers=1,
        stage_seconds={"braid_sim": 2.0, "braid_plan": 0.5},
        total_seconds=4.0,
        reference_braid_seconds=10.0,
        braid_speedup=4.0,
        equivalence_checked=21,
        engine="vec",
    )
    base.update(overrides)
    return BenchReport(**base)


class TestEngineFlags:
    def test_engine_choices_on_run_sweep_bench(self):
        parser = build_parser()
        for argv in (
            ["run", "sq", "--engine", "vec"],
            ["sweep", "--apps", "sq", "--engine", "vec"],
            ["bench", "--engine", "vec"],
        ):
            assert parser.parse_args(argv).engine == "vec"
        assert parser.parse_args(["bench"]).engine == "flat"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--engine", "turbo"])

    def test_missing_numpy_is_a_clean_cli_error(self, monkeypatch, capsys):
        def boom(**kwargs):
            raise ImportError("vec engine needs numpy (repro[vec])")

        monkeypatch.setattr("repro.runner.cli.run_bench", boom)
        assert main(["bench", "--engine", "vec"]) == 2
        assert "error: vec engine needs numpy" in capsys.readouterr().err


class TestNotSlowerThanGate:
    def test_holds_against_other_engine(
        self, monkeypatch, capsys, tmp_path
    ):
        other = tmp_path / "flat.json"
        _bench_report(engine="flat", braid_speedup=3.0).save(other)
        monkeypatch.setattr(
            "repro.runner.cli.run_bench",
            lambda **kwargs: _bench_report(),
        )
        assert main(
            ["bench", "--engine", "vec", "--reference",
             "--not-slower-than", str(other)]
        ) == 0
        assert "holds against" in capsys.readouterr().err

    def test_regression_fails_the_gate(
        self, monkeypatch, capsys, tmp_path
    ):
        other = tmp_path / "flat.json"
        _bench_report(engine="flat", braid_speedup=8.0).save(other)
        monkeypatch.setattr(
            "repro.runner.cli.run_bench",
            lambda **kwargs: _bench_report(braid_speedup=4.0),
        )
        assert main(
            ["bench", "--engine", "vec", "--reference",
             "--not-slower-than", str(other)]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_gate_forces_reference_pass(self, monkeypatch, tmp_path):
        other = tmp_path / "flat.json"
        _bench_report(engine="flat", braid_speedup=3.0).save(other)
        seen = {}

        def record(**kwargs):
            seen.update(kwargs)
            return _bench_report()

        monkeypatch.setattr("repro.runner.cli.run_bench", record)
        main(["bench", "--not-slower-than", str(other)])
        assert seen["reference"] is True


@pytest.mark.slow
class TestCliSmoke:
    def test_run_produces_valid_json(self, tmp_path):
        out = tmp_path / "point.json"
        proc = _repro(
            "run",
            "sha1",
            "--size",
            "small",
            "--distance",
            "5",
            "--out",
            str(out),
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["spec"]["app"] == "sha1"
        assert payload["spec"]["size"] == 4
        assert payload["distance"] == 5
        assert payload["braid"]["schedule_length"] > 0
        assert payload["derived"]["preferred_code"] in (
            "planar",
            "double-defect",
        )
        assert json.loads(out.read_text()) == payload

    def test_sweep_then_report_round_trip(self, tmp_path):
        results = tmp_path / "sweep.json"
        cache_dir = tmp_path / "cache"
        proc = _repro(
            "sweep",
            "--apps",
            "sq",
            "--size",
            "2",
            "--policies",
            "0,6",
            "--distance",
            "3",
            "--cache-dir",
            str(cache_dir),
            "--out",
            str(results),
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(results.read_text())
        assert len(payload["points"]) == 2
        assert payload["stats"]["misses"]["frontend"] == 1

        # Re-render Figure 6 from the saved results file...
        report = _repro("report", "fig6", "--results", str(results))
        assert report.returncode == 0, report.stderr
        assert "sq" in report.stdout and "Sched/CP" in report.stdout

        # ... and from the on-disk stage cache.
        from_cache = _repro("report", "fig6", "--cache-dir", str(cache_dir))
        assert from_cache.returncode == 0, from_cache.stderr
        assert "sq" in from_cache.stdout

        table2 = _repro("report", "table2", "--results", str(results))
        assert table2.returncode == 0, table2.stderr
        assert "Square Root" in table2.stdout

    def test_report_table1(self):
        proc = _repro("report", "table1")
        assert proc.returncode == 0, proc.stderr
        assert "Teleportation" in proc.stdout
        assert "Braiding" in proc.stdout

    def test_report_fig6_without_source_fails_cleanly(self):
        proc = _repro("report", "fig6")
        assert proc.returncode == 2
        assert "needs --results or --cache-dir" in proc.stderr


TINY_SWEEP = (
    "sweep",
    "--apps",
    "sq",
    "--size",
    "2",
    "--policies",
    "0,6",
    "--distance",
    "3",
)


class TestSweepFaultCli:
    """Exit codes and flag plumbing of the fault-tolerant sweep:
    0 = all ok, 3 = completed with isolated failures, 1 = aborted,
    2 = usage errors."""

    @pytest.fixture(autouse=True)
    def _no_leaked_fault_plan(self):
        from repro.runner import set_fault_plan

        set_fault_plan(None)
        yield
        set_fault_plan(None)

    def _plan_file(self, tmp_path, **action_kwargs):
        from repro.runner import FaultAction, FaultPlan

        path = tmp_path / "plan.json"
        path.write_text(
            FaultPlan([FaultAction(**action_kwargs)]).to_json(),
            encoding="utf-8",
        )
        return str(path)

    def test_isolated_failures_exit_3(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            [
                *TINY_SWEEP,
                "--out",
                str(out),
                "--max-failures",
                "-1",
                "--fault-plan",
                self._plan_file(
                    tmp_path,
                    op="raise",
                    stage="braid_sim",
                    match='"policy": 0',
                    once=False,
                ),
            ]
        )
        assert code == 3
        stderr = capsys.readouterr().err
        assert "FAILED sq[2] policy=0" in stderr
        assert "journal kept" in stderr
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == 2
        assert len(payload["points"]) == 1
        assert len(payload["failures"]) == 1
        assert payload["failures"][0]["stage"] == "braid_sim"
        # The journal survives for --resume.
        assert out.with_name("sweep.json.partial.jsonl").exists()

    def test_resume_after_failures_exits_0_and_drops_journal(
        self, tmp_path, capsys
    ):
        out = tmp_path / "sweep.json"
        code = main(
            [
                *TINY_SWEEP,
                "--out",
                str(out),
                "--max-failures",
                "-1",
                "--fault-plan",
                self._plan_file(
                    tmp_path,
                    op="raise",
                    stage="braid_sim",
                    match='"policy": 0',
                    once=False,
                ),
            ]
        )
        assert code == 3
        from repro.runner import set_fault_plan

        set_fault_plan(None)
        capsys.readouterr()
        code = main([*TINY_SWEEP, "--out", str(out), "--resume"])
        assert code == 0
        stderr = capsys.readouterr().err
        assert "swept 2 points" in stderr
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert len(payload["points"]) == 2
        assert payload["failures"] == []
        assert not out.with_name("sweep.json.partial.jsonl").exists()

    def test_abort_exits_1(self, tmp_path, capsys):
        code = main(
            [
                *TINY_SWEEP,
                "--fault-plan",
                self._plan_file(
                    tmp_path, op="raise", stage="braid_sim"
                ),
            ]
        )
        assert code == 1
        stderr = capsys.readouterr().err
        assert "sweep aborted" in stderr
        assert "FAILED sq[2]" in stderr

    def test_retry_flags_recover_exit_0(self, tmp_path, capsys):
        code = main(
            [
                *TINY_SWEEP,
                "--max-attempts",
                "2",
                "--fault-plan",
                self._plan_file(
                    tmp_path, op="raise", stage="braid_sim"
                ),
            ]
        )
        assert code == 0
        assert "swept 2 points" in capsys.readouterr().err

    def test_fail_fast_conflicts_with_budget(self, capsys):
        code = main(
            [*TINY_SWEEP, "--fail-fast", "--max-failures", "2"]
        )
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_resume_requires_out(self, capsys):
        code = main([*TINY_SWEEP, "--resume"])
        assert code == 2
        assert "--resume needs --out" in capsys.readouterr().err

    def test_unreadable_fault_plan_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "plan.json"
        bad.write_text("{not json", encoding="utf-8")
        code = main([*TINY_SWEEP, "--fault-plan", str(bad)])
        assert code == 2
        assert "unreadable fault plan" in capsys.readouterr().err

    def test_cache_stats_reports_quarantine(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code = main(
            [*TINY_SWEEP, "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        entry = sorted((cache_dir / "point").glob("*.json"))[0]
        entry.write_text("{corrupt", encoding="utf-8")
        capsys.readouterr()
        code = main(
            ["cache", "verify", "--cache-dir", str(cache_dir)]
        )
        assert code == 1
        verify_payload = json.loads(capsys.readouterr().out)
        assert verify_payload["quarantined_total"] == 1
        code = main(
            ["cache", "stats", "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        stats_payload = json.loads(capsys.readouterr().out)
        assert stats_payload["quarantined"] == 1
