"""Bench harness: stage timing capture, reference gate, baselines."""

import json

import pytest

from repro.network import braidsim_vec
from repro.runner import GridSpec, SweepRunner
from repro.runner.bench import (
    BENCH_GRIDS,
    BenchReport,
    bench_grid,
    compare_engines,
    compare_reports,
    run_bench,
)

TINY = GridSpec(
    apps=("sq",), sizes={"sq": 2}, policies=(0, 6), distance=3
)


class TestGridPresets:
    def test_presets_resolve(self):
        for name in BENCH_GRIDS:
            spec = bench_grid(name)
            assert spec.expand(), name

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown bench grid"):
            bench_grid("nope")

    def test_fig6_preset_is_the_paper_grid(self):
        assert len(bench_grid("fig6").expand()) == 28


class TestRunBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_bench(TINY, reference=True)

    def test_stage_seconds_recorded(self, report):
        assert report.grid == "custom"
        assert report.points == 2
        assert report.stage_seconds["braid_sim"] > 0
        assert report.stage_seconds["frontend"] > 0
        assert report.total_seconds >= report.stage_seconds["braid_sim"]

    def test_reference_pass_verified(self, report):
        assert report.equivalence_checked == 2
        assert report.reference_braid_seconds is not None
        assert report.braid_speedup is not None

    def test_without_reference(self):
        report = run_bench(TINY)
        assert report.reference_braid_seconds is None
        assert report.braid_speedup is None
        assert report.equivalence_checked == 0

    def test_round_trip(self, report, tmp_path):
        path = tmp_path / "bench.json"
        report.save(path)
        loaded = BenchReport.load(path)
        assert loaded == report
        assert json.loads(path.read_text())["format"] == 1

    def test_unknown_format_rejected(self, report, tmp_path):
        path = tmp_path / "bench.json"
        payload = report.to_jsonable()
        payload["format"] = 99
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValueError, match="format"):
            BenchReport.load(path)


class TestTimingAttribution:
    def test_braid_seconds_exclude_frontend(self):
        """Stage seconds are self time: the braid stage's closure pulls
        the frontend through the cache, but its compile time must be
        attributed to the frontend stage."""
        runner = SweepRunner()
        stats = runner.run(TINY).stats
        assert stats.stage_seconds("frontend") > 0
        assert stats.stage_seconds("braid_sim") > 0
        total_children = sum(
            stats.stage_seconds(s)
            for s in ("frontend", "layout", "braid_sim", "simd", "simd_epr",
                      "accounting")
        )
        # The 'point' stage self time is glue, not the whole pipeline.
        assert stats.stage_seconds("point") < total_children


def _report(**overrides) -> BenchReport:
    base = dict(
        grid="tiny",
        points=21,
        workers=1,
        stage_seconds={"braid_sim": 2.0},
        total_seconds=4.0,
        reference_braid_seconds=10.0,
        braid_speedup=5.0,
        equivalence_checked=21,
    )
    base.update(overrides)
    return BenchReport(**base)


class TestCompareReports:
    def test_no_regression(self):
        assert compare_reports(_report(), _report()) == []

    def test_speedup_regression_detected(self):
        current = _report(braid_speedup=3.0)
        failures = compare_reports(current, _report(), tolerance=0.25)
        assert failures and "speedup regressed" in failures[0]

    def test_within_tolerance_passes(self):
        current = _report(braid_speedup=4.0)
        assert compare_reports(current, _report(), tolerance=0.25) == []

    def test_absolute_mode(self):
        current = _report(stage_seconds={"braid_sim": 3.0})
        assert compare_reports(
            current, _report(), tolerance=0.25, absolute=True
        )
        assert (
            compare_reports(
                current, _report(), tolerance=0.6, absolute=True
            )
            == []
        )

    def test_grid_mismatch_fails(self):
        failures = compare_reports(_report(grid="fig6"), _report())
        assert failures and "grid mismatch" in failures[0]

    def test_missing_speedup_fails(self):
        failures = compare_reports(
            _report(braid_speedup=None), _report()
        )
        assert failures and "braid_speedup" in failures[0]


class TestAllStageGate:
    """Every baseline stage is gated, not just braid_sim."""

    def test_stage_ratio_normalizes_by_reference(self):
        report = _report(stage_seconds={"braid_sim": 2.0, "accounting": 1.0})
        assert report.stage_ratio("accounting") == pytest.approx(0.1)
        assert report.stage_ratio("absent") == pytest.approx(0.0)

    def test_stage_ratio_none_without_reference(self):
        report = _report(reference_braid_seconds=None, braid_speedup=None)
        assert report.stage_ratio("braid_sim") is None

    def test_stage_regression_detected(self):
        baseline = _report(
            stage_seconds={"braid_sim": 2.0, "accounting": 1.0}
        )
        current = _report(
            stage_seconds={"braid_sim": 2.0, "accounting": 3.0}
        )
        failures = compare_reports(current, baseline, tolerance=0.25)
        assert failures and "accounting regressed" in failures[0]

    def test_stage_within_tolerance_passes(self):
        baseline = _report(
            stage_seconds={"braid_sim": 2.0, "accounting": 1.0}
        )
        current = _report(
            stage_seconds={"braid_sim": 2.0, "accounting": 1.1}
        )
        assert compare_reports(current, baseline, tolerance=0.25) == []

    def test_millisecond_stage_protected_by_slack(self):
        # 10ms -> 150ms is a 15x blowup but only ~1.4% of the
        # reference yardstick: inside the additive slack, not flaky.
        baseline = _report(
            stage_seconds={"braid_sim": 2.0, "layout": 0.01}
        )
        current = _report(
            stage_seconds={"braid_sim": 2.0, "layout": 0.15}
        )
        assert compare_reports(current, baseline, tolerance=0.25) == []
        # A genuinely large blowup still fails.
        blown = _report(stage_seconds={"braid_sim": 2.0, "layout": 0.6})
        assert compare_reports(blown, baseline, tolerance=0.25)

    def test_new_stage_not_gated_until_baseline_rerecorded(self):
        baseline = _report(stage_seconds={"braid_sim": 2.0})
        current = _report(
            stage_seconds={"braid_sim": 2.0, "scaling": 99.0}
        )
        assert compare_reports(current, baseline) == []

    def test_stage_missing_from_current_fails(self):
        baseline = _report(
            stage_seconds={"braid_sim": 2.0, "frontend": 1.0}
        )
        current = _report(stage_seconds={"braid_sim": 2.0})
        failures = compare_reports(current, baseline)
        assert failures and "frontend missing" in failures[0]

    def test_absolute_mode_gates_every_stage(self):
        baseline = _report(
            stage_seconds={"braid_sim": 2.0, "accounting": 1.0}
        )
        current = _report(
            stage_seconds={"braid_sim": 2.0, "accounting": 2.0}
        )
        failures = compare_reports(
            current, baseline, tolerance=0.25, absolute=True
        )
        assert failures and "accounting regressed" in failures[0]

    def test_absolute_slack_protects_tiny_stages(self):
        baseline = _report(stage_seconds={"braid_sim": 2.0, "point": 0.01})
        current = _report(stage_seconds={"braid_sim": 2.0, "point": 0.1})
        assert (
            compare_reports(
                current, baseline, tolerance=0.25, absolute=True
            )
            == []
        )


class TestEngineAxis:
    """The engine axis: recorded in reports, raced by compare_engines."""

    def test_environment_records_run_config(self):
        report = run_bench(TINY)
        env = report.environment
        assert env["workers"] == report.workers == 1
        assert env["cpus"] >= 1
        # numpy is recorded as its version string, or None when the
        # vec extra is not installed — never missing.
        assert "numpy" in env
        if braidsim_vec.np is not None:
            assert env["numpy"] == braidsim_vec.np.__version__

    def test_default_engine_is_flat(self):
        assert run_bench(TINY).engine == "flat"

    def test_pre_engine_reports_load_as_flat(self, tmp_path):
        payload = _report().to_jsonable()
        del payload["engine"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert BenchReport.load(path).engine == "flat"

    @pytest.mark.skipif(
        braidsim_vec.np is None, reason="vec engine needs numpy"
    )
    def test_vec_engine_bench_verifies_against_reference(self, tmp_path):
        report = run_bench(TINY, reference=True, engine="vec")
        assert report.engine == "vec"
        assert report.equivalence_checked == 2
        path = tmp_path / "vec.json"
        report.save(path)
        assert BenchReport.load(path) == report

    def test_explicit_grid_engine_is_kept(self):
        grid = GridSpec(
            apps=("sq",), sizes={"sq": 2}, policies=(0,), distance=3,
            engine="flat",
        )
        # engine=None must not reset a grid's own engine choice.
        assert run_bench(grid).engine == "flat"


class TestCompareEngines:
    def test_not_slower_passes(self):
        vec = _report(braid_speedup=8.0, engine="vec")
        assert compare_engines(vec, _report()) == []

    def test_regression_below_floor_fails(self):
        vec = _report(braid_speedup=3.0, engine="vec")
        failures = compare_engines(vec, _report(), tolerance=0.25)
        assert failures and "regressed below" in failures[0]
        assert "'vec'" in failures[0] and "'flat'" in failures[0]

    def test_within_tolerance_passes(self):
        vec = _report(braid_speedup=4.0, engine="vec")
        assert compare_engines(vec, _report(), tolerance=0.25) == []

    def test_grid_mismatch_fails(self):
        failures = compare_engines(_report(grid="fig6"), _report())
        assert failures and "grid mismatch" in failures[0]

    def test_missing_reference_pass_fails(self):
        failures = compare_engines(
            _report(braid_speedup=None), _report()
        )
        assert failures and "reference passes" in failures[0]
        failures = compare_engines(
            _report(), _report(braid_speedup=None)
        )
        assert failures and "reference passes" in failures[0]


class TestPlanBuildSplit:
    """Plan builds are reported separately from pure simulation time."""

    def test_braid_plan_split_in_report(self):
        report = run_bench(TINY)
        assert report.stage_seconds.get("braid_plan", 0) > 0
        assert report.stage_seconds.get("braid_sim", 0) > 0
        assert report.braid_seconds == pytest.approx(
            report.stage_seconds["braid_sim"]
            + report.stage_seconds["braid_plan"]
        )

    def test_plan_time_counted_in_speedup_not_ratio_gate(self):
        baseline = _report(
            stage_seconds={"braid_sim": 1.5, "braid_plan": 0.5}
        )
        # A plan blowup alone cannot slip past the gate: it lowers the
        # measured speedup instead of hiding behind the ratio slack.
        current = _report(
            stage_seconds={"braid_sim": 1.5, "braid_plan": 3.0},
            braid_speedup=10.0 / 4.5,
        )
        failures = compare_reports(current, baseline, tolerance=0.25)
        assert failures and "speedup regressed" in failures[0]
        assert all("braid_plan" not in f for f in failures)
