"""Property tests for StageKey canonicalization (Hypothesis).

The sweep runner's dedup and the disk cache both hinge on one
invariant: logically equal stage parameters produce the same canonical
JSON, hence the same key and digest -- regardless of dict insertion
order, tuple-vs-list spelling, or set iteration order.
"""

import dataclasses
import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.keys import StageKey, canonical_json, canonicalize

# JSON-able scalar leaves; text is capped to keep shrinking fast.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def shuffled_dicts(value, rng):
    """Deep-copy with every dict's insertion order randomized."""
    if isinstance(value, dict):
        items = [(k, shuffled_dicts(v, rng)) for k, v in value.items()]
        rng.shuffle(items)
        return dict(items)
    if isinstance(value, list):
        return [shuffled_dicts(v, rng) for v in value]
    return value


def listify(value):
    """Replace every list with an equivalent tuple."""
    if isinstance(value, dict):
        return {k: listify(v) for k, v in value.items()}
    if isinstance(value, list):
        return tuple(listify(v) for v in value)
    return value


class TestCanonicalInvariance:
    @given(values, st.integers())
    @settings(max_examples=150)
    def test_dict_order_invariant(self, value, seed):
        rng = random.Random(seed)
        assert canonical_json(value) == canonical_json(
            shuffled_dicts(value, rng)
        )

    @given(values)
    @settings(max_examples=150)
    def test_tuple_list_aliasing(self, value):
        assert canonical_json(value) == canonical_json(listify(value))

    @given(values, st.integers())
    @settings(max_examples=100)
    def test_key_digest_invariant(self, value, seed):
        rng = random.Random(seed)
        a = StageKey.make("stage", param=value)
        b = StageKey.make("stage", param=listify(shuffled_dicts(value, rng)))
        assert a == b
        assert a.digest == b.digest

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8).filter(
                lambda s: s.isidentifier() and s != "stage"
            ),
            scalars,
            min_size=1,
            max_size=5,
        ),
        st.integers(),
    )
    @settings(max_examples=100)
    def test_kwarg_order_invariant(self, params, seed):
        items = list(params.items())
        random.Random(seed).shuffle(items)
        assert StageKey.make("s", **params) == StageKey.make(
            "s", **dict(items)
        )

    @given(st.sets(st.integers(min_value=-100, max_value=100), max_size=8))
    @settings(max_examples=60)
    def test_set_canonicalizes_sorted(self, value):
        assert canonicalize(value) == sorted(value)
        assert canonical_json(value) == canonical_json(frozenset(value))

    @given(values)
    @settings(max_examples=100)
    def test_canonical_json_round_trip_stable(self, value):
        """Decode/re-encode is a fixpoint (what cache verify relies on)."""
        text = canonical_json(value)
        assert canonical_json(json.loads(text)) == text

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=100)
    def test_float_exactness(self, value):
        decoded = json.loads(canonical_json(value))
        assert decoded == value


class TestDataclassParams:
    def test_dataclass_equals_field_dict(self):
        @dataclasses.dataclass(frozen=True)
        class Knobs:
            alpha: float
            names: tuple

        knobs = Knobs(alpha=0.5, names=("a", "b"))
        as_dict = {"alpha": 0.5, "names": ["a", "b"]}
        assert StageKey.make("s", k=knobs) == StageKey.make("s", k=as_dict)

    def test_uncanonicalizable_rejected(self):
        class Opaque:
            pass

        try:
            StageKey.make("s", k=Opaque())
        except TypeError:
            return
        raise AssertionError("expected TypeError for opaque parameter")
