"""Report rendering from cached grid points."""

import pytest

from repro.frontend.estimate import LogicalEstimate
from repro.network.braidsim import BraidSimResult
from repro.network.epr import EprPipelineResult
from repro.core.resources import SpaceTimeEstimate
from repro.runner.report import render_fig6, render_table2
from repro.runner.stages import PointResult, PointSpec


def _point(app="sq", size=2, policy=6, distance=3, ratio=1.5, ops=100):
    braid = BraidSimResult(
        schedule_length=int(ratio * 100),
        critical_path=100,
        mean_utilization=0.05,
        operations=ops,
        braids=ops,
        adaptive_routes=0,
        drops=0,
    )
    logical = LogicalEstimate(
        name=f"{app}[{size}]",
        num_qubits=10,
        total_operations=ops,
        t_count=10,
        two_qubit_count=20,
        measurement_count=1,
        critical_path=50,
        parallelism_factor=2.0,
        gate_histogram={"H": ops},
        target_pl=1e-6,
    )
    epr = EprPipelineResult(
        schedule_length=100.0,
        ideal_length=100,
        stall_cycles=0.0,
        peak_epr_pairs=2,
        total_pairs=10,
        mean_lifetime=3.0,
    )
    est = SpaceTimeEstimate(
        code_name="planar",
        computation_size=1e6,
        distance=distance,
        logical_qubits=10,
        physical_qubits=1e3,
        cycles=1e4,
        seconds=1e-2,
    )
    return PointResult(
        spec=PointSpec(app=app, size=size, policy=policy, distance=distance),
        distance=distance,
        logical=logical,
        braid=braid,
        epr=epr,
        planar=est,
        double_defect=est,
    )


class TestRenderFig6:
    def test_rows_labeled_by_app_and_size(self):
        out = render_fig6([_point(policy=0), _point(policy=6)])
        assert "sq[2]" in out

    def test_heterogeneous_sweeps_stay_separate(self):
        """Points from different sweeps (size/distance) must not
        silently overwrite one another's policies."""
        mixed = [
            _point(size=2, distance=3, policy=6, ratio=1.2),
            _point(size=3, distance=5, policy=6, ratio=1.8),
        ]
        out = render_fig6(mixed)
        assert "sq[2]" in out and "sq[3]" in out
        assert "1.20" in out and "1.80" in out

    def test_same_app_size_different_distance_disambiguated(self):
        mixed = [
            _point(size=2, distance=3, policy=6),
            _point(size=2, distance=5, policy=6),
        ]
        out = render_fig6(mixed)
        assert "d=3" in out and "d=5" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="Figure 6"):
            render_fig6([])


class TestRenderTable2:
    def test_largest_instance_wins(self):
        out = render_table2(
            [_point(size=2, ops=100), _point(size=3, ops=500)]
        )
        assert "Square Root" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="Table 2"):
            render_table2([])
