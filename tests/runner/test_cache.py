"""StageCache semantics: hit/miss accounting, disk persistence."""

import dataclasses
import json

from repro.runner.cache import CACHE_FORMAT_VERSION, CacheStats, StageCache
from repro.runner.keys import StageKey


@dataclasses.dataclass(frozen=True)
class Payload:
    value: int


KEY = StageKey.make("demo", x=1)


def _revive(payload):
    return Payload(**payload)


class TestMemoryLevel:
    def test_miss_then_hit(self):
        cache = StageCache()
        calls = []
        for _ in range(3):
            result = cache.get_or_compute(
                KEY, lambda: calls.append(1) or Payload(7)
            )
            assert result == Payload(7)
        assert len(calls) == 1
        assert cache.stats.misses["demo"] == 1
        assert cache.stats.hits["demo"] == 2
        assert cache.stats.computed("demo") == 1
        assert cache.stats.reused("demo") == 2

    def test_distinct_keys_compute_separately(self):
        cache = StageCache()
        a = cache.get_or_compute(StageKey.make("demo", x=1), lambda: 1)
        b = cache.get_or_compute(StageKey.make("demo", x=2), lambda: 2)
        assert (a, b) == (1, 2)
        assert cache.stats.misses["demo"] == 2

    def test_contains_and_len(self):
        cache = StageCache()
        assert KEY not in cache and len(cache) == 0
        cache.get_or_compute(KEY, lambda: 1)
        assert KEY in cache and len(cache) == 1


class TestDiskLevel:
    def test_round_trip_across_instances(self, tmp_path):
        first = StageCache(tmp_path)
        first.get_or_compute(
            KEY,
            lambda: Payload(7),
            to_jsonable=dataclasses.asdict,
            from_jsonable=_revive,
        )
        second = StageCache(tmp_path)
        revived = second.get_or_compute(
            KEY,
            lambda: (_ for _ in ()).throw(AssertionError("must not run")),
            to_jsonable=dataclasses.asdict,
            from_jsonable=_revive,
        )
        assert revived == Payload(7)
        assert second.stats.disk_hits["demo"] == 1
        assert second.stats.computed("demo") == 0

    def test_memory_cleared_falls_back_to_disk(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.get_or_compute(
            KEY,
            lambda: Payload(7),
            to_jsonable=dataclasses.asdict,
            from_jsonable=_revive,
        )
        cache.clear_memory()
        assert KEY not in cache
        revived = cache.get_or_compute(
            KEY, lambda: Payload(99), from_jsonable=_revive
        )
        assert revived == Payload(7)

    def test_no_reviver_means_recompute(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.get_or_compute(KEY, lambda: Payload(7), to_jsonable=dataclasses.asdict)
        cache.clear_memory()
        result = cache.get_or_compute(KEY, lambda: Payload(99))
        assert result == Payload(99)

    def test_corrupt_file_recomputes(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.get_or_compute(
            KEY, lambda: Payload(7), to_jsonable=dataclasses.asdict
        )
        path = tmp_path / "demo" / f"{KEY.digest}.json"
        path.write_text("{not json", encoding="utf-8")
        cache.clear_memory()
        result = cache.get_or_compute(
            KEY, lambda: Payload(99), from_jsonable=_revive
        )
        assert result == Payload(99)

    def test_stale_format_version_ignored(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.get_or_compute(
            KEY, lambda: Payload(7), to_jsonable=dataclasses.asdict
        )
        path = tmp_path / "demo" / f"{KEY.digest}.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["format"] == CACHE_FORMAT_VERSION
        record["format"] = -1
        path.write_text(json.dumps(record), encoding="utf-8")
        cache.clear_memory()
        result = cache.get_or_compute(
            KEY, lambda: Payload(99), from_jsonable=_revive
        )
        assert result == Payload(99)

    def test_iter_payloads(self, tmp_path):
        cache = StageCache(tmp_path)
        for x in (1, 2):
            cache.get_or_compute(
                StageKey.make("demo", x=x),
                lambda x=x: Payload(x),
                to_jsonable=dataclasses.asdict,
            )
        records = list(cache.iter_payloads("demo"))
        assert sorted(r["value"]["value"] for r in records) == [1, 2]
        assert all(r["key"]["stage"] == "demo" for r in records)
        assert list(cache.iter_payloads("other")) == []


class TestCacheStats:
    def test_merge_accumulates(self):
        a, b = CacheStats(), CacheStats()
        a.record_miss("s")
        b.record_miss("s")
        b.record_hit("s")
        b.record_disk_hit("t")
        a.merge(b)
        assert a.misses["s"] == 2
        assert a.hits["s"] == 1
        assert a.disk_hits["t"] == 1

    def test_dict_round_trip(self):
        stats = CacheStats()
        stats.record_miss("s")
        stats.record_hit("s")
        again = CacheStats.from_dict(stats.as_dict())
        assert again.as_dict() == stats.as_dict()

    def test_summary_mentions_stages(self):
        stats = CacheStats()
        stats.record_miss("frontend")
        stats.record_hit("frontend")
        assert "frontend: 1 computed, 1 reused" in stats.summary()
        assert CacheStats().summary() == "empty"
