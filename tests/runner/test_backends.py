"""Crash-safe cache backends: record checksums, gzip write policy,
single-flight locking (8-way multiprocessing stress + staleness
takeover), the degrading remote tier, and the seeded backend fault
modes (torn write, checksum flip, remote outage)."""

import gzip
import json
import multiprocessing
import os
import subprocess
import time
from pathlib import Path

import pytest

from repro.runner import (
    CircuitBreaker,
    CorruptEntry,
    FaultAction,
    FaultPlan,
    GridSpec,
    RemoteBackend,
    RemoteError,
    RemoteTimeout,
    RetryPolicy,
    StageCache,
    StageKey,
    SweepRunner,
    set_fault_plan,
)
from repro.runner.backends import (
    CACHE_FORMAT_VERSION,
    GzipBackend,
    LocalDirBackend,
    decode_record,
    default_backend,
    make_record,
    payload_checksum,
    stored_entry_sizes,
)
from repro.runner.cli import main as cli_main

KEY = StageKey.make("demo", x=1)

ONE_POINT = GridSpec(apps=("sq",), sizes={"sq": 2}, policies=(6,), distance=3)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def _identity_cache_args():
    return dict(to_jsonable=lambda v: v, from_jsonable=lambda p: p)


# ---------------------------------------------------------------------------
# Record format


class TestRecordFormat:
    def test_round_trip_with_checksum(self):
        record = make_record(KEY.describe(), {"v": [1, 2, 3]})
        assert record["format"] == CACHE_FORMAT_VERSION
        assert record["sha256"] == payload_checksum(record["value"])
        data = LocalDirBackend("unused").encode(record)
        assert decode_record(data) == record

    def test_normalizes_non_string_dict_keys(self):
        # int dict keys sort numerically before persistence but
        # lexicographically (as strings) after a JSON round trip; the
        # checksum must be computed over the normalized form.
        payload = {10: "a", 9: "b", 2: "c"}
        record = make_record(KEY.describe(), payload)
        rebuilt = json.loads(json.dumps(record))
        assert payload_checksum(rebuilt["value"]) == record["sha256"]

    def test_checksum_mismatch_raises_checksum_kind(self):
        record = make_record(KEY.describe(), {"v": 1})
        record["sha256"] = "0" * 64
        with pytest.raises(CorruptEntry) as excinfo:
            decode_record(json.dumps(record).encode())
        assert excinfo.value.kind == "checksum"
        assert "checksum" in excinfo.value.reason

    def test_missing_checksum_on_format_2_raises(self):
        record = make_record(KEY.describe(), {"v": 1})
        del record["sha256"]
        with pytest.raises(CorruptEntry) as excinfo:
            decode_record(json.dumps(record).encode())
        assert excinfo.value.kind == "checksum"

    def test_legacy_format_1_needs_no_checksum(self):
        legacy = {"format": 1, "key": KEY.describe(), "value": {"v": 7}}
        assert decode_record(json.dumps(legacy).encode()) == legacy

    def test_garbage_and_truncated_gzip_are_undecodable(self):
        with pytest.raises(CorruptEntry) as excinfo:
            decode_record(b"{not json")
        assert excinfo.value.kind == "undecodable"
        packed = gzip.compress(b'{"format": 1}', mtime=0)
        with pytest.raises(CorruptEntry):
            decode_record(packed[: len(packed) // 2])

    def test_non_object_record_rejected(self):
        with pytest.raises(CorruptEntry):
            decode_record(b"[1, 2, 3]")


# ---------------------------------------------------------------------------
# Gzip write policy


class TestGzipBackend:
    def test_small_records_stay_plain_json(self, tmp_path):
        backend = default_backend(tmp_path)
        backend.store("demo", KEY.digest, make_record(KEY.describe(), {"v": 1}))
        raw = backend.entry_path("demo", KEY.digest).read_bytes()
        assert raw[:1] == b"{"
        assert backend.plain_writes == 1

    def test_large_records_gzip_and_round_trip(self, tmp_path):
        backend = default_backend(tmp_path)
        payload = {"rows": [[i] * 40 for i in range(200)]}
        record = make_record(KEY.describe(), payload)
        backend.store("demo", KEY.digest, record)
        path = backend.entry_path("demo", KEY.digest)
        stored, raw, compressed = stored_entry_sizes(path)
        assert compressed and stored < raw
        assert backend.compressed_writes == 1
        assert backend.load("demo", KEY.digest) == record

    def test_legacy_uncompressed_entries_load_forever(self, tmp_path):
        backend = default_backend(tmp_path)
        legacy = {"format": 1, "key": KEY.describe(), "value": {"v": 3}}
        path = backend.entry_path("demo", KEY.digest)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(legacy), encoding="utf-8")
        assert backend.load("demo", KEY.digest) == legacy

    def test_encoding_is_deterministic(self, tmp_path):
        backend = default_backend(tmp_path)
        record = make_record(
            KEY.describe(), {"rows": [[i] * 40 for i in range(200)]}
        )
        assert backend.encode(record) == backend.encode(record)

    def test_health_reports_byte_counters(self, tmp_path):
        backend = default_backend(tmp_path)
        backend.store("demo", KEY.digest, make_record(KEY.describe(), {"v": 1}))
        report = backend.health()
        assert report["backend"] == "local"
        assert report["gzip"]["plain_writes"] == 1
        assert report["gzip"]["raw_bytes_written"] > 0


# ---------------------------------------------------------------------------
# Single-flight (in-process semantics)


class TestSingleFlightLocal:
    def test_leader_then_follower(self, tmp_path):
        backend = LocalDirBackend(tmp_path, lock_poll=0.01)
        lease = backend.wait_or_lead("demo", KEY.digest)
        assert lease is not None
        assert lease.lock_path.exists()
        backend.store("demo", KEY.digest, make_record(KEY.describe(), {"v": 1}))
        # Entry now exists: a second caller must not lead.
        assert backend.wait_or_lead("demo", KEY.digest) is None
        lease.release()
        assert not lease.lock_path.exists()
        lease.release()  # idempotent

    def test_dead_pid_lock_taken_over(self, tmp_path):
        backend = LocalDirBackend(tmp_path, lock_poll=0.01)
        # A real-but-dead pid: wait() reaps the child, so the pid is
        # free by the time we probe it.
        child = subprocess.Popen(["true"])
        child.wait()
        dead = child.pid
        lock = backend.lock_path("demo", KEY.digest)
        lock.parent.mkdir(parents=True)
        import platform

        lock.write_text(
            json.dumps(
                {"pid": dead, "host": platform.node(), "time": time.time()}
            ),
            encoding="utf-8",
        )
        lease = backend.wait_or_lead("demo", KEY.digest)
        assert lease is not None
        assert backend.lock_takeovers == 1
        lease.release()

    def test_old_lock_taken_over_by_age(self, tmp_path):
        backend = LocalDirBackend(
            tmp_path, lock_stale_after=0.01, lock_poll=0.01
        )
        lock = backend.lock_path("demo", KEY.digest)
        lock.parent.mkdir(parents=True)
        # A live-holder lock (our own pid) that is simply too old.
        import platform

        lock.write_text(
            json.dumps(
                {"pid": os.getpid(), "host": platform.node(), "time": 0}
            ),
            encoding="utf-8",
        )
        os.utime(lock, (1, 1))
        lease = backend.wait_or_lead("demo", KEY.digest)
        assert lease is not None
        assert backend.lock_takeovers == 1
        lease.release()

    def test_followers_load_instead_of_recomputing(self, tmp_path):
        computes = []

        def compute():
            computes.append(1)
            return {"v": 42}

        leader = StageCache(tmp_path)
        value = leader.get_or_compute(KEY, compute, **_identity_cache_args())
        assert value == {"v": 42}
        follower = StageCache(tmp_path)
        assert (
            follower.get_or_compute(KEY, compute, **_identity_cache_args())
            == value
        )
        assert computes == [1]
        assert not list((tmp_path / "demo").glob("*.lock"))


# ---------------------------------------------------------------------------
# Single-flight (multiprocessing stress)


def _hammer_worker(root, log_path, out_path, barrier, plan_json):
    """Worker for the 8-way stress: all processes miss the same key."""
    from repro.runner.cache import StageCache
    from repro.runner.faults import FaultPlan, set_fault_plan

    if plan_json is not None:
        set_fault_plan(FaultPlan.from_json(plan_json))
    cache = StageCache(root)
    inner = cache.backend.inner
    inner.lock_poll = 0.01
    inner.lock_stale_after = 2.0  # bound zombie-pid takeover time
    key = StageKey.make("demo", x=1)

    def compute():
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        time.sleep(0.05)  # widen the stampede window
        return {"rows": [[i] * 8 for i in range(64)], "pid_free": True}

    barrier.wait()
    value = cache.get_or_compute(
        key, compute, to_jsonable=lambda v: v, from_jsonable=lambda p: p
    )
    Path(out_path).write_text(
        json.dumps(value, sort_keys=True), encoding="utf-8"
    )


def _run_workers(tmp_path, count, plan_json=None):
    log_path = tmp_path / "computes.log"
    log_path.touch()
    cache_root = tmp_path / "cache"
    barrier = multiprocessing.Barrier(count)
    workers = [
        multiprocessing.Process(
            target=_hammer_worker,
            args=(
                str(cache_root),
                str(log_path),
                str(tmp_path / f"out-{idx}.json"),
                barrier,
                plan_json,
            ),
        )
        for idx in range(count)
    ]
    for worker in workers:
        worker.start()
    deadline = time.time() + 60
    pending = list(workers)
    while pending and time.time() < deadline:
        # Join with a short timeout so exited children are reaped
        # promptly -- a zombie pid would look alive to the
        # staleness probe.
        for worker in list(pending):
            worker.join(timeout=0.05)
            if worker.exitcode is not None:
                pending.remove(worker)
    for worker in pending:
        worker.terminate()
        worker.join()
    assert not pending, "stress workers wedged"
    return workers, log_path, cache_root


@pytest.mark.slow
class TestSingleFlightStress:
    def test_eight_workers_one_compute(self, tmp_path):
        workers, log_path, cache_root = _run_workers(tmp_path, 8)
        assert [w.exitcode for w in workers] == [0] * 8
        computes = log_path.read_text(encoding="utf-8").splitlines()
        assert len(computes) == 1, computes
        outputs = {
            (tmp_path / f"out-{idx}.json").read_text(encoding="utf-8")
            for idx in range(8)
        }
        assert len(outputs) == 1, "loads diverged from the compute"
        audit = StageCache(cache_root).verify()
        assert audit["ok"] == audit["checked"] == 1
        assert audit["quarantined_total"] == 0
        assert not list((cache_root / "demo").glob("*.lock"))

    def test_lock_holder_kill_is_taken_over(self, tmp_path):
        # The seeded kill fires at the compute site -- i.e. in
        # whichever worker won the lock -- so the flight's leader dies
        # holding the lock and a follower must take over.
        plan = FaultPlan(
            [FaultAction(op="kill", stage="demo")],
            seed=7,
            state_dir=str(tmp_path / "state"),
            # This (parent) process installs the plan; without the pid
            # the first worker would claim installership and refuse to
            # hard-exit itself.
            installer_pid=os.getpid(),
        )
        workers, log_path, cache_root = _run_workers(
            tmp_path, 4, plan_json=plan.to_json()
        )
        exits = sorted(w.exitcode for w in workers)
        assert exits == [0, 0, 0, 73], exits
        computes = log_path.read_text(encoding="utf-8").splitlines()
        assert len(computes) == 1, computes
        outputs = {
            path.read_text(encoding="utf-8")
            for path in tmp_path.glob("out-*.json")
        }
        assert len(outputs) == 1
        audit = StageCache(cache_root).verify()
        assert audit["ok"] == audit["checked"] == 1
        assert audit["quarantined_total"] == 0
        assert not list((cache_root / "demo").glob("*.lock"))


# ---------------------------------------------------------------------------
# Quarantine hardening


class TestQuarantineFallback:
    def _corrupt_entry(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store_payload(KEY, {"v": 1})
        path = cache._path(KEY)
        path.write_text("{corrupt", encoding="utf-8")
        return cache, path

    def test_failed_move_falls_back_to_copy(self, tmp_path, monkeypatch):
        cache, path = self._corrupt_entry(tmp_path)
        import repro.runner.cache as cache_module

        real_replace = os.replace

        def exdev(src, dst):
            if "quarantine" in str(dst):
                raise OSError(18, "Invalid cross-device link")
            return real_replace(src, dst)

        monkeypatch.setattr(cache_module.os, "replace", exdev)
        target = cache.quarantine(path, "failed verify: test")
        assert target is not None and target.exists()
        assert not path.exists(), "corrupt entry left in place"
        sidecar = target.with_suffix(".reason.txt")
        assert "failed verify" in sidecar.read_text(encoding="utf-8")
        assert cache.quarantined_count() == 1

    def test_failed_move_and_copy_still_unlinks(self, tmp_path, monkeypatch):
        cache, path = self._corrupt_entry(tmp_path)
        import repro.runner.cache as cache_module

        real_replace = os.replace

        def exdev(src, dst):
            if "quarantine" in str(dst):
                raise OSError(18, "Invalid cross-device link")
            return real_replace(src, dst)

        monkeypatch.setattr(cache_module.os, "replace", exdev)
        monkeypatch.setattr(
            Path,
            "write_bytes",
            lambda self, data: (_ for _ in ()).throw(OSError("denied")),
        )
        assert cache.quarantine(path, "broken disk") is None
        assert not path.exists(), "corrupt entry left in place"
        # The reason sidecar still lands (written via write_text).
        assert cache.quarantined_count() == 1

    def test_checksum_flip_quarantined_with_checksum_reason(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store_payload(KEY, {"v": 1})
        path = cache._path(KEY)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["sha256"] = "f" * 64
        path.write_text(json.dumps(record), encoding="utf-8")
        assert cache.load_payload(KEY) is None
        sidecar = (
            cache.disk_dir
            / "quarantine"
            / "demo"
            / f"{KEY.digest}.reason.txt"
        )
        assert "checksum" in sidecar.read_text(encoding="utf-8")


# ---------------------------------------------------------------------------
# Store-site fault modes (torn write, checksum flip)


class TestStoreFaults:
    def _stored_under_fault(self, tmp_path, op):
        set_fault_plan(FaultPlan([FaultAction(op=op, stage="demo")]))
        cache = StageCache(tmp_path)
        computes = []
        cache.get_or_compute(
            KEY,
            lambda: computes.append(1) or {"v": 5},
            **_identity_cache_args(),
        )
        set_fault_plan(None)
        return cache, computes

    @pytest.mark.parametrize("op", ["torn", "flip"])
    def test_damaged_entry_recomputed_and_quarantined(self, tmp_path, op):
        cache, computes = self._stored_under_fault(tmp_path, op)
        fresh = StageCache(tmp_path)
        value = fresh.get_or_compute(
            KEY,
            lambda: computes.append(1) or {"v": 5},
            **_identity_cache_args(),
        )
        assert value == {"v": 5}
        assert len(computes) == 2, "damaged entry served instead of recomputed"
        assert fresh.quarantined_count() == 1

    def test_flip_is_reported_as_checksum_by_verify(self, tmp_path):
        cache, _ = self._stored_under_fault(tmp_path, "flip")
        audit = StageCache(tmp_path).verify()
        assert len(audit["checksum"]) == 1
        assert audit["corrupt"] == []
        assert audit["quarantined_total"] == 1

    def test_torn_is_undecodable(self, tmp_path):
        cache, _ = self._stored_under_fault(tmp_path, "torn")
        audit = StageCache(tmp_path).verify()
        assert len(audit["corrupt"]) == 1
        assert audit["checksum"] == []


# ---------------------------------------------------------------------------
# Remote tier


class TestRemoteBackend:
    def test_file_endpoint_push_then_fetch(self, tmp_path):
        store = tmp_path / "store"
        remote = RemoteBackend(f"file://{store}")
        record = make_record(KEY.describe(), {"v": 9})
        data = json.dumps(record).encode()
        remote.push("demo", KEY.digest, data)
        assert remote.fetch("demo", KEY.digest) == data
        assert remote.fetch("demo", "0" * 24) is None  # miss, not error
        assert remote.health()["protocol"] == "file"

    def test_write_through_and_read_through(self, tmp_path):
        store = tmp_path / "store"
        writer = StageCache(tmp_path / "a", remote=str(store))
        writer.get_or_compute(KEY, lambda: {"v": 3}, **_identity_cache_args())
        assert writer.stats.remote["pushes"] == 1
        assert (store / "demo" / f"{KEY.digest}.json").exists()

        reader = StageCache(tmp_path / "b", remote=str(store))
        value = reader.get_or_compute(
            KEY, lambda: 1 / 0, **_identity_cache_args()
        )
        assert value == {"v": 3}
        assert reader.stats.remote["hits"] == 1
        # The fetch populated the local tier: next load skips the net.
        assert (tmp_path / "b" / "demo" / f"{KEY.digest}.json").exists()

    def test_pushed_bytes_are_the_stored_bytes(self, tmp_path):
        store = tmp_path / "store"
        cache = StageCache(tmp_path / "a", remote=str(store))
        payload = {"rows": [[i] * 40 for i in range(200)]}  # gzips
        cache.get_or_compute(KEY, lambda: payload, **_identity_cache_args())
        local = (tmp_path / "a" / "demo" / f"{KEY.digest}.json").read_bytes()
        pushed = (store / "demo" / f"{KEY.digest}.json").read_bytes()
        assert pushed == local
        assert pushed[:2] == b"\x1f\x8b"

    def test_outage_opens_breaker_and_degrades(self, tmp_path):
        set_fault_plan(FaultPlan([FaultAction(op="remote_error", once=False)]))
        remote = RemoteBackend(
            str(tmp_path / "store"),
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            breaker=CircuitBreaker(threshold=2),
        )
        cache = StageCache(tmp_path / "local", remote=remote)
        for x in range(3):
            key = StageKey.make("demo", x=x)
            value = cache.get_or_compute(
                key, lambda: {"x": x}, **_identity_cache_args()
            )
            assert value == {"x": x}, "outage must never fail the caller"
        assert remote.degraded
        assert cache.stats.remote["degraded"] == 1
        assert remote.retries > 0
        health = cache.backend_health()["remote"]
        assert health["breaker"]["state"] == "open"
        # Breaker open: later calls skip the network entirely.
        fetches_before = remote.fetches
        cache.load_payload(StageKey.make("demo", x=99))
        assert remote.fetches == fetches_before

    def test_injected_timeout_and_hang(self, tmp_path):
        store = tmp_path / "store"
        record_bytes = json.dumps(
            make_record(KEY.describe(), {"v": 1})
        ).encode()
        (store / "demo").mkdir(parents=True)
        (store / "demo" / f"{KEY.digest}.json").write_bytes(record_bytes)

        set_fault_plan(FaultPlan([FaultAction(op="remote_timeout")]))
        remote = RemoteBackend(
            str(store), retry=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(RemoteTimeout):
            remote.fetch("demo", KEY.digest)
        set_fault_plan(None)

        # A hang longer than the per-call budget becomes a timeout.
        set_fault_plan(
            FaultPlan([FaultAction(op="remote_hang", seconds=0.1)])
        )
        hung = RemoteBackend(
            str(store), retry=RetryPolicy(max_attempts=1), timeout_s=0.05
        )
        with pytest.raises(RemoteTimeout):
            hung.fetch("demo", KEY.digest)

    def test_http_5xx_is_a_remote_error(self):
        remote = RemoteBackend(
            "http://127.0.0.1:9",  # discard port: connection refused
            retry=RetryPolicy(max_attempts=1),
            timeout_s=0.5,
        )
        assert remote.is_http
        with pytest.raises(RemoteError):
            remote.fetch("demo", KEY.digest)
        assert remote.breaker.consecutive_failures == 1

    def test_sweep_survives_remote_outage_bit_identically(self, tmp_path):
        clean = SweepRunner(cache_dir=tmp_path / "clean").run(ONE_POINT)
        assert clean.ok

        set_fault_plan(
            FaultPlan([FaultAction(op="remote_error", once=False)])
        )
        runner = SweepRunner(
            cache=StageCache(
                tmp_path / "local",
                remote=RemoteBackend(
                    str(tmp_path / "store"),
                    retry=RetryPolicy(max_attempts=1),
                    breaker=CircuitBreaker(threshold=1),
                ),
            )
        )
        result = runner.run(ONE_POINT)
        assert result.ok
        assert result.cache_degraded
        assert result.stats.remote["degraded"] == 1
        assert [p.to_jsonable() for p in result.points] == [
            p.to_jsonable() for p in clean.points
        ]


# ---------------------------------------------------------------------------
# Stats plumbing


class TestStatsPlumbing:
    def test_waits_and_remote_round_trip_and_merge(self):
        from repro.runner import CacheStats

        stats = CacheStats()
        stats.record_wait("demo")
        stats.record_remote("hits", 2)
        stats.mark_remote_degraded()
        again = CacheStats.from_dict(stats.as_dict())
        assert again.as_dict() == stats.as_dict()

        other = CacheStats()
        other.record_remote("hits")
        other.mark_remote_degraded()
        stats.merge(other)
        assert stats.remote["hits"] == 3
        assert stats.remote["degraded"] == 1  # max, not sum
        assert "degraded to local-only" in stats.summary()

    def test_disk_stats_reports_raw_and_compressed(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store_payload(KEY, {"rows": [[i] * 40 for i in range(200)]})
        cache.store_payload(StageKey.make("demo", x=2), {"v": 1})
        stats = cache.disk_stats()
        demo = stats["stages"]["demo"]
        assert demo["entries"] == 2
        assert demo["compressed_entries"] == 1
        assert demo["raw_bytes"] > demo["bytes"]
        assert stats["total_raw_bytes"] > stats["total_bytes"]
        assert stats["backend"]["local"]["gzip"]["compressed_writes"] == 1
        assert stats["backend"]["remote"] is None


# ---------------------------------------------------------------------------
# Migration


class TestMigrate:
    def _legacy_entry(self, cache, key, payload):
        record = {"format": 1, "key": key.describe(), "value": payload}
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(record, indent=1) + "\n", encoding="utf-8")
        return path

    def test_legacy_entries_rewritten_in_place(self, tmp_path):
        cache = StageCache(tmp_path)
        big_key = StageKey.make("demo", x=2)
        self._legacy_entry(cache, KEY, {"v": 1})
        self._legacy_entry(
            cache, big_key, {"rows": [[i] * 40 for i in range(200)]}
        )
        before = StageCache(tmp_path).verify()
        assert before["legacy"] == 2

        report = cache.migrate()
        assert report["migrated"] == 2
        assert report["failed"] == []

        after = StageCache(tmp_path).verify()
        assert after["legacy"] == 0
        assert after["ok"] == after["checked"] == 2
        # The large record picked up the current gzip write policy.
        _, _, compressed = stored_entry_sizes(cache._path(big_key))
        assert compressed
        assert cache.load_payload(big_key) == {
            "rows": [[i] * 40 for i in range(200)]
        }

    def test_migrate_is_idempotent(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store_payload(KEY, {"v": 1})
        first = cache.migrate()
        assert first == {
            "migrated": 0, "unchanged": 1, "stale": 0, "failed": [],
        }

    def test_migrate_quarantines_undecodable(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store_payload(KEY, {"v": 1})
        cache._path(KEY).write_text("{corrupt", encoding="utf-8")
        report = cache.migrate()
        assert len(report["failed"]) == 1
        assert cache.quarantined_count() == 1


# ---------------------------------------------------------------------------
# CLI surface


class TestBackendCli:
    def _seed(self, tmp_path):
        cache = StageCache(tmp_path)
        cache.store_payload(KEY, {"rows": [[i] * 40 for i in range(200)]})
        return cache

    def test_stats_surfaces_bytes_and_health(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert cli_main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_compressed_entries"] == 1
        assert payload["total_raw_bytes"] > payload["total_bytes"]
        assert payload["backend"]["local"]["backend"] == "local"

    def test_stats_includes_remote_health(self, tmp_path, capsys):
        self._seed(tmp_path)
        code = cli_main(
            [
                "cache",
                "stats",
                "--cache-dir",
                str(tmp_path),
                "--remote-cache",
                str(tmp_path / "store"),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"]["remote"]["breaker"]["state"] == "closed"

    def test_migrate_cli(self, tmp_path, capsys):
        cache = StageCache(tmp_path)
        legacy = {"format": 1, "key": KEY.describe(), "value": {"v": 1}}
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(legacy), encoding="utf-8")
        code = cli_main(
            ["cache", "migrate", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["migrated"] == 1
        assert cli_main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0

    def test_verify_fails_on_checksum_damage(self, tmp_path, capsys):
        cache = StageCache(tmp_path)
        cache.store_payload(KEY, {"v": 1})
        path = cache._path(KEY)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["sha256"] = "e" * 64
        path.write_text(json.dumps(record), encoding="utf-8")
        code = cli_main(["cache", "verify", "--cache-dir", str(tmp_path)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["checksum"]) == 1

    def test_stage_flag_rejected_outside_prune_and_migrate(
        self, tmp_path, capsys
    ):
        code = cli_main(
            [
                "cache",
                "verify",
                "--cache-dir",
                str(tmp_path),
                "--stage",
                "demo",
            ]
        )
        assert code == 2
