"""StageKey identity: canonicalization, stability across processes."""

import subprocess
import sys

import pytest

from repro.runner.keys import StageKey, canonical_json, canonicalize
from repro.tech import INTERMEDIATE


class TestCanonicalize:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert canonicalize(value) == value

    def test_mappings_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_sequences_become_lists(self):
        assert canonicalize((1, 2)) == [1, 2]
        assert canonicalize([1, (2, 3)]) == [1, [2, 3]]

    def test_sets_sorted(self):
        assert canonicalize({3, 1, 2}) == [1, 2, 3]

    def test_dataclasses_become_field_dicts(self):
        payload = canonicalize(INTERMEDIATE)
        assert payload["physical_error_rate"] == 1e-5
        assert payload["name"] == "superconducting-mid"

    def test_unknown_types_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonicalize(object())


class TestStageKey:
    def test_param_order_insensitive(self):
        a = StageKey.make("frontend", app="sq", size=3)
        b = StageKey.make("frontend", size=3, app="sq")
        assert a == b
        assert a.digest == b.digest

    def test_different_params_differ(self):
        a = StageKey.make("frontend", app="sq", size=3)
        b = StageKey.make("frontend", app="sq", size=4)
        assert a != b
        assert a.digest != b.digest

    def test_stage_name_in_digest(self):
        a = StageKey.make("frontend", app="sq")
        b = StageKey.make("layout", app="sq")
        assert a.digest != b.digest

    def test_usable_as_dict_key(self):
        table = {StageKey.make("frontend", app="sq", size=3): 1}
        assert table[StageKey.make("frontend", size=3, app="sq")] == 1

    def test_describe_round_trips_params(self):
        key = StageKey.make("braid_sim", app="sq", policy=6, tech=INTERMEDIATE)
        described = key.describe()
        assert described["stage"] == "braid_sim"
        assert described["params"]["policy"] == 6
        assert described["params"]["tech"]["physical_error_rate"] == 1e-5

    def test_digest_stable_across_processes(self):
        """Hash randomization must not leak into digests (the on-disk
        cache is shared by pool workers and later sessions)."""
        key = StageKey.make(
            "braid_sim", app="sq", size=3, policy=6, tech=INTERMEDIATE
        )
        script = (
            "from repro.runner.keys import StageKey\n"
            "from repro.tech import INTERMEDIATE\n"
            "key = StageKey.make('braid_sim', app='sq', size=3, policy=6,"
            " tech=INTERMEDIATE)\n"
            "print(key.digest)"
        )
        digests = set()
        for seed in ("0", "42"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=_env_with_seed(seed),
            )
            digests.add(out.stdout.strip())
        digests.add(key.digest)
        assert digests == {key.digest}


def _env_with_seed(seed: str) -> dict:
    import os

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env
