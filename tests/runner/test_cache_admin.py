"""Disk-cache administration: stats, prune, verify (+ CLI plumbing)."""

import json
import os
import time

from repro.runner import PointSpec, StageCache, SweepRunner
from repro.runner.cli import main as cli_main

TINY = [PointSpec(app="sq", size=2, policy=6, distance=3)]


def _filled_cache(tmp_path) -> StageCache:
    cache = StageCache(tmp_path)
    SweepRunner(cache=cache).run(TINY)
    return cache


class TestDiskStats:
    def test_counts_and_bytes(self, tmp_path):
        cache = _filled_cache(tmp_path)
        stats = cache.disk_stats()
        assert stats["dir"] == str(tmp_path)
        assert stats["total_entries"] > 0
        assert stats["total_bytes"] > 0
        assert "point" in stats["stages"]
        point = stats["stages"]["point"]
        assert point["entries"] == 1
        assert point["oldest_mtime"] <= point["newest_mtime"]

    def test_memory_only_cache_is_empty(self):
        stats = StageCache().disk_stats()
        assert stats["dir"] is None
        assert stats["total_entries"] == 0


class TestPrune:
    def test_prune_all(self, tmp_path):
        cache = _filled_cache(tmp_path)
        before = cache.disk_stats()["total_entries"]
        assert cache.prune() == before
        assert cache.disk_stats()["total_entries"] == 0

    def test_prune_by_stage(self, tmp_path):
        cache = _filled_cache(tmp_path)
        removed = cache.prune(stage="point")
        assert removed == 1
        assert "point" not in cache.disk_stats()["stages"]
        assert cache.disk_stats()["total_entries"] > 0

    def test_prune_by_age(self, tmp_path):
        cache = _filled_cache(tmp_path)
        total = cache.disk_stats()["total_entries"]
        # Everything is brand new: a one-hour threshold removes nothing.
        assert cache.prune(older_than_seconds=3600) == 0
        # Pretend a day passed.
        assert (
            cache.prune(
                older_than_seconds=3600, now=time.time() + 86400
            )
            == total
        )


class TestVerify:
    def test_clean_cache_verifies(self, tmp_path):
        cache = _filled_cache(tmp_path)
        result = cache.verify()
        assert result["checked"] == result["ok"] > 0
        assert not result["corrupt"]
        assert not result["mismatched"]

    def test_detects_corruption_and_renames(self, tmp_path):
        cache = _filled_cache(tmp_path)
        stage_dir = cache.disk_dir / "point"
        victim = next(iter(stage_dir.glob("*.json")))
        # A renamed entry no longer matches its content digest.
        renamed = stage_dir / ("0" * len(victim.stem) + ".json")
        os.rename(victim, renamed)
        # A truncated entry no longer parses.
        braid_dir = cache.disk_dir / "braid_sim"
        broken = next(iter(braid_dir.glob("*.json")))
        broken.write_text("{not json", encoding="utf-8")
        result = cache.verify()
        assert str(renamed) in result["mismatched"]
        assert str(broken) in result["corrupt"]

    def test_detects_stale_format(self, tmp_path):
        cache = _filled_cache(tmp_path)
        stage_dir = cache.disk_dir / "point"
        victim = next(iter(stage_dir.glob("*.json")))
        record = json.loads(victim.read_text(encoding="utf-8"))
        record["format"] = -1
        victim.write_text(json.dumps(record), encoding="utf-8")
        result = cache.verify()
        assert str(victim) in result["stale_format"]


class TestCacheCli:
    def test_stats_and_verify(self, tmp_path, capsys):
        _filled_cache(tmp_path)
        assert cli_main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_entries"] > 0
        assert (
            cli_main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        )

    def test_verify_fails_on_corruption(self, tmp_path, capsys):
        cache = _filled_cache(tmp_path)
        broken = next(iter((cache.disk_dir / "point").glob("*.json")))
        broken.write_text("nope", encoding="utf-8")
        assert (
            cli_main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
        )

    def test_prune_cli(self, tmp_path, capsys):
        cache = _filled_cache(tmp_path)
        assert (
            cli_main(
                [
                    "cache",
                    "prune",
                    "--cache-dir",
                    str(tmp_path),
                    "--stage",
                    "point",
                ]
            )
            == 0
        )
        assert "point" not in cache.disk_stats()["stages"]
