"""Fault-tolerant sweep execution: isolation, retry/timeout/backoff,
checkpoint-resume, quarantine, engine degradation, and the seeded
fault-injection harness driving all of it deterministically."""

import dataclasses

import pytest

from repro.runner import (
    FaultAction,
    FaultPlan,
    GridSpec,
    PointFailure,
    PointSpec,
    RetryPolicy,
    StageCache,
    SweepAborted,
    SweepResult,
    SweepRunner,
    execute_point,
    run_point,
    set_fault_plan,
)
from repro.runner.faults import call_with_deadline
from repro.runner.sweep import journal_path, load_journal

# Tiny instances keep every simulation in the milliseconds range.
TINY = GridSpec(
    apps=("sq", "gse"),
    sizes={"sq": 2, "gse": 3},
    policies=(0, 6),
    distance=3,
)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def _jsonable(points):
    return [p.to_jsonable() for p in points]


class TestRetryPolicy:
    def test_first_attempt_never_waits(self):
        policy = RetryPolicy(max_attempts=3, base_delay=1.0)
        assert policy.delay(1, "token") == 0.0

    def test_backoff_grows_and_replays_deterministically(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, jitter_seed=7
        )
        delays = [policy.delay(n, "tok") for n in (2, 3, 4)]
        again = [policy.delay(n, "tok") for n in (2, 3, 4)]
        assert delays == again
        assert delays[0] < delays[1] < delays[2]
        # Jitter stays within one base-delay fraction of the raw curve.
        assert 0.1 <= delays[0] <= 0.2

    def test_jitter_depends_on_seed_and_token(self):
        a = RetryPolicy(max_attempts=2, base_delay=0.1, jitter_seed=1)
        b = RetryPolicy(max_attempts=2, base_delay=0.1, jitter_seed=2)
        assert a.delay(2, "tok") != b.delay(2, "tok")
        assert a.delay(2, "tok") != a.delay(2, "other")

    def test_max_delay_caps(self):
        policy = RetryPolicy(
            max_attempts=9, base_delay=10.0, max_delay=0.5
        )
        assert policy.delay(9, "t") == 0.5

    def test_round_trip(self):
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.2, timeout_s=4.5
        )
        assert RetryPolicy.from_jsonable(policy.to_jsonable()) == policy

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestPointFailure:
    def test_round_trip(self):
        failure = PointFailure(
            spec=PointSpec(app="sq", size=2, policy=6, distance=3),
            stage="braid_sim",
            error="InjectedFault('boom')",
            error_type="InjectedFault",
            attempts=2,
            elapsed_seconds=0.25,
        )
        revived = PointFailure.from_jsonable(failure.to_jsonable())
        assert revived == failure


class TestSweepResultSchema:
    def test_schema_field_written(self):
        result = SweepRunner().run(TINY)
        payload = result.to_jsonable()
        assert payload["schema"] == 2
        assert payload["failures"] == []
        assert result.ok

    def test_v1_payload_compat(self):
        """Reports saved before fault tolerance load with no failures."""
        result = SweepRunner().run(TINY)
        payload = result.to_jsonable()
        del payload["schema"]
        del payload["failures"]
        for point in payload["points"]:
            del point["degraded_from"]
        loaded = SweepResult.from_jsonable(payload)
        assert loaded.ok
        assert _jsonable(loaded.points) == _jsonable(result.points)

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            SweepResult.from_jsonable({"schema": 99, "points": []})

    def test_save_load_round_trips_failures(self, tmp_path):
        result = SweepRunner().run(TINY)
        result.failures.append(
            PointFailure(
                spec=PointSpec(app="sq", size=2, policy=1, distance=3),
                stage="timeout",
                error="PointTimeout('slow')",
                error_type="PointTimeout",
                attempts=3,
                elapsed_seconds=1.5,
            )
        )
        path = tmp_path / "sweep.json"
        result.save(path)
        loaded = SweepResult.load(path)
        assert not loaded.ok
        assert loaded.failures == result.failures
        assert _jsonable(loaded.points) == _jsonable(result.points)


class TestIsolation:
    def test_injected_failure_is_isolated(self):
        set_fault_plan(
            FaultPlan([FaultAction(op="raise", stage="braid_sim")])
        )
        result = SweepRunner(max_failures=None).run(TINY)
        assert len(result.failures) == 1
        assert len(result.points) == 3
        failure = result.failures[0]
        assert failure.stage == "braid_sim"
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 1

    def test_default_fail_fast_aborts(self):
        set_fault_plan(
            FaultPlan([FaultAction(op="raise", stage="braid_sim")])
        )
        with pytest.raises(SweepAborted) as excinfo:
            SweepRunner().run(TINY)
        assert len(excinfo.value.failures) == 1

    def test_max_failures_budget(self):
        # Policy-0 braid simulations always fail: 2 failures in TINY.
        set_fault_plan(
            FaultPlan(
                [
                    FaultAction(
                        op="raise",
                        stage="braid_sim",
                        match='"policy": 0',
                        once=False,
                    )
                ]
            )
        )
        with pytest.raises(SweepAborted):
            SweepRunner(max_failures=1).run(TINY)
        set_fault_plan(
            FaultPlan(
                [
                    FaultAction(
                        op="raise",
                        stage="braid_sim",
                        match='"policy": 0',
                        once=False,
                    )
                ]
            )
        )
        tolerant = SweepRunner(max_failures=2).run(TINY)
        assert len(tolerant.failures) == 2
        assert {f.spec.policy for f in tolerant.failures} == {0}
        assert {p.spec.policy for p in tolerant.points} == {6}

    def test_surviving_points_bit_identical_to_clean_run(self):
        clean = SweepRunner().run(TINY)
        set_fault_plan(
            FaultPlan(
                [
                    FaultAction(
                        op="raise",
                        stage="braid_sim",
                        match='"policy": 0',
                        once=False,
                    )
                ]
            )
        )
        faulty = SweepRunner(max_failures=None).run(TINY)
        survivors = {
            p.spec.key().digest: p.to_jsonable() for p in faulty.points
        }
        expected = {
            p.spec.key().digest: p.to_jsonable()
            for p in clean.points
            if p.spec.policy == 6
        }
        assert survivors == expected


class TestRetry:
    def test_transient_raise_recovered_on_retry(self):
        set_fault_plan(
            FaultPlan([FaultAction(op="raise", stage="braid_sim")])
        )
        result = SweepRunner(
            retry=RetryPolicy(max_attempts=2)
        ).run(TINY)
        assert result.ok
        assert len(result.points) == 4
        # The failed attempt recomputed the braid stage once more.
        assert result.stats.computed("braid_sim") == 5

    def test_backoff_sleeps_between_attempts(self):
        naps = []
        set_fault_plan(
            FaultPlan([FaultAction(op="raise", stage="braid_sim")])
        )
        cache = StageCache()
        outcome = execute_point(
            PointSpec(app="sq", size=2, policy=6, distance=3),
            cache,
            RetryPolicy(max_attempts=2, base_delay=0.01),
            sleep=naps.append,
        )
        assert not isinstance(outcome, PointFailure)
        assert len(naps) == 1 and 0.01 <= naps[0] <= 0.02

    def test_exhausted_attempts_fail_with_count(self):
        set_fault_plan(
            FaultPlan(
                [
                    FaultAction(
                        op="raise", stage="braid_sim", once=False
                    )
                ]
            )
        )
        outcome = execute_point(
            PointSpec(app="sq", size=2, policy=6, distance=3),
            StageCache(),
            RetryPolicy(max_attempts=3),
        )
        assert isinstance(outcome, PointFailure)
        assert outcome.attempts == 3
        assert outcome.stage == "braid_sim"


class TestDeadline:
    def test_call_with_deadline_passes_value_and_errors(self):
        assert call_with_deadline(lambda: 42, timeout_s=5.0) == 42
        with pytest.raises(KeyError):
            call_with_deadline(
                lambda: {}["missing"], timeout_s=5.0
            )

    def test_timeout_then_recover(self):
        # The injected sleep must dwarf the deadline, and the deadline
        # must dwarf a tiny point's real runtime (milliseconds) so a
        # loaded test machine can't time out uninjected points.
        set_fault_plan(
            FaultPlan(
                [
                    FaultAction(
                        op="sleep", stage="braid_sim", seconds=3.0
                    )
                ]
            )
        )
        result = SweepRunner(
            retry=RetryPolicy(max_attempts=2, timeout_s=1.0)
        ).run(TINY)
        assert result.ok
        assert len(result.points) == 4

    def test_timeout_exhausted_reports_timeout_stage(self):
        set_fault_plan(
            FaultPlan(
                [
                    FaultAction(
                        op="sleep",
                        stage="braid_sim",
                        seconds=1.5,
                        once=False,
                    )
                ]
            )
        )
        outcome = execute_point(
            PointSpec(app="sq", size=2, policy=6, distance=3),
            StageCache(),
            RetryPolicy(max_attempts=1, timeout_s=0.3),
        )
        assert isinstance(outcome, PointFailure)
        assert outcome.stage == "timeout"
        assert outcome.error_type == "PointTimeout"


class TestDegradation:
    def test_vec_failure_degrades_to_flat(self):
        # The vec attempt always dies; the flat fallback must carry the
        # point with an explicit tag (works with or without numpy: a
        # missing numpy raises ImportError before the injection point).
        set_fault_plan(
            FaultPlan(
                [
                    FaultAction(
                        op="raise",
                        stage="braid_sim",
                        match='"engine": "vec"',
                        once=False,
                    )
                ]
            )
        )
        grid = dataclasses.replace(TINY, engine="vec")
        result = SweepRunner(max_failures=None).run(grid)
        assert result.ok
        assert len(result.degraded) == 4
        for point in result.points:
            assert point.spec.engine == "vec"
            assert point.degraded_from == "vec"

    def test_degraded_results_match_flat_run(self):
        clean = SweepRunner().run(TINY)
        set_fault_plan(
            FaultPlan(
                [
                    FaultAction(
                        op="raise",
                        stage="braid_sim",
                        match='"engine": "vec"',
                        once=False,
                    )
                ]
            )
        )
        degraded = SweepRunner(max_failures=None).run(
            dataclasses.replace(TINY, engine="vec")
        )
        # Identical numbers: only the spec engine and the tag differ.
        for clean_p, degraded_p in zip(
            clean.points, degraded.points
        ):
            assert degraded_p.braid == clean_p.braid
            assert degraded_p.epr == clean_p.epr

    def test_degraded_point_not_cached_under_vec_key(self, tmp_path):
        set_fault_plan(
            FaultPlan(
                [
                    FaultAction(
                        op="raise",
                        stage="braid_sim",
                        match='"engine": "vec"',
                        once=False,
                    )
                ]
            )
        )
        cache = StageCache(tmp_path)
        spec = PointSpec(
            app="sq", size=2, policy=6, distance=3, engine="vec"
        )
        outcome = execute_point(spec, cache)
        assert outcome.degraded_from == "vec"
        # The vec point key must stay empty (caches never mix
        # engines); the flat key holds the computed result.
        assert cache.load_payload(spec.normalized().key()) is None
        flat = dataclasses.replace(spec, engine="flat")
        assert cache.load_payload(flat.normalized().key()) is not None

    def test_import_error_skips_remaining_vec_attempts(
        self, monkeypatch
    ):
        base = run_point(
            PointSpec(app="sq", size=2, policy=6, distance=3),
            StageCache(),
        )
        engines = []

        def fake_run_point(spec, cache=None):
            engines.append(spec.engine)
            if spec.engine == "vec":
                raise ImportError("numpy is required for engine='vec'")
            return base

        monkeypatch.setattr(
            "repro.runner.stages.run_point", fake_run_point
        )
        outcome = execute_point(
            PointSpec(
                app="sq", size=2, policy=6, distance=3, engine="vec"
            ),
            StageCache(),
            RetryPolicy(max_attempts=3),
        )
        # ImportError is unfixable by retrying: one vec attempt, then
        # straight to the flat fallback.
        assert engines == ["vec", "flat"]
        assert outcome.degraded_from == "vec"


class TestQuarantine:
    def test_corrupt_entry_quarantined_on_load(self, tmp_path):
        cache = StageCache(tmp_path)
        spec = PointSpec(app="sq", size=2, policy=6, distance=3)
        run_point(spec, cache)
        [entry] = (tmp_path / "point").glob("*.json")
        entry.write_text("{corrupt", encoding="utf-8")
        cold = StageCache(tmp_path)
        revived = cold.load_payload(spec.normalized().key())
        assert revived is None
        assert not entry.exists()
        quarantined = list(
            (tmp_path / "quarantine" / "point").glob("*.json")
        )
        assert len(quarantined) == 1
        reason = quarantined[0].with_suffix(".reason.txt")
        assert "undecodable JSON" in reason.read_text(encoding="utf-8")
        assert cold.disk_stats()["quarantined"] == 1

    def test_injected_corruption_recovers_and_quarantines(
        self, tmp_path
    ):
        set_fault_plan(
            FaultPlan([FaultAction(op="corrupt", stage="point")])
        )
        warm = SweepRunner(cache_dir=tmp_path).run(TINY)
        assert warm.ok
        set_fault_plan(None)
        # One point entry on disk is garbage; a cold process must
        # quarantine it, recompute, and still match the first run.
        runner = SweepRunner(cache_dir=tmp_path)
        cold = runner.run(TINY)
        assert cold.ok
        assert _jsonable(cold.points) == _jsonable(warm.points)
        assert runner.cache.disk_stats()["quarantined"] == 1
        assert cold.stats.computed("point") == 1
        assert cold.stats.disk_hits.get("point", 0) == 3

    def test_verify_quarantines_and_reports(self, tmp_path):
        cache = StageCache(tmp_path)
        run_point(
            PointSpec(app="sq", size=2, policy=6, distance=3), cache
        )
        [entry] = (tmp_path / "point").glob("*.json")
        entry.write_text("not json at all", encoding="utf-8")
        report = cache.verify()
        assert len(report["corrupt"]) == 1
        assert len(report["quarantined"]) == 1
        assert report["quarantined_total"] == 1
        # Quarantined entries are out of the cache tree: a second
        # verify run is clean.
        again = cache.verify()
        assert again["corrupt"] == []
        assert again["quarantined_total"] == 1

    def test_quarantine_not_scanned_as_a_stage(self, tmp_path):
        cache = StageCache(tmp_path)
        run_point(
            PointSpec(app="sq", size=2, policy=6, distance=3), cache
        )
        [entry] = (tmp_path / "point").glob("*.json")
        entry.write_text("{", encoding="utf-8")
        cache.load_payload(
            PointSpec(app="sq", size=2, policy=6, distance=3)
            .normalized()
            .key()
        )
        stats = cache.disk_stats()
        assert "quarantine" not in stats["stages"]


class TestJournalResume:
    def test_journal_written_and_cleaned_lines(self, tmp_path):
        journal = tmp_path / "sweep.json.partial.jsonl"
        result = SweepRunner().run(TINY, journal=journal)
        assert result.ok
        lines = journal.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 4
        revived = load_journal(journal)
        assert len(revived) == 4

    def test_resume_skips_journaled_points(self, tmp_path):
        journal = tmp_path / "sweep.json.partial.jsonl"
        clean = SweepRunner().run(TINY, journal=journal)
        # Simulate a sweep SIGKILLed after two points: keep the first
        # two journal lines plus a torn final line.
        lines = journal.read_text(encoding="utf-8").splitlines()
        journal.write_text(
            "\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2],
            encoding="utf-8",
        )
        resumed = SweepRunner().run(TINY, journal=journal, resume=True)
        assert resumed.ok
        assert resumed.stats.computed("point") == 2
        assert _jsonable(resumed.points) == _jsonable(clean.points)
        # The journal now holds every point again.
        assert len(load_journal(journal)) == 4

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        journal = tmp_path / "sweep.json.partial.jsonl"
        journal.write_text("garbage\n", encoding="utf-8")
        result = SweepRunner().run(TINY, journal=journal)
        assert result.ok
        assert len(load_journal(journal)) == 4

    def test_journal_entries_for_other_grids_ignored(self, tmp_path):
        journal = tmp_path / "sweep.json.partial.jsonl"
        SweepRunner().run(
            GridSpec(
                apps=("im",), sizes={"im": 8}, policies=(6,), distance=3
            ),
            journal=journal,
        )
        resumed = SweepRunner().run(TINY, journal=journal, resume=True)
        assert resumed.ok
        assert resumed.stats.computed("point") == 4

    def test_journal_path_shape(self):
        assert str(journal_path("out/sweep.json")).endswith(
            "sweep.json.partial.jsonl"
        )


@pytest.mark.slow
class TestWorkerCrashRecovery:
    def test_killed_worker_chunk_requeued(self, tmp_path):
        clean = SweepRunner().run(TINY)
        set_fault_plan(
            FaultPlan(
                [FaultAction(op="kill", stage="braid_sim")],
                state_dir=tmp_path / "fault-state",
            )
        )
        result = SweepRunner(
            cache_dir=tmp_path / "cache",
            workers=2,
            max_failures=None,
        ).run(TINY)
        assert result.ok, [f.to_jsonable() for f in result.failures]
        assert _jsonable(result.points) == _jsonable(clean.points)

    def test_kill_without_cross_process_marker_exhausts_chunk(
        self, tmp_path
    ):
        # No state_dir: every replacement worker re-fires the kill, so
        # the chunk exhausts its pool retries and fails structurally.
        set_fault_plan(
            FaultPlan([FaultAction(op="kill", stage="braid_sim")])
        )
        result = SweepRunner(
            cache_dir=tmp_path / "cache",
            workers=2,
            max_failures=None,
            pool_retries=1,
        ).run(TINY)
        assert not result.ok
        assert all(f.stage == "pool" for f in result.failures)
        assert len(result.points) + len(result.failures) >= 4

    def test_kill_in_main_process_degrades_to_raise(self):
        # Serial sweeps must never hard-exit the interpreter.
        set_fault_plan(
            FaultPlan([FaultAction(op="kill", stage="braid_sim")])
        )
        result = SweepRunner(max_failures=None).run(TINY)
        assert len(result.failures) == 1
        assert result.failures[0].error_type == "InjectedFault"

    def test_stalled_worker_recycled_by_watchdog(self, tmp_path):
        # Budget math: per_point = 1.5s x (2 attempts + 1 degradation)
        # x longest chunk (2) x 1 wave + 1s grace = 10s watchdog; the
        # 20s stall is safely past it.  Two attempts at 1.5s each per
        # millisecond-scale point keep a heavily loaded test machine
        # from turning a slow fork into a false point failure.
        clean = SweepRunner().run(TINY)
        set_fault_plan(
            FaultPlan(
                [FaultAction(op="stall", seconds=20.0)],
                state_dir=tmp_path / "fault-state",
            )
        )
        result = SweepRunner(
            cache_dir=tmp_path / "cache",
            workers=2,
            max_failures=None,
            retry=RetryPolicy(max_attempts=2, timeout_s=1.5),
            pool_grace=1.0,
        ).run(TINY)
        assert result.ok, [f.to_jsonable() for f in result.failures]
        assert _jsonable(result.points) == _jsonable(clean.points)


@pytest.mark.slow
class TestChaos:
    """The acceptance scenario: a seeded plan injecting a worker kill,
    a transient raise, a hung point, and a corrupt disk entry into a
    tiny grid must leave isolated failures, recovered retries, and
    surviving results bit-identical to a fault-free run."""

    def test_seeded_chaos_sweep(self, tmp_path):
        clean = SweepRunner().run(TINY)
        plan = FaultPlan(
            [
                # A worker hard-killed mid-braid: chunk requeued on a
                # rebuilt pool.
                FaultAction(op="kill", stage="braid_sim"),
                # One braid simulation sleeps past its deadline once.
                FaultAction(
                    op="sleep", stage="braid_sim", seconds=4.0
                ),
                # Policy-0 points of sq fail every attempt: permanent,
                # isolated failures.
                FaultAction(
                    op="raise",
                    stage="braid_sim",
                    match='"policy": 0',
                    once=False,
                ),
                # One persisted point entry is corrupted on disk.
                FaultAction(op="corrupt", stage="point"),
            ],
            seed=1234,
            state_dir=tmp_path / "fault-state",
        )
        set_fault_plan(plan)
        result = SweepRunner(
            cache_dir=tmp_path / "cache",
            workers=2,
            max_failures=None,
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.01, timeout_s=2.0
            ),
        ).run(TINY)
        set_fault_plan(None)
        # Both policy-0 points failed; both policy-6 points survived.
        assert len(result.failures) == 2
        assert {f.spec.policy for f in result.failures} == {0}
        assert {p.spec.policy for p in result.points} == {6}
        survivors = {
            p.spec.key().digest: p.to_jsonable() for p in result.points
        }
        expected = {
            p.spec.key().digest: p.to_jsonable()
            for p in clean.points
            if p.spec.policy == 6
        }
        assert survivors == expected
        # The corrupted disk entry is caught (and quarantined) by
        # cache verification.
        report = StageCache(tmp_path / "cache").verify()
        assert len(report["corrupt"]) <= 1
        total = report["quarantined_total"]
        assert total <= 1

    def test_plan_round_trips_through_json(self, tmp_path):
        plan = FaultPlan(
            [
                FaultAction(op="kill", stage="braid_sim"),
                FaultAction(
                    op="raise",
                    stage="braid_sim",
                    nth=2,
                    match='"policy": 0',
                ),
            ],
            seed=99,
            state_dir=tmp_path,
        )
        revived = FaultPlan.from_json(plan.to_json())
        assert revived.actions == plan.actions
        assert revived.seed == 99
        assert revived.state_dir == tmp_path
