"""The ``braid_plan`` / ``lowered`` stages and their cache behavior.

Covers the sweep-level amortization contract (exactly one plan build
per (app, size, layout, distance) across a Figure 6-shaped sweep, via
the plan-memo counters), the persisted lowered circuits (disk revival
skips the builder and the decomposition), and the cache admin commands
over the new entry kind.
"""

import dataclasses

from repro.network import plan_memo_stats, reset_plan_memo
from repro.qasm import Circuit
from repro.runner import GridSpec, StageCache, SweepRunner
from repro.runner.stages import (
    compute_braid,
    compute_braid_plan,
    compute_frontend,
    compute_lowered,
    compute_scaling,
)

# A Figure 6-shaped smoke grid: every policy (so both layout variants
# appear), two apps, tiny sizes.
FIG6_SHAPED = GridSpec(
    apps=("sq", "im"),
    sizes={"sq": 2, "im": 4},
    policies=tuple(range(7)),
    distance=3,
)


class TestPlanStage:
    def test_one_plan_build_per_design_point(self):
        """The CI smoke contract: a Fig. 6-shaped sweep builds exactly
        one plan per (app, size, layout, distance)."""
        reset_plan_memo()
        runner = SweepRunner(cache=StageCache())
        result = runner.run(FIG6_SHAPED)
        assert len(result.points) == 14
        # 2 apps x 2 layout variants (policies 0-1 naive, 2-6
        # optimized) x 1 distance.
        assert plan_memo_stats()["builds"] == 4
        assert result.stats.computed("braid_plan") == 4
        assert result.stats.reused("braid_plan") == 10
        assert result.stats.computed("braid_sim") == 14

    def test_plan_stage_self_time_split_from_braid_sim(self):
        cache = StageCache()
        runner = SweepRunner(cache=cache)
        stats = runner.run(FIG6_SHAPED).stats
        assert stats.stage_seconds("braid_plan") > 0
        assert stats.stage_seconds("braid_sim") > 0

    def test_plan_shared_across_policies_in_one_cache(self):
        cache = StageCache()
        compute_braid(cache, "sq", 2, policy=2, distance=3)
        compute_braid(cache, "sq", 2, policy=6, distance=3)
        assert cache.stats.computed("braid_plan") == 1
        assert cache.stats.reused("braid_plan") == 1
        # A different distance needs its own plan.
        compute_braid(cache, "sq", 2, policy=6, distance=5)
        assert cache.stats.computed("braid_plan") == 2

    def test_plan_stage_reuses_frontend_and_layout(self):
        cache = StageCache()
        compute_frontend(cache, "sq", 2)
        compute_braid_plan(cache, "sq", 2, optimize_layout=True, distance=3)
        assert cache.stats.computed("frontend") == 1
        assert cache.stats.computed("layout") == 1


class TestLoweredStage:
    def test_frontend_persists_lowered_circuit(self, tmp_path):
        cold = StageCache(tmp_path)
        fe = compute_frontend(cold, "sq", 2)
        assert cold.stats.computed("lowered") == 1
        # A fresh process (same disk level) revives the circuit instead
        # of re-running the builder + decomposition.
        warm = StageCache(tmp_path)
        revived = compute_frontend(warm, "sq", 2)
        assert warm.stats.disk_hits.get("lowered") == 1
        assert warm.stats.computed("lowered") == 0
        assert revived.circuit.qubits == fe.circuit.qubits
        assert len(revived.circuit) == len(fe.circuit)
        assert revived.circuit.gate_counts() == fe.circuit.gate_counts()
        assert revived.logical == fe.logical

    def test_revived_circuit_simulates_bit_identically(self, tmp_path):
        cold = StageCache(tmp_path)
        first = compute_braid(cold, "sq", 2, policy=6, distance=3)
        warm = StageCache(tmp_path)
        warm_cache_braid = compute_braid(warm, "sq", 2, policy=5, distance=3)
        fresh = StageCache()
        assert warm.stats.disk_hits.get("lowered") == 1
        assert compute_braid(fresh, "sq", 2, policy=5, distance=3) == (
            warm_cache_braid
        )
        assert compute_braid(fresh, "sq", 2, policy=6, distance=3) == first

    def test_scaling_calibration_persists_lowered_circuits(self, tmp_path):
        cold = StageCache(tmp_path)
        model = compute_scaling(cold, "sq", sizes=(2, 3))
        assert cold.stats.computed("lowered") == 2
        # Drop only the estimates: the lowered circuits still revive,
        # so recalibration skips the expensive builder+lowering.
        cold.prune(stage="scaling_calib")
        cold.prune(stage="scaling")
        warm = StageCache(tmp_path)
        again = compute_scaling(warm, "sq", sizes=(2, 3))
        assert warm.stats.disk_hits.get("lowered") == 2
        assert warm.stats.computed("lowered") == 0
        assert again == model

    def test_scaling_and_sim_instances_keyed_apart(self):
        """Same (app, size), different circuit family: two cache keys."""
        cache = StageCache()
        compute_lowered(cache, "gse", 3)
        compute_lowered(cache, "gse", 3, scaling=True)
        assert cache.stats.computed("lowered") == 2
        # Repeats of either family hit their own entry.
        compute_lowered(cache, "gse", 3)
        compute_lowered(cache, "gse", 3, scaling=True)
        assert cache.stats.computed("lowered") == 2
        assert cache.stats.reused("lowered") == 2

    def test_fences_round_trip_through_disk(self, tmp_path):
        cold = StageCache(tmp_path)
        fenced = compute_lowered(cold, "im", 4, inline_depth=0)
        assert fenced.fences, "inline_depth=0 should fence module calls"
        warm = StageCache(tmp_path)
        revived = compute_lowered(warm, "im", 4, inline_depth=0)
        assert warm.stats.disk_hits.get("lowered") == 1
        assert revived.fences == fenced.fences
        assert revived.qubits == fenced.qubits
        assert [str(op) for op in revived] == [str(op) for op in fenced]


class TestCacheAdminWithNewStages:
    def test_stats_prune_verify_cover_lowered_entries(self, tmp_path):
        cache = StageCache(tmp_path)
        compute_frontend(cache, "sq", 2)
        stats = cache.disk_stats()
        assert "lowered" in stats["stages"]
        assert stats["stages"]["lowered"]["entries"] == 1
        verified = cache.verify()
        assert verified["ok"] == verified["checked"] > 0
        removed = cache.prune(stage="lowered")
        assert removed == 1
        assert "lowered" not in cache.disk_stats()["stages"]


class TestParallelSweepStillDedups:
    def test_parallel_chunks_share_plans_within_workers(self, tmp_path):
        grid = dataclasses.replace(FIG6_SHAPED, policies=(0, 1, 5, 6))
        runner = SweepRunner(cache_dir=tmp_path, workers=2)
        result = runner.run(grid)
        assert len(result.points) == 8
        # Each worker chunk builds each of its needed plans at most
        # once; across the pool the build count stays bounded by
        # (chunks x layouts), far below one per point.
        assert result.stats.computed("braid_plan") <= 8
        assert result.stats.computed("braid_sim") == 8
        serial = SweepRunner(cache=StageCache()).run(grid)
        assert [p.to_jsonable() for p in result.points] == [
            p.to_jsonable() for p in serial.points
        ]

    def test_lowered_payload_revives_circuit_equal(self, tmp_path):
        from repro.runner.keys import StageKey

        cache = StageCache(tmp_path)
        circuit = compute_lowered(cache, "gse", 3)
        key = StageKey.make(
            "lowered", app="gse", size=3, inline_depth=None, scaling=False
        )
        payload = cache.load_payload(key)
        assert payload is not None
        revived = Circuit.from_jsonable(payload)
        assert [str(op) for op in revived] == [str(op) for op in circuit]
