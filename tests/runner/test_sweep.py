"""Sweep semantics: grid expansion, dedup, shared-prefix stage reuse,
process-pool equivalence, and disk-cache resume."""

import pytest

from repro.runner import (
    GridSpec,
    PointSpec,
    StageCache,
    SweepResult,
    SweepRunner,
    fig6_grid,
    run_point,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

# Tiny instances keep every simulation in the milliseconds range.
TINY = GridSpec(
    apps=("sq", "gse"),
    sizes={"sq": 2, "gse": 3},
    policies=(0, 6),
    distance=3,
)


class TestGridExpansion:
    def test_cross_product(self):
        specs = TINY.expand()
        assert len(specs) == 4
        assert {(s.app, s.policy) for s in specs} == {
            ("sq", 0),
            ("sq", 6),
            ("gse", 0),
            ("gse", 6),
        }

    def test_normalization_resolves_sizes(self):
        specs = GridSpec(apps=("sha1",), policies=(6,)).expand()
        assert specs[0].size == 8  # sha1's default size

    def test_identical_points_deduplicated(self):
        # "sha" aliases "sha1", so the grid collapses to one app.
        specs = GridSpec(
            apps=("sha1", "sha"), sizes=None, policies=(6,)
        ).expand()
        assert len(specs) == 1

    def test_fig6_grid_shape(self):
        specs = fig6_grid().expand()
        assert len(specs) == 28  # 4 apps x 7 policies
        assert all(s.distance == 5 for s in specs)

    def test_point_list_dedup(self):
        runner = SweepRunner()
        result = runner.run(
            [
                PointSpec(app="sq", size=2, policy=6, distance=3),
                PointSpec(app="sq", size=2, policy=6, distance=3),
            ]
        )
        assert len(result.points) == 1


class TestEngineAxis:
    """The engine selector flows grid -> point -> stage key."""

    def test_grid_engine_reaches_every_point(self):
        specs = GridSpec(
            apps=("sq",), sizes={"sq": 2}, policies=(0, 6), distance=3,
            engine="vec",
        ).expand()
        assert specs and all(s.engine == "vec" for s in specs)

    def test_default_engine_is_flat(self):
        assert all(s.engine == "flat" for s in TINY.expand())

    def test_engine_keys_the_point(self):
        flat = PointSpec(app="sq", size=2, policy=6, distance=3)
        vec = PointSpec(
            app="sq", size=2, policy=6, distance=3, engine="vec"
        )
        assert flat.key() != vec.key()
        assert flat.key().digest != vec.key().digest

    def test_engine_keys_the_braid_stage(self):
        from repro.runner.keys import StageKey

        base = dict(app="sq", size=2, policy=6, distance=3)
        flat = StageKey.make("braid_sim", engine="flat", **base)
        vec = StageKey.make("braid_sim", engine="vec", **base)
        assert flat.digest != vec.digest

    def test_vec_point_matches_flat_result(self):
        pytest.importorskip("numpy")
        flat = run_point(
            PointSpec(app="sq", size=2, policy=6, distance=3)
        )
        vec = run_point(
            PointSpec(
                app="sq", size=2, policy=6, distance=3, engine="vec"
            )
        )
        assert vec.braid == flat.braid


class TestGridLists:
    def test_per_app_size_lists(self):
        specs = GridSpec(
            apps=("sq", "gse"),
            sizes={"sq": (2, 3), "gse": 3},
            policies=(6,),
        ).expand()
        assert {(s.app, s.size) for s in specs} == {
            ("sq", 2),
            ("sq", 3),
            ("gse", 3),
        }

    def test_error_rate_lists(self):
        specs = GridSpec(
            apps=("sq",),
            sizes={"sq": 2},
            policies=(6,),
            error_rates=(1e-3, 1e-5, None),
        ).expand()
        assert [s.error_rate for s in specs] == [1e-3, 1e-5, None]

    def test_error_rates_override_scalar(self):
        specs = GridSpec(
            apps=("sq",),
            sizes={"sq": 2},
            policies=(6,),
            error_rate=1e-4,
            error_rates=(1e-3,),
        ).expand()
        assert [s.error_rate for s in specs] == [1e-3]

    def test_fig9_style_grid_in_one_spec(self):
        """Size lists x error-rate lists: the Figure 9 plane."""
        specs = GridSpec(
            apps=("sq", "im"),
            sizes={"sq": (2, 3), "im": (4, 6)},
            policies=(6,),
            error_rates=(1e-3, 1e-5),
        ).expand()
        assert len(specs) == 2 * 2 * 2

    def test_duplicate_sizes_deduplicated(self):
        specs = GridSpec(
            apps=("sq",), sizes={"sq": (2, 2)}, policies=(6,)
        ).expand()
        assert len(specs) == 1


class TestSharedPrefixReuse:
    def test_frontend_compiled_exactly_once_per_app(self):
        result = SweepRunner().run(TINY)
        stats = result.stats
        assert stats.computed("frontend") == 2, stats.as_dict()
        assert stats.computed("braid_sim") == 4
        # EPR pipeline is policy-independent: once per app.
        assert stats.computed("simd_epr") == 2
        assert stats.reused("frontend") > 0

    def test_second_run_all_hits(self):
        runner = SweepRunner()
        runner.run(TINY)
        again = runner.run(TINY)
        assert again.stats.computed("point") == 0
        assert again.stats.reused("point") == 4
        assert again.stats.computed("frontend") == 0


class TestDiskResume:
    def test_cold_then_warm(self, tmp_path):
        cold = SweepRunner(cache_dir=tmp_path).run(TINY)
        assert cold.stats.computed("point") == 4
        warm = SweepRunner(cache_dir=tmp_path).run(TINY)
        assert warm.stats.computed("point") == 0
        assert warm.stats.disk_hits["point"] == 4
        assert [p.to_jsonable() for p in warm.points] == [
            p.to_jsonable() for p in cold.points
        ]

    def test_save_load_round_trip(self, tmp_path):
        result = SweepRunner().run(TINY)
        path = tmp_path / "sweep.json"
        result.save(path)
        loaded = SweepResult.load(path)
        assert [p.to_jsonable() for p in loaded.points] == [
            p.to_jsonable() for p in result.points
        ]
        assert loaded.stats.as_dict() == result.stats.as_dict()


class TestParallel:
    def test_matches_serial(self, tmp_path):
        serial = SweepRunner().run(TINY)
        parallel = SweepRunner(
            cache_dir=tmp_path / "cache", workers=2
        ).run(TINY)
        assert parallel.workers == 2
        assert [p.to_jsonable() for p in parallel.points] == [
            p.to_jsonable() for p in serial.points
        ]
        # Grouping by frontend key: each app compiled exactly once
        # across the whole pool.
        assert parallel.stats.computed("frontend") == 2

    def test_single_point_stays_serial(self):
        result = SweepRunner(workers=4).run(
            [PointSpec(app="sq", size=2, policy=6, distance=3)]
        )
        assert result.workers == 1
        assert len(result.points) == 1

    @pytest.mark.slow
    def test_braid_stage_splits_inside_one_group(self, tmp_path):
        """With more workers than frontend groups, one app's policies
        fan out across chunk jobs (the braid-stage parallelization);
        results still match the serial run bit for bit."""
        grid = GridSpec(
            apps=("sq",), sizes={"sq": 2}, policies=(0, 1, 5, 6),
            distance=3,
        )
        serial = SweepRunner().run(grid)
        parallel = SweepRunner(
            cache_dir=tmp_path / "cache", workers=2
        ).run(grid)
        assert [p.to_jsonable() for p in parallel.points] == [
            p.to_jsonable() for p in serial.points
        ]
        # One frontend group split across two chunk jobs: the frontend
        # compiles once per chunk worker, and both workers simulate.
        assert parallel.stats.computed("frontend") == 2
        assert parallel.stats.computed("braid_sim") == 4

    @pytest.mark.slow
    def test_workers_capped_by_chunks(self, tmp_path):
        grid = GridSpec(
            apps=("sq",), sizes={"sq": 2}, policies=(0, 6), distance=3
        )
        result = SweepRunner(
            cache_dir=tmp_path / "cache", workers=8
        ).run(grid)
        # 2 points -> at most 2 chunks, results intact.
        assert len(result.points) == 2
        assert result.stats.computed("braid_sim") == 2


class TestPointSemantics:
    def test_distance_derived_when_unset(self):
        point = run_point(PointSpec(app="sq", size=2), StageCache())
        assert point.distance >= 3
        assert point.spec.distance is None

    def test_distance_override_respected(self):
        point = run_point(
            PointSpec(app="sq", size=2, distance=3), StageCache()
        )
        assert point.distance == 3

    def test_matches_toolflow(self):
        """run_point must agree with the reference run_toolflow."""
        from repro.core import run_toolflow
        from repro.tech import INTERMEDIATE

        flow = run_toolflow(
            "sq", size=2, tech=INTERMEDIATE, policy=6, cache=StageCache()
        )
        point = run_point(
            # run_toolflow always uses the interaction-aware layout.
            PointSpec(app="sq", size=2, policy=6, optimize_layout=True),
            StageCache(),
        )
        assert point.distance == flow.distance
        assert point.braid == flow.braid_result
        assert point.epr == flow.epr_result
        assert point.planar == flow.planar_estimate
        assert point.double_defect == flow.double_defect_estimate
        assert point.preferred_code == flow.preferred_code

    def test_toolflow_shares_default_cache(self):
        from repro.core import run_toolflow
        from repro.runner import reset_default_cache

        cache = reset_default_cache()
        try:
            run_toolflow("sq", size=2, policy=6)
            run_toolflow("sq", size=2, policy=1)
            assert cache.stats.computed("frontend") == 1
            assert cache.stats.computed("braid_sim") == 2
            assert cache.stats.computed("simd_epr") == 1
        finally:
            reset_default_cache()
