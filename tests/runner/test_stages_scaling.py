"""The ``scaling`` / ``scaling_calib`` stages and their cache behavior."""

import dataclasses

import pytest

from repro.apps.scaling import calibrate, calibration_sizes
from repro.core.calibration import calibrate_app
from repro.runner import StageCache, compute_scaling
from repro.runner.stages import (
    compute_accounting,
    run_point,
    scaling_key,
    PointSpec,
)
from repro.tech import INTERMEDIATE

APP = "sq"  # smallest calibration family; keeps these tests fast


class TestComputeScaling:
    @pytest.fixture(scope="class")
    def cache(self):
        return StageCache()

    def test_matches_direct_calibration(self, cache):
        staged = compute_scaling(cache, APP)
        direct = calibrate(APP, use_cache=False)
        assert staged == direct

    def test_fit_and_compiles_are_cached(self, cache):
        compute_scaling(cache, APP)
        misses_before = dict(cache.stats.misses)
        compute_scaling(cache, APP)
        assert cache.stats.misses == misses_before  # everything reused
        assert cache.stats.hits.get("scaling", 0) >= 1

    def test_overlapping_sizes_share_per_size_compiles(self, cache):
        compute_scaling(cache, APP)
        calib_misses = cache.stats.misses.get("scaling_calib", 0)
        subset = calibration_sizes(APP)[:2]
        compute_scaling(cache, APP, sizes=subset)
        # A new fit (different key) but zero new calibration compiles.
        assert cache.stats.misses.get("scaling_calib", 0) == calib_misses
        assert cache.stats.misses.get("scaling", 0) >= 2

    def test_key_includes_resolved_sizes(self):
        default = scaling_key(APP)
        explicit = scaling_key(APP, calibration_sizes(APP))
        assert default == explicit
        assert default != scaling_key(APP, calibration_sizes(APP)[:2])

    def test_disk_round_trip(self, tmp_path):
        disk = tmp_path / "cache"
        first = StageCache(disk)
        model = compute_scaling(first, APP)
        revived_cache = StageCache(disk)
        revived = compute_scaling(revived_cache, APP)
        assert revived == model
        assert revived_cache.stats.disk_hits.get("scaling") == 1
        # The fit revived whole; no per-size compile was touched.
        assert revived_cache.stats.misses.get("scaling_calib", 0) == 0

    def test_calibrate_cache_kwarg_routes_through_stages(self, tmp_path):
        cache = StageCache(tmp_path / "cache")
        model = calibrate(APP, cache=cache)
        assert cache.stats.misses.get("scaling") == 1
        assert model == compute_scaling(cache, APP)


class TestScalingInThePipeline:
    def test_accounting_reuses_one_scaling_fit(self):
        cache = StageCache()
        for congestion in (1.0, 1.5, 2.0):
            compute_accounting(
                cache, APP, 1e10, INTERMEDIATE, congestion=congestion
            )
        assert cache.stats.misses.get("scaling", 0) == 1
        assert cache.stats.misses.get("accounting", 0) == 3

    def test_scaling_self_time_recorded(self):
        cache = StageCache()
        run_point(PointSpec(app=APP, size=2, distance=3), cache)
        seconds = cache.stats.seconds
        assert "scaling" in seconds
        assert "scaling_calib" in seconds
        # Self-time attribution: the accounting row no longer absorbs
        # the calibration compiles.
        assert seconds["accounting"] < seconds["scaling_calib"] + 1.0
        assert "scaling" in cache.stats.summary()

    def test_calibrate_app_shares_the_stage_cache(self):
        cache = StageCache()
        compute_scaling(cache, APP)
        misses = dict(cache.stats.misses)
        cal = calibrate_app(APP, policy=6, distance=3, cache=cache)
        assert cache.stats.misses.get("scaling", 0) == misses.get(
            "scaling", 0
        )  # the fit was served from the stage cache
        assert cal.scaling == compute_scaling(cache, APP)

    def test_point_results_unchanged_by_staging(self):
        # The staged fit must be numerically identical to the direct
        # calibration the accounting stage used before.
        cache = StageCache()
        point = run_point(PointSpec(app=APP, size=2, distance=3), cache)
        direct = calibrate(APP, use_cache=False)
        staged = compute_scaling(cache, APP)
        assert staged == direct
        assert point.planar.spacetime > 0
        assert (
            dataclasses.asdict(staged)["qubits_vs_ops"]
            == dataclasses.asdict(direct)["qubits_vs_ops"]
        )
