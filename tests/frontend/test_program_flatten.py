"""Tests for hierarchical programs and the inlining-controlled flattener."""

import pytest

from repro.frontend import Call, Module, Program, flatten
from repro.qasm import CircuitDag


def two_level_program() -> Program:
    """main calls sub(a,b) twice on disjoint pairs; sub = H; CNOT."""
    program = Program("main")
    sub = program.module("sub", parameters=["p", "q"])
    sub.apply("H", "p")
    sub.apply("CNOT", "p", "q")
    main = program.module("main", locals_=["a", "b", "c", "d"])
    main.call("sub", "a", "b")
    main.call("sub", "c", "d")
    return program


class TestProgramValidation:
    def test_missing_entry(self):
        program = Program("main")
        with pytest.raises(ValueError, match="entry"):
            program.validate()

    def test_undefined_callee(self):
        program = Program("main")
        main = program.module("main", locals_=["a"])
        main.body.append(Call("ghost", ("a",)))
        with pytest.raises(ValueError, match="undefined"):
            program.validate()

    def test_arity_mismatch(self):
        program = Program("main")
        program.module("sub", parameters=["p", "q"])
        main = program.module("main", locals_=["a"])
        main.body.append(Call("sub", ("a",)))
        with pytest.raises(ValueError, match="expected 2"):
            program.validate()

    def test_recursion_rejected(self):
        program = Program("main")
        main = program.module("main", locals_=["a"])
        main.body.append(Call("main", ()))
        with pytest.raises(ValueError, match="recursive"):
            program.validate()

    def test_mutual_recursion_rejected(self):
        program = Program("main")
        a = program.module("main", locals_=["q"])
        b = program.module("other", parameters=["p"])
        a.body.append(Call("other", ("q",)))
        b.body.append(Call("main", ()))
        with pytest.raises(ValueError, match="recursive"):
            program.validate()

    def test_undeclared_operand_rejected(self):
        module = Module("m", parameters=["a"])
        with pytest.raises(ValueError, match="undeclared"):
            module.apply("H", "zz")

    def test_duplicate_module_rejected(self):
        program = Program()
        program.module("m")
        with pytest.raises(ValueError, match="duplicate"):
            program.module("m")

    def test_param_local_overlap_rejected(self):
        with pytest.raises(ValueError, match="both"):
            Module("m", parameters=["a"], locals_=["a"])

    def test_call_depth(self):
        program = two_level_program()
        assert program.call_depth() == 1

    def test_call_depth_leaf_only(self):
        program = Program("main")
        program.module("main", locals_=["a"])
        assert program.call_depth() == 0


class TestFlattenFull:
    def test_operation_count(self):
        circuit = flatten(two_level_program())
        assert len(circuit) == 4  # 2 calls x (H + CNOT)

    def test_argument_binding(self):
        circuit = flatten(two_level_program())
        assert circuit[0].qubits == ("a",)
        assert circuit[1].qubits == ("a", "b")
        assert circuit[2].qubits == ("c",)
        assert circuit[3].qubits == ("c", "d")

    def test_full_inline_has_no_fences(self):
        assert flatten(two_level_program()).fences == []

    def test_full_inline_parallelism(self):
        # The two sub calls are independent -> depth 2, 4 ops, factor 2.
        dag = CircuitDag(flatten(two_level_program()))
        assert dag.critical_path_length == 2
        assert dag.parallelism_factor == pytest.approx(2.0)

    def test_locals_uniquified_per_call(self):
        program = Program("main")
        sub = program.module("sub", parameters=["p"], locals_=["scratch"])
        sub.apply("CNOT", "p", "scratch")
        main = program.module("main", locals_=["a", "b"])
        main.call("sub", "a")
        main.call("sub", "b")
        circuit = flatten(program)
        scratch_names = {op.qubits[1] for op in circuit}
        assert len(scratch_names) == 2  # fresh local per invocation

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError, match="inline_depth"):
            flatten(two_level_program(), inline_depth=-1)


class TestFlattenFenced:
    def test_zero_depth_adds_fences(self):
        circuit = flatten(two_level_program(), inline_depth=0)
        assert len(circuit.fences) == 4  # pre+post per call

    def test_fences_serialize_independent_calls(self):
        program = two_level_program()
        inlined = CircuitDag(flatten(program))
        fenced = CircuitDag(flatten(program, inline_depth=0))
        # Fencing the opaque calls cannot increase parallelism.
        assert fenced.parallelism_factor <= inlined.parallelism_factor

    def test_inlining_gradient_on_overlapping_chain(self):
        """Fully inlining a chain of overlapping calls raises parallelism.

        This mirrors the paper's IM semi- vs fully-inlined variants
        (Section 7.3): neighboring Trotter terms share a qubit, so opaque
        call boundaries serialize work that full inlining overlaps.
        """
        program = Program("main")
        sub = program.module("sub", parameters=["p", "q"])
        sub.apply("H", "p")
        sub.apply("H", "q")
        main = program.module("main", locals_=["a", "b", "c", "d"])
        main.call("sub", "a", "b")
        main.call("sub", "b", "c")
        main.call("sub", "c", "d")

        fenced = CircuitDag(flatten(program, inline_depth=0))
        inlined = CircuitDag(flatten(program, inline_depth=1))
        assert fenced.parallelism_factor < inlined.parallelism_factor
        assert inlined.parallelism_factor == pytest.approx(3.0)
        assert fenced.parallelism_factor == pytest.approx(2.0)

    def test_fenced_flatten_same_ops(self):
        program = two_level_program()
        assert len(flatten(program, inline_depth=0)) == len(flatten(program))
