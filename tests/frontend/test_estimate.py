"""Tests for logical resource estimation."""

import pytest

from repro.frontend import estimate_circuit, target_logical_error_rate
from repro.qasm import Circuit


def sample_circuit() -> Circuit:
    c = Circuit("sample")
    c.apply("PREPZ", "a")
    c.apply("PREPZ", "b")
    c.apply("H", "a")
    c.apply("CNOT", "a", "b")
    c.apply("T", "b")
    c.apply("TDG", "a")
    c.apply("MEASZ", "a")
    c.apply("MEASZ", "b")
    return c


class TestTargetLogicalErrorRate:
    def test_paper_example(self):
        # Section 2.2: 1e12 ops need per-op error <= 0.5e-12.
        assert target_logical_error_rate(10**12) == pytest.approx(0.5e-12)

    def test_scales_inversely(self):
        assert target_logical_error_rate(100) == pytest.approx(
            10 * target_logical_error_rate(1000)
        )

    def test_custom_success_target(self):
        assert target_logical_error_rate(10, success_target=0.9) == pytest.approx(
            0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            target_logical_error_rate(0)
        with pytest.raises(ValueError):
            target_logical_error_rate(10, success_target=1.0)


class TestEstimateCircuit:
    def setup_method(self):
        self.estimate = estimate_circuit(sample_circuit())

    def test_counts(self):
        assert self.estimate.num_qubits == 2
        assert self.estimate.total_operations == 8
        assert self.estimate.t_count == 2
        assert self.estimate.two_qubit_count == 1
        assert self.estimate.measurement_count == 2

    def test_critical_path_and_parallelism(self):
        assert self.estimate.critical_path == 5  # chain on qubit a or b
        assert self.estimate.parallelism_factor == pytest.approx(8 / 5)

    def test_target_pl(self):
        assert self.estimate.target_pl == pytest.approx(0.5 / 8)
        assert self.estimate.computation_size == pytest.approx(16.0)

    def test_fractions(self):
        assert self.estimate.t_fraction == pytest.approx(2 / 8)
        assert self.estimate.communication_fraction == pytest.approx(3 / 8)

    def test_histogram(self):
        assert self.estimate.gate_histogram["PREPZ"] == 2
        assert self.estimate.gate_histogram["CNOT"] == 1

    def test_summary_row_contains_name(self):
        assert "sample" in self.estimate.summary_row()

    def test_empty_circuit(self):
        estimate = estimate_circuit(Circuit("empty"))
        assert estimate.total_operations == 0
        assert estimate.t_fraction == 0.0
        assert estimate.communication_fraction == 0.0
