"""Unit tests for Clifford+T decomposition."""

import math

import pytest

from repro.frontend.decompose import (
    DecomposeConfig,
    decompose_circuit,
    rz_t_count,
)
from repro.qasm import Circuit


class TestToffoli:
    def setup_method(self):
        c = Circuit("toffoli")
        c.apply("TOFFOLI", "a", "b", "t")
        self.lowered = decompose_circuit(c)

    def test_no_composites_remain(self):
        assert not self.lowered.has_composites()

    def test_seven_t_gates(self):
        counts = self.lowered.gate_counts()
        assert counts["T"] + counts["TDG"] == 7

    def test_six_cnots(self):
        assert self.lowered.gate_counts()["CNOT"] == 6

    def test_two_hadamards(self):
        assert self.lowered.gate_counts()["H"] == 2

    def test_only_original_qubits(self):
        assert set(self.lowered.qubits) == {"a", "b", "t"}


class TestFredkin:
    def test_lowered_to_clifford_t(self):
        c = Circuit()
        c.apply("FREDKIN", "c", "x", "y")
        lowered = decompose_circuit(c)
        assert not lowered.has_composites()
        counts = lowered.gate_counts()
        assert counts["T"] + counts["TDG"] == 7
        assert counts["CNOT"] == 8  # toffoli's 6 + 2 conjugating


class TestRz:
    @pytest.mark.parametrize(
        "angle,expected_gates",
        [
            (0.0, []),
            (math.pi / 4, ["T"]),
            (math.pi / 2, ["S"]),
            (math.pi, ["Z"]),
            (-math.pi / 4, ["TDG"]),
            (-math.pi / 2, ["SDG"]),
            (3 * math.pi / 4, ["S", "T"]),
            (2 * math.pi, []),
        ],
    )
    def test_exact_eighth_turns(self, angle, expected_gates):
        c = Circuit()
        c.apply("RZ", "q", param=angle)
        lowered = decompose_circuit(c)
        assert [op.gate for op in lowered] == expected_gates

    def test_generic_angle_t_count_matches_gridsynth(self):
        c = Circuit()
        c.apply("RZ", "q", param=0.123)
        config = DecomposeConfig(rz_precision=1e-10)
        lowered = decompose_circuit(c, config)
        counts = lowered.gate_counts()
        assert counts["T"] + counts["TDG"] == rz_t_count(1e-10)

    def test_deterministic(self):
        c = Circuit()
        c.apply("RZ", "q", param=0.377)
        first = [op.gate for op in decompose_circuit(c)]
        second = [op.gate for op in decompose_circuit(c)]
        assert first == second

    def test_higher_precision_costs_more_t(self):
        assert rz_t_count(1e-15) > rz_t_count(1e-5)

    def test_rz_t_count_validates(self):
        with pytest.raises(ValueError):
            rz_t_count(0.0)
        with pytest.raises(ValueError):
            rz_t_count(1.5)

    def test_config_validates(self):
        with pytest.raises(ValueError):
            DecomposeConfig(rz_precision=0)


class TestPassBehavior:
    def test_non_composites_pass_through(self):
        c = Circuit()
        c.apply("H", "a")
        c.apply("CNOT", "a", "b")
        lowered = decompose_circuit(c)
        assert [op.gate for op in lowered] == ["H", "CNOT"]

    def test_fences_preserved(self):
        c = Circuit()
        c.apply("H", "a")
        c.add_fence(["a", "b"])
        c.apply("TOFFOLI", "a", "b", "t")
        lowered = decompose_circuit(c)
        assert len(lowered.fences) == 1
        position, qubits = lowered.fences[0]
        assert position == 1  # after the single H
        assert set(qubits) == {"a", "b"}

    def test_trailing_fence_preserved(self):
        c = Circuit()
        c.apply("H", "a")
        c.add_fence(["a"])
        lowered = decompose_circuit(c)
        assert lowered.fences == [(1, ("a",))]

    def test_mixed_circuit(self):
        c = Circuit()
        c.apply("H", "a")
        c.apply("TOFFOLI", "a", "b", "t")
        c.apply("MEASZ", "t")
        lowered = decompose_circuit(c)
        assert lowered[0].gate == "H"
        assert lowered[-1].gate == "MEASZ"
        assert len(lowered) == 17  # 1 + 15 + 1
