"""Tests for logical scheduling, including schedule-validity properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import alap_schedule, asap_schedule, list_schedule
from repro.qasm import Circuit, CircuitDag

from ..qasm.conftest import circuits


def diamond() -> Circuit:
    c = Circuit("diamond")
    c.apply("H", "a")            # 0
    c.apply("CNOT", "a", "b")    # 1
    c.apply("CNOT", "a", "c")    # 2
    c.apply("CNOT", "b", "c")    # 3
    return c


class TestAsapAlap:
    def test_asap_matches_dag_levels(self):
        schedule = asap_schedule(diamond())
        assert schedule.cycles == ((0,), (1,), (2,), (3,))

    def test_alap_valid(self):
        schedule = alap_schedule(diamond())
        schedule.validate()

    def test_same_length(self):
        c = diamond()
        assert asap_schedule(c).length == alap_schedule(c).length

    def test_empty_circuit(self):
        schedule = asap_schedule(Circuit())
        assert schedule.length == 0
        assert schedule.mean_concurrency == 0.0

    def test_schedule_metrics(self):
        c = Circuit()
        c.apply("H", "a")
        c.apply("H", "b")
        c.apply("CNOT", "a", "b")
        schedule = asap_schedule(c)
        assert schedule.length == 2
        assert schedule.width == 2
        assert schedule.num_operations == 3
        assert schedule.mean_concurrency == pytest.approx(1.5)

    def test_start_cycle(self):
        schedule = asap_schedule(diamond())
        assert schedule.start_cycle(0) == 0
        assert schedule.start_cycle(3) == 3
        with pytest.raises(KeyError):
            schedule.start_cycle(99)


class TestListSchedule:
    def test_width_respected(self):
        c = Circuit()
        for i in range(10):
            c.apply("H", f"q{i}")
        schedule = list_schedule(c, issue_width=3)
        assert schedule.width <= 3
        assert schedule.length == 4  # ceil(10/3)

    def test_unbounded_width_matches_asap_length(self):
        c = diamond()
        assert list_schedule(c, issue_width=100).length == asap_schedule(c).length

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            list_schedule(Circuit(), issue_width=0)

    def test_criticality_priority_prefers_long_chain(self):
        c = Circuit()
        # Chain of 3 on 'a' competes with an isolated gate on 'b'.
        c.apply("H", "a")
        c.apply("H", "a")
        c.apply("H", "a")
        c.apply("H", "b")
        schedule = list_schedule(c, issue_width=1)
        # The chain head has criticality 2 and must issue first.
        assert schedule.cycles[0] == (0,)
        assert schedule.length == 4

    def test_custom_priority(self):
        c = Circuit()
        c.apply("H", "a")
        c.apply("H", "b")
        schedule = list_schedule(c, issue_width=1, priority=lambda i: -i)
        assert schedule.cycles[0] == (0,)
        schedule = list_schedule(c, issue_width=1, priority=lambda i: i)
        assert schedule.cycles[0] == (1,)

    def test_validates(self):
        for width in (1, 2, 4):
            list_schedule(diamond(), issue_width=width).validate()


class TestScheduleProperties:
    @given(circuits(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_list_schedule_always_valid(self, circuit, width):
        schedule = list_schedule(circuit, issue_width=width)
        schedule.validate()
        assert schedule.width <= width

    @given(circuits(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_length_bounds(self, circuit, width):
        dag = CircuitDag(circuit)
        schedule = list_schedule(circuit, issue_width=width, dag=dag)
        lower = max(
            dag.critical_path_length,
            -(-dag.num_nodes // width),  # ceil division
        )
        assert schedule.length >= lower
        assert schedule.length <= dag.num_nodes

    @given(circuits())
    @settings(max_examples=60)
    def test_asap_alap_both_valid(self, circuit):
        dag = CircuitDag(circuit)
        asap_schedule(circuit, dag).validate(dag)
        alap_schedule(circuit, dag).validate(dag)

    @given(circuits())
    @settings(max_examples=60)
    def test_asap_length_equals_critical_path(self, circuit):
        dag = CircuitDag(circuit)
        assert asap_schedule(circuit, dag).length == dag.critical_path_length
