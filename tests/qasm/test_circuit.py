"""Unit tests for the circuit container and operations."""

import pytest

from repro.qasm import Circuit, Operation


def bell_pair() -> Circuit:
    c = Circuit("bell")
    c.apply("PREPZ", "a")
    c.apply("PREPZ", "b")
    c.apply("H", "a")
    c.apply("CNOT", "a", "b")
    return c


class TestOperation:
    def test_canonicalizes_gate_name(self):
        op = Operation("cx", ("a", "b"))
        assert op.gate == "CNOT"

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError, match="expects 2 qubits"):
            Operation("CNOT", ("a",))

    def test_rejects_duplicate_operands(self):
        with pytest.raises(ValueError, match="distinct"):
            Operation("CNOT", ("a", "a"))

    def test_rejects_missing_parameter(self):
        with pytest.raises(ValueError, match="parameter"):
            Operation("RZ", ("a",))

    def test_parametric_str(self):
        op = Operation("RZ", ("a",), param=0.5)
        assert str(op) == "RZ(0.5) a"

    def test_renamed(self):
        op = Operation("CNOT", ("a", "b")).renamed({"a": "x"})
        assert op.qubits == ("x", "b")

    def test_magic_state_property(self):
        assert Operation("T", ("a",)).consumes_magic_state
        assert not Operation("H", ("a",)).consumes_magic_state

    def test_frozen(self):
        op = Operation("H", ("a",))
        with pytest.raises(AttributeError):
            op.gate = "X"


class TestCircuitConstruction:
    def test_implicit_qubit_registration(self):
        c = Circuit()
        c.apply("CNOT", "a", "b")
        assert c.qubits == ["a", "b"]

    def test_explicit_registration_preserves_order(self):
        c = Circuit(qubits=["z", "y", "x"])
        assert c.qubits == ["z", "y", "x"]

    def test_add_qubit_idempotent(self):
        c = Circuit()
        c.add_qubit("a")
        c.add_qubit("a")
        assert c.num_qubits == 1

    def test_add_register(self):
        c = Circuit()
        names = c.add_register("q", 3)
        assert names == ["q0", "q1", "q2"]
        assert c.num_qubits == 3

    def test_add_register_rejects_empty(self):
        with pytest.raises(ValueError):
            Circuit().add_register("q", 0)

    @pytest.mark.parametrize("bad", ["", "a b", "a\tb"])
    def test_rejects_invalid_names(self, bad):
        with pytest.raises(ValueError):
            Circuit().add_qubit(bad)

    def test_len_and_iteration(self):
        c = bell_pair()
        assert len(c) == 4
        assert [op.gate for op in c] == ["PREPZ", "PREPZ", "H", "CNOT"]

    def test_getitem(self):
        assert bell_pair()[3].gate == "CNOT"


class TestCircuitInspection:
    def test_gate_counts(self):
        counts = bell_pair().gate_counts()
        assert counts["PREPZ"] == 2
        assert counts["CNOT"] == 1

    def test_t_count(self):
        c = Circuit()
        c.apply("T", "a")
        c.apply("TDG", "b")
        c.apply("H", "a")
        assert c.t_count == 2

    def test_two_qubit_count(self):
        assert bell_pair().two_qubit_count == 1

    def test_has_composites(self):
        c = Circuit()
        c.apply("TOFFOLI", "a", "b", "c")
        assert c.has_composites()
        assert not bell_pair().has_composites()

    def test_interaction_pairs_symmetric_and_weighted(self):
        c = Circuit()
        c.apply("CNOT", "a", "b")
        c.apply("CNOT", "b", "a")
        c.apply("CZ", "a", "c")
        pairs = c.interaction_pairs()
        assert pairs[("a", "b")] == 2
        assert pairs[("a", "c")] == 1

    def test_interaction_pairs_three_qubit(self):
        c = Circuit()
        c.apply("TOFFOLI", "a", "b", "c")
        pairs = c.interaction_pairs()
        assert pairs[("a", "b")] == 1
        assert pairs[("a", "c")] == 1
        assert pairs[("b", "c")] == 1


class TestCircuitTransforms:
    def test_copy_is_independent(self):
        c = bell_pair()
        d = c.copy()
        d.apply("X", "a")
        assert len(c) == 4
        assert len(d) == 5

    def test_renamed(self):
        c = bell_pair().renamed({"a": "q0", "b": "q1"})
        assert c.qubits == ["q0", "q1"]
        assert c[3].qubits == ("q0", "q1")

    def test_subcircuit(self):
        sub = bell_pair().subcircuit([2, 3])
        assert [op.gate for op in sub] == ["H", "CNOT"]

    def test_operations_returns_copy(self):
        c = bell_pair()
        ops = c.operations
        ops.clear()
        assert len(c) == 4


class TestCircuitSerialization:
    """JSON round-trip and the trusted bulk constructor."""

    def _roundtrip(self, circuit: Circuit) -> Circuit:
        import json

        payload = json.loads(json.dumps(circuit.to_jsonable()))
        return Circuit.from_jsonable(payload)

    def test_round_trip_preserves_everything(self):
        c = bell_pair()
        c.add_qubit("spare")  # registered but unused: order matters
        c.apply("RZ", "a", param=0.12345678901234567)
        c.add_fence(["a", "b"])
        c.apply("T", "b")
        c.add_fence()
        revived = self._roundtrip(c)
        assert revived.name == c.name
        assert revived.qubits == c.qubits
        assert revived.fences == c.fences
        assert [str(op) for op in revived] == [str(op) for op in c]
        assert revived.operations == c.operations

    def test_float_params_round_trip_exactly(self):
        import math

        c = Circuit("params")
        for angle in (math.pi, -1e-300, 0.1 + 0.2, 7.0):
            c.apply("RZ", "q", param=angle)
        revived = self._roundtrip(c)
        assert [op.param for op in revived] == [op.param for op in c]

    def test_empty_circuit_round_trips(self):
        c = Circuit("empty", qubits=["a", "b"])
        revived = self._roundtrip(c)
        assert revived.qubits == ["a", "b"]
        assert len(revived) == 0
        assert revived.fences == []

    def test_revived_operations_are_validated(self):
        payload = bell_pair().to_jsonable()
        payload["ops"] = "CNOT a a"
        with pytest.raises(ValueError, match="distinct"):
            Circuit.from_jsonable(payload)

    def test_from_operations_adopts_in_order(self):
        ops = [Operation("H", ("a",)), Operation("CNOT", ("a", "b"))]
        c = Circuit.from_operations(
            "built", ["a", "b"], ops, [(1, ("a",))]
        )
        assert c.operations == ops
        assert c.fences == [(1, ("a",))]
        assert c.qubits == ["a", "b"]
