"""Unit and property tests for the dependence DAG."""

import pytest
from hypothesis import given, settings

from repro.qasm import Circuit, CircuitDag

from .conftest import circuits


def chain(n: int) -> Circuit:
    """n serial gates on one qubit -> critical path n, parallelism 1."""
    c = Circuit("chain")
    for _ in range(n):
        c.apply("H", "a")
    return c


def wide(n: int) -> Circuit:
    """n independent gates -> critical path 1, parallelism n."""
    c = Circuit("wide")
    for i in range(n):
        c.apply("H", f"q{i}")
    return c


class TestDagStructure:
    def test_empty_circuit(self):
        dag = CircuitDag(Circuit())
        assert dag.num_nodes == 0
        assert dag.critical_path_length == 0
        assert dag.parallelism_factor == 0.0

    def test_chain_dependencies(self):
        dag = CircuitDag(chain(4))
        assert dag.predecessors(0) == []
        for i in range(1, 4):
            assert dag.predecessors(i) == [i - 1]

    def test_wide_has_no_edges(self):
        dag = CircuitDag(wide(5))
        for i in range(5):
            assert dag.predecessors(i) == []
            assert dag.successors(i) == []

    def test_two_qubit_gate_joins_chains(self):
        c = Circuit()
        c.apply("H", "a")   # 0
        c.apply("H", "b")   # 1
        c.apply("CNOT", "a", "b")  # 2 depends on both
        dag = CircuitDag(c)
        assert sorted(dag.predecessors(2)) == [0, 1]

    def test_no_duplicate_edges(self):
        c = Circuit()
        c.apply("CNOT", "a", "b")
        c.apply("CNOT", "a", "b")  # depends on the same op via both qubits
        dag = CircuitDag(c)
        assert dag.predecessors(1) == [0]

    def test_sources(self):
        c = Circuit()
        c.apply("H", "a")
        c.apply("H", "b")
        c.apply("CNOT", "a", "b")
        assert CircuitDag(c).sources() == [0, 1]

    def test_topological_order_is_program_order(self):
        dag = CircuitDag(chain(5))
        assert dag.topological_order() == list(range(5))


class TestScheduleMetrics:
    def test_chain_critical_path(self):
        assert CircuitDag(chain(7)).critical_path_length == 7

    def test_wide_critical_path(self):
        assert CircuitDag(wide(7)).critical_path_length == 1

    def test_parallelism_factor_extremes(self):
        assert CircuitDag(chain(10)).parallelism_factor == pytest.approx(1.0)
        assert CircuitDag(wide(10)).parallelism_factor == pytest.approx(10.0)

    def test_weighted_latency(self):
        dag = CircuitDag(chain(3), latency=lambda op: 5)
        assert dag.critical_path_length == 15

    def test_slack_zero_on_chain(self):
        dag = CircuitDag(chain(4))
        for i in range(4):
            assert dag.slack(i) == 0

    def test_slack_positive_off_critical_path(self):
        c = Circuit()
        for _ in range(3):
            c.apply("H", "a")      # 0,1,2: critical chain
        c.apply("H", "b")          # 3: floats freely
        dag = CircuitDag(c)
        assert dag.slack(3) == 2
        assert dag.critical_operations() == [0, 1, 2]

    def test_criticality_counts_descendants(self):
        dag = CircuitDag(chain(4))
        assert [dag.criticality(i) for i in range(4)] == [3, 2, 1, 0]

    def test_criticality_diamond(self):
        c = Circuit()
        c.apply("H", "a")            # 0
        c.apply("CNOT", "a", "b")    # 1 <- 0
        c.apply("CNOT", "a", "c")    # 2 <- 1
        c.apply("CNOT", "b", "c")    # 3 <- 1, 2
        dag = CircuitDag(c)
        assert dag.criticality(0) == 3
        assert dag.criticality(3) == 0

    def test_asap_levels_partition_all_ops(self):
        c = Circuit()
        c.apply("H", "a")
        c.apply("H", "b")
        c.apply("CNOT", "a", "b")
        levels = CircuitDag(c).asap_levels()
        assert levels == [[0, 1], [2]]

    def test_parallelism_profile(self):
        c = Circuit()
        c.apply("H", "a")
        c.apply("H", "b")
        c.apply("CNOT", "a", "b")
        assert CircuitDag(c).parallelism_profile() == [2, 1]


class TestDagProperties:
    @given(circuits())
    @settings(max_examples=80)
    def test_asap_not_after_alap(self, circuit):
        dag = CircuitDag(circuit)
        for i in range(dag.num_nodes):
            assert dag.asap_level(i) <= dag.alap_level(i)

    @given(circuits())
    @settings(max_examples=80)
    def test_edges_respect_levels(self, circuit):
        dag = CircuitDag(circuit)
        for i in range(dag.num_nodes):
            for j in dag.successors(i):
                assert dag.asap_level(j) >= dag.asap_level(i) + 1

    @given(circuits())
    @settings(max_examples=80)
    def test_profile_sums_to_op_count(self, circuit):
        dag = CircuitDag(circuit)
        assert sum(dag.parallelism_profile()) == dag.num_nodes

    @given(circuits())
    @settings(max_examples=80)
    def test_parallelism_bounds(self, circuit):
        dag = CircuitDag(circuit)
        if dag.num_nodes:
            assert 1.0 <= dag.parallelism_factor <= dag.num_nodes

    @given(circuits())
    @settings(max_examples=80)
    def test_critical_path_bounded_by_ops(self, circuit):
        dag = CircuitDag(circuit)
        assert dag.critical_path_length <= dag.num_nodes

    @given(circuits())
    @settings(max_examples=50)
    def test_criticality_antitone_along_edges(self, circuit):
        dag = CircuitDag(circuit)
        for i in range(dag.num_nodes):
            for j in dag.successors(i):
                assert dag.criticality(i) > dag.criticality(j)
