"""Tests for circuit fences and their effect on the dependence DAG."""

import pytest

from repro.qasm import Circuit, CircuitDag


class TestFenceBookkeeping:
    def test_fence_records_position_and_qubits(self):
        c = Circuit()
        c.apply("H", "a")
        c.add_fence(["a", "b"])
        assert c.fences == [(1, ("a", "b"))]

    def test_fence_none_covers_all_registered(self):
        c = Circuit(qubits=["a", "b"])
        c.add_fence()
        assert c.fences == [(0, ("a", "b"))]

    def test_fence_registers_new_qubits(self):
        c = Circuit()
        c.add_fence(["x"])
        assert "x" in c.qubits

    def test_fence_deduplicates(self):
        c = Circuit()
        c.add_fence(["a", "a", "b"])
        assert c.fences[0][1] == ("a", "b")

    def test_copy_preserves_fences(self):
        c = Circuit()
        c.apply("H", "a")
        c.add_fence(["a"])
        assert c.copy().fences == c.fences

    def test_renamed_remaps_fences(self):
        c = Circuit()
        c.apply("H", "a")
        c.add_fence(["a"])
        renamed = c.renamed({"a": "z"})
        assert renamed.fences == [(1, ("z",))]


class TestFenceDependencies:
    def test_fence_serializes_across_qubits(self):
        c = Circuit()
        c.apply("H", "a")          # 0
        c.add_fence(["a", "b"])
        c.apply("H", "b")          # 1: would be independent without fence
        dag = CircuitDag(c)
        assert dag.predecessors(1) == [0]
        assert dag.critical_path_length == 2

    def test_fence_ignores_uncovered_qubits(self):
        c = Circuit()
        c.apply("H", "a")          # 0
        c.add_fence(["a", "b"])
        c.apply("H", "z")          # 1: not covered by the fence
        dag = CircuitDag(c)
        assert dag.predecessors(1) == []

    def test_no_fence_no_edge(self):
        c = Circuit()
        c.apply("H", "a")
        c.apply("H", "b")
        dag = CircuitDag(c)
        assert dag.predecessors(1) == []

    def test_fence_with_no_prior_ops_is_noop(self):
        c = Circuit()
        c.add_fence(["a", "b"])
        c.apply("H", "a")
        dag = CircuitDag(c)
        assert dag.predecessors(0) == []

    def test_fence_dependency_consumed_once(self):
        c = Circuit()
        c.apply("H", "a")          # 0
        c.add_fence(["a", "b"])
        c.apply("H", "b")          # 1 <- 0 (fence)
        c.apply("H", "b")          # 2 <- 1 (data), fence already consumed
        dag = CircuitDag(c)
        assert dag.predecessors(2) == [1]

    def test_chained_fences(self):
        c = Circuit()
        c.apply("H", "a")          # 0
        c.add_fence(["a", "b"])
        c.apply("H", "b")          # 1
        c.add_fence(["b", "c"])
        c.apply("H", "c")          # 2
        dag = CircuitDag(c)
        assert dag.critical_path_length == 3

    def test_multiple_producers_before_fence(self):
        c = Circuit()
        c.apply("H", "a")          # 0
        c.apply("H", "b")          # 1
        c.add_fence(["a", "b", "c"])
        c.apply("H", "c")          # 2
        dag = CircuitDag(c)
        assert sorted(dag.predecessors(2)) == [0, 1]

    def test_back_to_back_fences_accumulate(self):
        c = Circuit()
        c.apply("H", "a")          # 0
        c.add_fence(["a", "b"])
        c.apply("H", "b")          # 1
        c.add_fence(["a", "c"])
        c.apply("H", "c")          # 2 <- 0 via second fence
        dag = CircuitDag(c)
        assert 0 in dag.predecessors(2)

    def test_fence_at_end_harmless(self):
        c = Circuit()
        c.apply("H", "a")
        c.add_fence(["a"])
        dag = CircuitDag(c)
        assert dag.num_nodes == 1
        assert dag.critical_path_length == 1
