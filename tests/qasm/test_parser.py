"""Unit tests for both QASM dialect parsers."""

import math

import pytest

from repro.qasm import QasmParseError, parse_qasm
from repro.qasm.parser import parse_flat_qasm, parse_openqasm2

FLAT = """\
# bell pair
qubit a
qubit b
PrepZ a
PrepZ b
H a
CNOT a,b
MeasZ a
"""

OPENQASM = """\
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
t q[2];
rz(pi/4) q[1];
measure q[0] -> c[0];
"""


class TestDialectDetection:
    def test_detects_flat(self):
        assert len(parse_qasm(FLAT)) == 5

    def test_detects_openqasm(self):
        c = parse_qasm(OPENQASM)
        assert c.num_qubits == 3
        assert [op.gate for op in c] == ["H", "CNOT", "T", "RZ", "MEASZ"]


class TestFlatParser:
    def test_declared_qubit_order(self):
        c = parse_flat_qasm(FLAT)
        assert c.qubits == ["a", "b"]

    def test_comments_and_blank_lines_ignored(self):
        c = parse_flat_qasm("# only comments\n\n   \n# more\n")
        assert len(c) == 0

    def test_inline_comment(self):
        c = parse_flat_qasm("H a  # hadamard\n")
        assert len(c) == 1

    def test_aliases_accepted(self):
        c = parse_flat_qasm("cx a,b\nccx a,b,c\n")
        assert [op.gate for op in c] == ["CNOT", "TOFFOLI"]

    def test_parametric_gate(self):
        c = parse_flat_qasm("RZ(0.25) a\n")
        assert c[0].param == pytest.approx(0.25)

    def test_unknown_gate_reports_line(self):
        with pytest.raises(QasmParseError, match="line 2"):
            parse_flat_qasm("H a\nWIBBLE a\n")

    def test_missing_operand_rejected(self):
        with pytest.raises(QasmParseError, match="no operands"):
            parse_flat_qasm("H\n")

    def test_arity_error_has_context(self):
        with pytest.raises(QasmParseError, match="expects 2 qubits"):
            parse_flat_qasm("CNOT a\n")

    def test_cbit_declaration_ignored(self):
        c = parse_flat_qasm("cbit c0\nqubit a\nH a\n")
        assert c.qubits == ["a"]

    def test_whitespace_in_operands(self):
        c = parse_flat_qasm("CNOT a , b\n")
        assert c[0].qubits == ("a", "b")


class TestOpenQasmParser:
    def test_register_expansion(self):
        c = parse_openqasm2("OPENQASM 2.0; qreg r[2]; h r[0];")
        assert c.qubits == ["r0", "r1"]

    def test_whole_register_broadcast(self):
        c = parse_openqasm2("OPENQASM 2.0; qreg q[3]; h q;")
        assert len(c) == 3
        assert {op.qubits[0] for op in c} == {"q0", "q1", "q2"}

    def test_broadcast_two_registers(self):
        c = parse_openqasm2(
            "OPENQASM 2.0; qreg a[2]; qreg b[2]; cx a,b;"
        )
        assert [op.qubits for op in c] == [("a0", "b0"), ("a1", "b1")]

    def test_mismatched_broadcast_rejected(self):
        with pytest.raises(QasmParseError, match="broadcast"):
            parse_openqasm2("OPENQASM 2.0; qreg a[2]; qreg b[3]; cx a,b;")

    def test_measure_arrow(self):
        c = parse_openqasm2(
            "OPENQASM 2.0; qreg q[1]; creg c[1]; measure q[0] -> c[0];"
        )
        assert c[0].gate == "MEASZ"

    def test_measure_whole_register(self):
        c = parse_openqasm2("OPENQASM 2.0; qreg q[2]; measure q;")
        assert len(c) == 2

    def test_reset_becomes_prepz(self):
        c = parse_openqasm2("OPENQASM 2.0; qreg q[1]; reset q[0];")
        assert c[0].gate == "PREPZ"

    def test_pi_expression(self):
        c = parse_openqasm2("OPENQASM 2.0; qreg q[1]; rz(pi/2) q[0];")
        assert c[0].param == pytest.approx(math.pi / 2)

    def test_multiline_statement(self):
        c = parse_openqasm2("OPENQASM 2.0;\nqreg q[2];\ncx\n  q[0],\n  q[1];")
        assert c[0].gate == "CNOT"

    def test_line_comments(self):
        c = parse_openqasm2("OPENQASM 2.0; // header\nqreg q[1]; h q[0]; // h\n")
        assert len(c) == 1

    def test_out_of_range_index(self):
        with pytest.raises(QasmParseError, match="out of range"):
            parse_openqasm2("OPENQASM 2.0; qreg q[2]; h q[5];")

    def test_unknown_register(self):
        with pytest.raises(QasmParseError, match="unknown register"):
            parse_openqasm2("OPENQASM 2.0; h q[0];")

    def test_unsupported_gate(self):
        with pytest.raises(QasmParseError, match="unsupported"):
            parse_openqasm2("OPENQASM 2.0; qreg q[1]; u3(1,2,3) q[0];")

    def test_unterminated_statement(self):
        with pytest.raises(QasmParseError, match="unterminated"):
            parse_openqasm2("OPENQASM 2.0; qreg q[1]; h q[0]")

    def test_barrier_ignored(self):
        c = parse_openqasm2("OPENQASM 2.0; qreg q[2]; barrier q; h q[0];")
        assert len(c) == 1

    def test_malicious_parameter_rejected(self):
        with pytest.raises(QasmParseError, match="parameter|malformed"):
            parse_openqasm2(
                "OPENQASM 2.0; qreg q[1]; rz(__import__('os')) q[0];"
            )
