"""Round-trip tests for QASM serialization, including property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qasm import Circuit, Operation, parse_qasm
from repro.qasm.writer import write_flat_qasm, write_openqasm2

SINGLE_QUBIT_GATES = ["H", "X", "Y", "Z", "S", "SDG", "T", "TDG", "PREPZ", "MEASZ"]
TWO_QUBIT_GATES = ["CNOT", "CZ", "SWAP"]


@st.composite
def circuits(draw) -> Circuit:
    """Random well-formed circuits over a small qubit pool."""
    num_qubits = draw(st.integers(min_value=1, max_value=6))
    qubits = [f"q{i}" for i in range(num_qubits)]
    circuit = Circuit("random", qubits=qubits)
    num_ops = draw(st.integers(min_value=0, max_value=30))
    for _ in range(num_ops):
        if num_qubits >= 2 and draw(st.booleans()):
            gate = draw(st.sampled_from(TWO_QUBIT_GATES))
            pair = draw(st.permutations(qubits))[:2]
            circuit.apply(gate, *pair)
        elif draw(st.integers(0, 9)) == 0:
            angle = draw(
                st.floats(
                    min_value=-10,
                    max_value=10,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            circuit.apply("RZ", draw(st.sampled_from(qubits)), param=angle)
        else:
            gate = draw(st.sampled_from(SINGLE_QUBIT_GATES))
            circuit.apply(gate, draw(st.sampled_from(qubits)))
    return circuit


class TestFlatRoundTrip:
    @given(circuits())
    @settings(max_examples=100)
    def test_round_trip_exact(self, circuit):
        parsed = parse_qasm(write_flat_qasm(circuit))
        assert parsed.qubits == circuit.qubits
        assert len(parsed) == len(circuit)
        for original, round_tripped in zip(circuit, parsed):
            assert round_tripped.gate == original.gate
            assert round_tripped.qubits == original.qubits
            if original.param is None:
                assert round_tripped.param is None
            else:
                assert round_tripped.param == pytest.approx(original.param)

    def test_header_comment_contains_name(self):
        c = Circuit("my_app")
        assert "# my_app" in write_flat_qasm(c)

    def test_empty_circuit(self):
        parsed = parse_qasm(write_flat_qasm(Circuit("empty")))
        assert len(parsed) == 0
        assert parsed.num_qubits == 0


class TestOpenQasmWriter:
    def test_round_trip_gate_sequence(self):
        c = Circuit("t")
        c.apply("H", "alpha")
        c.apply("CNOT", "alpha", "beta")
        c.apply("T", "beta")
        c.apply("MEASZ", "alpha")
        parsed = parse_qasm(write_openqasm2(c))
        assert [op.gate for op in parsed] == ["H", "CNOT", "T", "MEASZ"]

    def test_measx_lowered_to_h_then_measure(self):
        c = Circuit("t")
        c.apply("MEASX", "a")
        parsed = parse_qasm(write_openqasm2(c))
        assert [op.gate for op in parsed] == ["H", "MEASZ"]

    def test_prepx_lowered_to_reset_then_h(self):
        c = Circuit("t")
        c.apply("PREPX", "a")
        parsed = parse_qasm(write_openqasm2(c))
        assert [op.gate for op in parsed] == ["PREPZ", "H"]

    def test_original_names_recorded(self):
        c = Circuit("t")
        c.apply("H", "data_qubit")
        text = write_openqasm2(c)
        assert "q[0] was data_qubit" in text

    @given(circuits())
    @settings(max_examples=50)
    def test_openqasm_output_always_reparses(self, circuit):
        parsed = parse_qasm(write_openqasm2(circuit))
        # MeasX/PrepX expand, so op count may grow but never shrink.
        assert len(parsed) >= len(circuit)
