"""Round-trip tests for QASM serialization, including property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qasm import Circuit, Operation, parse_qasm
from repro.qasm.writer import write_flat_qasm, write_openqasm2

from .conftest import circuits


class TestFlatRoundTrip:
    @given(circuits())
    @settings(max_examples=100)
    def test_round_trip_exact(self, circuit):
        parsed = parse_qasm(write_flat_qasm(circuit))
        assert parsed.qubits == circuit.qubits
        assert len(parsed) == len(circuit)
        for original, round_tripped in zip(circuit, parsed):
            assert round_tripped.gate == original.gate
            assert round_tripped.qubits == original.qubits
            if original.param is None:
                assert round_tripped.param is None
            else:
                assert round_tripped.param == pytest.approx(original.param)

    def test_header_comment_contains_name(self):
        c = Circuit("my_app")
        assert "# my_app" in write_flat_qasm(c)

    def test_empty_circuit(self):
        parsed = parse_qasm(write_flat_qasm(Circuit("empty")))
        assert len(parsed) == 0
        assert parsed.num_qubits == 0


class TestOpenQasmWriter:
    def test_round_trip_gate_sequence(self):
        c = Circuit("t")
        c.apply("H", "alpha")
        c.apply("CNOT", "alpha", "beta")
        c.apply("T", "beta")
        c.apply("MEASZ", "alpha")
        parsed = parse_qasm(write_openqasm2(c))
        assert [op.gate for op in parsed] == ["H", "CNOT", "T", "MEASZ"]

    def test_measx_lowered_to_h_then_measure(self):
        c = Circuit("t")
        c.apply("MEASX", "a")
        parsed = parse_qasm(write_openqasm2(c))
        assert [op.gate for op in parsed] == ["H", "MEASZ"]

    def test_prepx_lowered_to_reset_then_h(self):
        c = Circuit("t")
        c.apply("PREPX", "a")
        parsed = parse_qasm(write_openqasm2(c))
        assert [op.gate for op in parsed] == ["PREPZ", "H"]

    def test_original_names_recorded(self):
        c = Circuit("t")
        c.apply("H", "data_qubit")
        text = write_openqasm2(c)
        assert "q[0] was data_qubit" in text

    @given(circuits())
    @settings(max_examples=50)
    def test_openqasm_output_always_reparses(self, circuit):
        parsed = parse_qasm(write_openqasm2(circuit))
        # MeasX/PrepX expand, so op count may grow but never shrink.
        assert len(parsed) >= len(circuit)
