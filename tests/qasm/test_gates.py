"""Unit tests for the gate specification table."""

import pytest

from repro.qasm.gates import (
    GATE_SPECS,
    GateKind,
    canonical_gate_name,
    gate_spec,
    is_known_gate,
)


class TestGateLookup:
    def test_all_specs_self_consistent(self):
        for name, spec in GATE_SPECS.items():
            assert spec.name == name
            assert spec.arity >= 1

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("cx", "CNOT"),
            ("CX", "CNOT"),
            ("ccx", "TOFFOLI"),
            ("ccnot", "TOFFOLI"),
            ("cswap", "FREDKIN"),
            ("tdag", "TDG"),
            ("sdag", "SDG"),
            ("measure", "MEASZ"),
            ("prep", "PREPZ"),
            ("h", "H"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert canonical_gate_name(alias) == canonical
        assert gate_spec(alias).name == canonical

    def test_unknown_gate_raises_keyerror_with_context(self):
        with pytest.raises(KeyError, match="bogus"):
            gate_spec("bogus")

    def test_is_known_gate(self):
        assert is_known_gate("cnot")
        assert is_known_gate("T")
        assert not is_known_gate("quux")


class TestGateProperties:
    def test_t_gates_consume_magic_states(self):
        assert gate_spec("T").consumes_magic_state
        assert gate_spec("TDG").consumes_magic_state

    def test_cliffords_do_not_consume_magic_states(self):
        for name in ["H", "X", "Y", "Z", "S", "SDG", "CNOT", "CZ", "SWAP"]:
            assert not gate_spec(name).consumes_magic_state, name

    @pytest.mark.parametrize(
        "name,inverse",
        [("T", "TDG"), ("TDG", "T"), ("S", "SDG"), ("SDG", "S")],
    )
    def test_explicit_inverses(self, name, inverse):
        assert gate_spec(name).inverse == inverse

    @pytest.mark.parametrize(
        "name", ["H", "X", "Y", "Z", "CNOT", "CZ", "SWAP", "TOFFOLI", "FREDKIN"]
    )
    def test_self_inverse_gates(self, name):
        assert gate_spec(name).inverse == name

    def test_composites_flagged(self):
        assert gate_spec("TOFFOLI").is_composite
        assert gate_spec("FREDKIN").is_composite
        assert gate_spec("RZ").is_composite
        assert not gate_spec("CNOT").is_composite

    def test_rz_is_parametric(self):
        assert gate_spec("RZ").parametric
        assert not gate_spec("T").parametric

    def test_arities(self):
        assert gate_spec("H").arity == 1
        assert gate_spec("CNOT").arity == 2
        assert gate_spec("TOFFOLI").arity == 3

    def test_kind_partitioning(self):
        kinds = {spec.kind for spec in GATE_SPECS.values()}
        assert kinds == set(GateKind)
