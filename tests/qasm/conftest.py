"""Shared strategies for the qasm test package.

``circuits`` is also imported by the frontend schedule tests, so it
lives here rather than in any one test module.
"""

from hypothesis import strategies as st

from repro.qasm import Circuit

SINGLE_QUBIT_GATES = ["H", "X", "Y", "Z", "S", "SDG", "T", "TDG", "PREPZ", "MEASZ"]
TWO_QUBIT_GATES = ["CNOT", "CZ", "SWAP"]


@st.composite
def circuits(draw) -> Circuit:
    """Random well-formed circuits over a small qubit pool."""
    num_qubits = draw(st.integers(min_value=1, max_value=6))
    qubits = [f"q{i}" for i in range(num_qubits)]
    circuit = Circuit("random", qubits=qubits)
    num_ops = draw(st.integers(min_value=0, max_value=30))
    for _ in range(num_ops):
        if num_qubits >= 2 and draw(st.booleans()):
            gate = draw(st.sampled_from(TWO_QUBIT_GATES))
            pair = draw(st.permutations(qubits))[:2]
            circuit.apply(gate, *pair)
        elif draw(st.integers(0, 9)) == 0:
            angle = draw(
                st.floats(
                    min_value=-10,
                    max_value=10,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            circuit.apply("RZ", draw(st.sampled_from(qubits)), param=angle)
        else:
            gate = draw(st.sampled_from(SINGLE_QUBIT_GATES))
            circuit.apply(gate, draw(st.sampled_from(qubits)))
    return circuit
