"""Integration tests: the full Figure 4 toolflow end to end."""

import pytest

from repro.core import run_toolflow
from repro.tech import INTERMEDIATE


@pytest.fixture(scope="module")
def im_result():
    return run_toolflow("im", size=6, tech=INTERMEDIATE, policy=6)


class TestToolflow:
    def test_all_stages_present(self, im_result):
        assert im_result.logical.total_operations == len(im_result.circuit)
        assert im_result.distance >= 3
        assert im_result.braid_result.operations == len(im_result.circuit)
        assert im_result.epr_result.total_pairs > 0

    def test_braid_schedule_bounded_below(self, im_result):
        assert (
            im_result.braid_result.schedule_length
            >= im_result.braid_result.critical_path
        )

    def test_estimates_consistent(self, im_result):
        planar = im_result.planar_estimate
        dd = im_result.double_defect_estimate
        assert planar.computation_size == dd.computation_size
        assert planar.distance == dd.distance
        assert dd.physical_qubits > planar.physical_qubits

    def test_preferred_code_matches_spacetime(self, im_result):
        planar = im_result.planar_estimate
        dd = im_result.double_defect_estimate
        expected = (
            planar.code_name
            if planar.spacetime <= dd.spacetime
            else dd.code_name
        )
        assert im_result.preferred_code == expected

    def test_small_instances_prefer_planar(self, im_result):
        # At instance sizes this small, planar must win (Figure 8).
        assert im_result.preferred_code == "planar"

    def test_inline_depth_variant_runs(self):
        result = run_toolflow(
            "im", size=6, tech=INTERMEDIATE, policy=1, inline_depth=0
        )
        assert result.logical.total_operations > 0

    @pytest.mark.parametrize("app,size", [("gse", 3), ("sq", 2)])
    def test_serial_apps_run(self, app, size):
        result = run_toolflow(app, size=size, tech=INTERMEDIATE, policy=6)
        assert (
            result.braid_result.schedule_to_critical_ratio
            < 2.0
        ), "serial apps should schedule near the critical path"
