"""Tests for the space-time resource estimator."""

import pytest

from repro.apps.scaling import AppScalingModel, PowerLaw
from repro.core import estimate_double_defect, estimate_planar
from repro.core.resources import CommunicationConstants
from repro.tech import CURRENT, OPTIMISTIC


@pytest.fixture
def serial_model() -> AppScalingModel:
    """Synthetic serial app: qubits ~ sqrt(ops), parallelism 1.5."""
    return AppScalingModel(
        app_name="synthetic-serial",
        qubits_vs_ops=PowerLaw(coefficient=0.5, exponent=0.5),
        depth_vs_ops=PowerLaw(coefficient=0.7, exponent=1.0),
        parallelism_factor=1.5,
        t_fraction=0.4,
        two_qubit_fraction=0.3,
        calibration_ops=(1000, 10000),
    )


class TestEstimatePlanar:
    def test_basic_fields(self, serial_model):
        est = estimate_planar(serial_model, 1e6, OPTIMISTIC)
        assert est.code_name == "planar"
        assert est.distance >= 3
        assert est.physical_qubits > est.logical_qubits
        assert est.seconds > 0
        assert est.spacetime == pytest.approx(
            est.physical_qubits * est.seconds
        )

    def test_time_grows_with_size(self, serial_model):
        small = estimate_planar(serial_model, 1e4, OPTIMISTIC)
        large = estimate_planar(serial_model, 1e10, OPTIMISTIC)
        assert large.seconds > small.seconds
        assert large.physical_qubits > small.physical_qubits

    def test_worse_tech_needs_more_qubits(self, serial_model):
        good = estimate_planar(serial_model, 1e8, OPTIMISTIC)
        bad = estimate_planar(serial_model, 1e8, CURRENT)
        assert bad.distance > good.distance
        assert bad.physical_qubits > good.physical_qubits

    def test_stall_kicks_in_beyond_lead_budget(self, serial_model):
        constants = CommunicationConstants(epr_lead_budget=10.0)
        relaxed = CommunicationConstants(epr_lead_budget=1e12)
        stalled = estimate_planar(serial_model, 1e10, OPTIMISTIC, constants)
        free = estimate_planar(serial_model, 1e10, OPTIMISTIC, relaxed)
        assert stalled.seconds > free.seconds

    def test_rejects_tiny_size(self, serial_model):
        with pytest.raises(ValueError):
            estimate_planar(serial_model, 0.5, OPTIMISTIC)


class TestEstimateDoubleDefect:
    def test_basic_fields(self, serial_model):
        est = estimate_double_defect(
            serial_model, 1e6, OPTIMISTIC, congestion=1.2
        )
        assert est.code_name == "double-defect"
        assert est.seconds > 0

    def test_congestion_multiplies_time(self, serial_model):
        calm = estimate_double_defect(serial_model, 1e8, OPTIMISTIC, 1.0)
        congested = estimate_double_defect(serial_model, 1e8, OPTIMISTIC, 3.0)
        assert congested.seconds == pytest.approx(3 * calm.seconds)
        assert congested.physical_qubits == calm.physical_qubits

    def test_rejects_congestion_below_one(self, serial_model):
        with pytest.raises(ValueError):
            estimate_double_defect(serial_model, 1e6, OPTIMISTIC, 0.5)

    def test_dd_tiles_bigger_than_planar(self, serial_model):
        planar = estimate_planar(serial_model, 1e8, OPTIMISTIC)
        dd = estimate_double_defect(serial_model, 1e8, OPTIMISTIC, 1.0)
        assert dd.physical_qubits > planar.physical_qubits

    def test_same_distance_choice(self, serial_model):
        planar = estimate_planar(serial_model, 1e8, OPTIMISTIC)
        dd = estimate_double_defect(serial_model, 1e8, OPTIMISTIC, 1.0)
        assert planar.distance == dd.distance
