"""Tests for crossover analysis and error-rate sensitivity."""

import pytest

from repro.apps.scaling import AppScalingModel, PowerLaw
from repro.core import (
    analyze_crossover,
    boundary_for_app,
    sweep_error_rates,
    sweep_sizes,
)
from repro.core.calibration import AppCalibration
from repro.tech import OPTIMISTIC


@pytest.fixture
def synthetic_calibration() -> AppCalibration:
    return AppCalibration(
        scaling=AppScalingModel(
            app_name="synthetic",
            qubits_vs_ops=PowerLaw(coefficient=0.5, exponent=0.5),
            depth_vs_ops=PowerLaw(coefficient=0.7, exponent=1.0),
            parallelism_factor=2.0,
            t_fraction=0.4,
            two_qubit_fraction=0.3,
            calibration_ops=(1000, 10000),
        ),
        braid_congestion=1.1,
        epr_overhead=0.02,
    )


class TestSweepHelpers:
    def test_sweep_sizes_log_spaced(self):
        sizes = sweep_sizes(0.0, 4.0, per_decade=1)
        assert sizes[0] == pytest.approx(1.0)
        assert sizes[-1] == pytest.approx(1e4)
        assert len(sizes) == 5

    def test_sweep_sizes_validation(self):
        with pytest.raises(ValueError):
            sweep_sizes(5.0, 1.0)

    def test_sweep_error_rates_span(self):
        rates = sweep_error_rates()
        assert rates[0] == pytest.approx(1e-8)
        assert rates[-1] == pytest.approx(1e-3)


class TestAnalyzeCrossover:
    def test_planar_wins_small_dd_wins_large(self, synthetic_calibration):
        analysis = analyze_crossover(
            "synthetic", OPTIMISTIC, calibration=synthetic_calibration
        )
        assert analysis.points[0].planar_favored
        assert not analysis.points[-1].planar_favored
        assert analysis.crossover_size is not None

    def test_crossover_is_a_boundary(self, synthetic_calibration):
        from repro.core.crossover import _ratio_point
        from repro.core.resources import DEFAULT_CONSTANTS

        analysis = analyze_crossover(
            "synthetic", OPTIMISTIC, calibration=synthetic_calibration
        )
        x = analysis.crossover_size
        below = _ratio_point(
            synthetic_calibration, x / 3, OPTIMISTIC, DEFAULT_CONSTANTS
        )
        above = _ratio_point(
            synthetic_calibration, x * 3, OPTIMISTIC, DEFAULT_CONSTANTS
        )
        assert below.planar_favored
        assert not above.planar_favored

    def test_higher_congestion_raises_crossover(self, synthetic_calibration):
        import dataclasses

        congested = dataclasses.replace(
            synthetic_calibration, braid_congestion=3.0
        )
        base = analyze_crossover(
            "synthetic", OPTIMISTIC, calibration=synthetic_calibration
        )
        worse = analyze_crossover(
            "synthetic", OPTIMISTIC, calibration=congested
        )
        assert worse.crossover_size > base.crossover_size

    def test_qubit_ratio_reflects_tile_sizes(self, synthetic_calibration):
        analysis = analyze_crossover(
            "synthetic", OPTIMISTIC, calibration=synthetic_calibration
        )
        large_points = [
            p for p in analysis.points if p.computation_size > 1e8
        ]
        for point in large_points:
            assert 2.0 < point.qubit_ratio < 5.0


class TestBoundary:
    def test_boundary_declines_with_error_rate(self, synthetic_calibration):
        line = boundary_for_app(
            "synthetic",
            error_rates=[1e-8, 1e-5, 1e-3],
            calibration=synthetic_calibration,
        )
        defined = [c for c in line.crossover_sizes if c is not None]
        assert len(defined) >= 2
        assert defined[0] >= defined[-1]

    def test_as_rows(self, synthetic_calibration):
        line = boundary_for_app(
            "synthetic",
            error_rates=[1e-6, 1e-4],
            calibration=synthetic_calibration,
        )
        rows = line.as_rows()
        assert len(rows) == 2
        assert rows[0][0] == pytest.approx(1e-6)
