"""Documentation health: links resolve, code blocks doctest clean.

The CI docs job runs this module plus ``python -m doctest`` over the
markdown files; keeping the checks in the test suite means local
``pytest`` catches a broken link or stale example before CI does.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda p: p.name,
)

LINK = re.compile(r"\[[^\]]+\]\(([^)#]+)(#[^)]*)?\)")


def _relative_links(path: Path):
    for match in LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1).strip()
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    missing = [
        target
        for target in _relative_links(doc)
        if not (doc.parent / target).exists()
    ]
    assert not missing, f"{doc.name}: broken links {missing}"


@pytest.mark.parametrize(
    "doc",
    [p for p in DOCS if ">>>" in p.read_text(encoding="utf-8")],
    ids=lambda p: p.name,
)
def test_doc_examples_doctest_clean(doc):
    results = doctest.testfile(
        str(doc), module_relative=False, verbose=False
    )
    assert results.failed == 0, f"{doc.name}: {results.failed} failures"
    assert results.attempted > 0


def test_readme_points_at_docs():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/PERFORMANCE.md" in readme
