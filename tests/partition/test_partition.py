"""Tests for the interaction graph and multilevel partitioner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (
    InteractionGraph,
    balanced_seed_bisection,
    bisect,
    coarsen_once,
    coarsen_to_size,
    interaction_graph_from_circuit,
    kl_refine,
    recursive_partition,
)
from repro.qasm import Circuit

from .conftest import random_graphs, two_cliques


class TestInteractionGraph:
    def test_edge_accumulation(self):
        g = InteractionGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "b", 2.0)
        assert g.edge_weight("a", "b") == pytest.approx(3.0)
        assert g.num_edges == 1

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self-loop"):
            InteractionGraph().add_edge("a", "a")

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            InteractionGraph().add_edge("a", "b", 0.0)
        with pytest.raises(ValueError):
            InteractionGraph().add_node("a", weight=-1.0)

    def test_degree_and_total(self):
        g = two_cliques(3)
        assert g.total_edge_weight() == pytest.approx(2.0 * 6 + 0.5)
        assert g.degree("a0") == pytest.approx(2.0 * 2 + 0.5)

    def test_cut_weight(self):
        g = two_cliques(3)
        ideal = {f"a{i}": 0 for i in range(3)} | {f"b{i}": 1 for i in range(3)}
        assert g.cut_weight(ideal) == pytest.approx(0.5)

    def test_from_circuit(self):
        c = Circuit()
        c.apply("CNOT", "x", "y")
        c.apply("CNOT", "x", "y")
        c.apply("CZ", "y", "z")
        c.apply("H", "w")
        g = interaction_graph_from_circuit(c)
        assert g.edge_weight("x", "y") == 2.0
        assert g.edge_weight("y", "z") == 1.0
        assert "w" in g  # isolated qubits kept by default

    def test_from_circuit_excluding_isolated(self):
        c = Circuit()
        c.apply("H", "w")
        c.apply("CNOT", "x", "y")
        g = interaction_graph_from_circuit(c, include_isolated=False)
        assert "w" not in g


class TestCoarsening:
    def test_halves_node_count(self):
        g = two_cliques(4)
        level = coarsen_once(g)
        assert level.graph.num_nodes == 4  # 8 nodes, perfect matching

    def test_projection_covers_all_nodes(self):
        g = two_cliques(4)
        level = coarsen_once(g)
        fine = [n for group in level.projection.values() for n in group]
        assert sorted(fine) == sorted(g.nodes)

    def test_node_weights_conserved(self):
        g = two_cliques(3)
        level = coarsen_once(g)
        total = sum(level.graph.node_weight(n) for n in level.graph.nodes)
        assert total == pytest.approx(g.num_nodes)

    def test_heavy_edges_contract_first(self):
        g = InteractionGraph()
        g.add_edge("a", "b", 10.0)  # heavy: should contract
        g.add_edge("b", "c", 1.0)
        g.add_edge("c", "d", 10.0)  # heavy: should contract
        level = coarsen_once(g)
        groups = {frozenset(group) for group in level.projection.values()}
        assert frozenset(("a", "b")) in groups
        assert frozenset(("c", "d")) in groups

    def test_coarsen_to_size(self):
        g = two_cliques(8)  # 16 nodes
        hierarchy = coarsen_to_size(g, 4)
        assert hierarchy
        assert hierarchy[-1].graph.num_nodes <= 4

    def test_coarsen_to_size_noop_when_small(self):
        assert coarsen_to_size(two_cliques(2), 32) == []

    def test_expand_round_trip(self):
        g = two_cliques(4)
        level = coarsen_once(g)
        coarse_assignment = {n: i % 2 for i, n in enumerate(level.graph.nodes)}
        fine = level.expand(coarse_assignment)
        assert sorted(fine) == sorted(g.nodes)

    @given(random_graphs())
    @settings(max_examples=40)
    def test_coarsening_preserves_total_node_weight(self, g):
        if g.num_nodes < 2:
            return
        level = coarsen_once(g)
        total = sum(level.graph.node_weight(n) for n in level.graph.nodes)
        assert total == pytest.approx(
            sum(g.node_weight(n) for n in g.nodes)
        )


class TestKlRefine:
    def test_improves_bad_split(self):
        g = two_cliques(4)
        # Worst-case split: half of each clique on each side.
        bad = {}
        for prefix in "ab":
            for i in range(4):
                bad[f"{prefix}{i}"] = i % 2
        refined = kl_refine(g, bad)
        assert g.cut_weight(refined) <= g.cut_weight(bad)
        assert g.cut_weight(refined) == pytest.approx(0.5)

    def test_never_worsens(self):
        g = two_cliques(3)
        ideal = {f"a{i}": 0 for i in range(3)} | {f"b{i}": 1 for i in range(3)}
        refined = kl_refine(g, ideal)
        assert g.cut_weight(refined) == pytest.approx(0.5)

    def test_rejects_non_binary_parts(self):
        g = two_cliques(2)
        bad = {n: i for i, n in enumerate(g.nodes)}
        with pytest.raises(ValueError, match="parts"):
            kl_refine(g, bad)

    @given(random_graphs())
    @settings(max_examples=40)
    def test_refinement_never_increases_cut(self, g):
        seed = balanced_seed_bisection(g)
        refined = kl_refine(g, seed)
        assert g.cut_weight(refined) <= g.cut_weight(seed) + 1e-9


class TestBisect:
    def test_finds_natural_cut(self):
        g = two_cliques(6)
        assignment = bisect(g)
        assert g.cut_weight(assignment) == pytest.approx(0.5)

    def test_balanced_on_cliques(self):
        g = two_cliques(6)
        assignment = bisect(g)
        sizes = g.part_weights(assignment)
        assert sizes[0] == sizes[1]

    def test_trivial_graphs(self):
        assert bisect(InteractionGraph()) == {}
        g = InteractionGraph()
        g.add_node("only")
        assert bisect(g) == {"only": 0}

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_always_two_parts_and_total_coverage(self, g):
        assignment = bisect(g)
        assert sorted(assignment) == sorted(g.nodes)
        assert set(assignment.values()) <= {0, 1}

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_rough_balance(self, g):
        if g.num_nodes < 4:
            return
        assignment = bisect(g)
        weights = g.part_weights(assignment)
        left = weights.get(0, 0.0)
        right = weights.get(1, 0.0)
        assert min(left, right) >= g.num_nodes * 0.2


class TestRecursivePartition:
    def test_four_parts(self):
        g = two_cliques(8)
        assignment = recursive_partition(g, 4)
        assert set(assignment.values()) <= {0, 1, 2, 3}

    def test_part_count_validation(self):
        g = two_cliques(2)
        with pytest.raises(ValueError, match="power of two"):
            recursive_partition(g, 3)
        with pytest.raises(ValueError):
            recursive_partition(g, 0)

    def test_single_part(self):
        g = two_cliques(2)
        assignment = recursive_partition(g, 1)
        assert set(assignment.values()) == {0}

    def test_isolated_nodes_split_evenly(self):
        g = InteractionGraph()
        for i in range(8):
            g.add_node(f"iso{i}")
        assignment = recursive_partition(g, 4)
        from collections import Counter

        counts = Counter(assignment.values())
        assert all(count == 2 for count in counts.values())
