"""Shared graph builders/strategies for the partition test package.

``two_cliques`` and ``random_graphs`` are also imported by the layout
tests, so they live here rather than in any one test module.
"""

from hypothesis import strategies as st

from repro.partition import InteractionGraph


def two_cliques(k: int = 4, bridge_weight: float = 0.5) -> InteractionGraph:
    """Two k-cliques joined by one weak edge: the canonical bisection."""
    g = InteractionGraph()
    for prefix in "ab":
        members = [f"{prefix}{i}" for i in range(k)]
        for i in range(k):
            for j in range(i + 1, k):
                g.add_edge(members[i], members[j], 2.0)
    g.add_edge("a0", "b0", bridge_weight)
    return g


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    g = InteractionGraph()
    for i in range(n):
        g.add_node(f"n{i}")
    num_edges = draw(st.integers(min_value=0, max_value=min(30, n * (n - 1) // 2)))
    edges = set()
    for _ in range(num_edges):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i != j and (min(i, j), max(i, j)) not in edges:
            edges.add((min(i, j), max(i, j)))
            g.add_edge(f"n{i}", f"n{j}", draw(st.floats(0.5, 5.0)))
    return g
