"""Tests for grid shapes and interaction-aware placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_circuit
from repro.partition import (
    GridShape,
    grid_for,
    interaction_graph_from_circuit,
    naive_layout,
    optimized_layout,
    weighted_manhattan_cost,
)

from .conftest import random_graphs, two_cliques


class TestGridShape:
    def test_capacity_and_sites(self):
        grid = GridShape(2, 3)
        assert grid.capacity == 6
        assert len(grid.sites()) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            GridShape(0, 3)

    @pytest.mark.parametrize("count", [1, 2, 5, 9, 10, 17, 64, 100])
    def test_grid_for_fits(self, count):
        grid = grid_for(count)
        assert grid.capacity >= count
        # Near-square: neither dimension more than ~2x the other + 1.
        assert max(grid.rows, grid.cols) <= 2 * min(grid.rows, grid.cols) + 1

    def test_grid_for_validation(self):
        with pytest.raises(ValueError):
            grid_for(0)


class TestNaiveLayout:
    def test_row_major(self):
        placement = naive_layout(["a", "b", "c", "d"], GridShape(2, 2))
        assert placement.position("a") == (0, 0)
        assert placement.position("b") == (0, 1)
        assert placement.position("c") == (1, 0)

    def test_capacity_enforced(self):
        with pytest.raises(ValueError, match="capacity"):
            naive_layout(["a", "b", "c"], GridShape(1, 2))

    def test_distance(self):
        placement = naive_layout(["a", "b", "c", "d"], GridShape(2, 2))
        assert placement.distance("a", "d") == 2
        assert placement.distance("a", "b") == 1

    def test_free_sites(self):
        placement = naive_layout(["a"], GridShape(1, 2))
        assert placement.free_sites() == [(0, 1)]

    def test_duplicate_site_rejected(self):
        from repro.partition.layout import Placement

        with pytest.raises(ValueError, match="twice"):
            Placement(GridShape(1, 2), {"a": (0, 0), "b": (0, 0)})

    def test_off_grid_rejected(self):
        from repro.partition.layout import Placement

        with pytest.raises(ValueError, match="off-grid"):
            Placement(GridShape(1, 1), {"a": (3, 0)})


class TestOptimizedLayout:
    def test_all_nodes_placed(self):
        g = two_cliques(4)
        placement = optimized_layout(g)
        assert sorted(placement.positions) == sorted(g.nodes)

    def test_beats_or_ties_naive_on_cliques(self):
        g = two_cliques(6)
        qubits = sorted(g.nodes, key=lambda n: (n[0] != "a", n))
        # Interleave the cliques to make the naive layout bad.
        interleaved = [q for pair in zip(qubits[:6], qubits[6:]) for q in pair]
        naive = naive_layout(interleaved)
        optimized = optimized_layout(g, naive.grid)
        assert weighted_manhattan_cost(g, optimized) <= weighted_manhattan_cost(
            g, naive
        )

    def test_cliques_stay_local(self):
        g = two_cliques(4)
        placement = optimized_layout(g)
        intra_a = max(
            placement.distance(f"a{i}", f"a{j}")
            for i in range(4)
            for j in range(i + 1, 4)
        )
        assert intra_a <= 3  # clique members stay in one quadrant-ish

    def test_capacity_enforced(self):
        g = two_cliques(4)
        with pytest.raises(ValueError, match="capacity"):
            optimized_layout(g, GridShape(2, 2))

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_valid_placement_for_any_graph(self, g):
        placement = optimized_layout(g)
        assert sorted(placement.positions) == sorted(g.nodes)
        # Placement validity (no duplicate sites) enforced by constructor.

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_never_much_worse_than_naive(self, g):
        placement = optimized_layout(g)
        naive = naive_layout(sorted(g.nodes, key=str), placement.grid)
        optimized_cost = weighted_manhattan_cost(g, placement)
        naive_cost = weighted_manhattan_cost(g, naive)
        assert optimized_cost <= naive_cost * 1.5 + 4.0

    def test_real_application_improves(self):
        circuit = build_circuit("im", 16)
        g = interaction_graph_from_circuit(circuit)
        optimized = optimized_layout(g)
        naive = naive_layout(circuit.qubits, optimized.grid)
        assert weighted_manhattan_cost(g, optimized) <= weighted_manhattan_cost(
            g, naive
        )
