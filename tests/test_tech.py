"""Unit tests for the technology model."""

import dataclasses

import pytest

from repro.tech import (
    CURRENT,
    INTERMEDIATE,
    OPTIMISTIC,
    Technology,
    technology_for_error_rate,
)


class TestTechnologyValidation:
    def test_default_is_valid(self):
        tech = Technology()
        assert 0 < tech.physical_error_rate < tech.threshold_error_rate

    def test_rejects_error_rate_above_threshold(self):
        with pytest.raises(ValueError, match="below threshold"):
            Technology(physical_error_rate=0.5, threshold_error_rate=0.01)

    def test_rejects_error_rate_equal_threshold(self):
        with pytest.raises(ValueError, match="below threshold"):
            Technology(physical_error_rate=0.01, threshold_error_rate=0.01)

    @pytest.mark.parametrize("rate", [0.0, -1e-3, 1.0, 2.0])
    def test_rejects_out_of_range_error_rate(self, rate):
        with pytest.raises(ValueError):
            Technology(physical_error_rate=rate)

    @pytest.mark.parametrize(
        "field",
        ["cycle_time_ns", "gate_time_1q_ns", "gate_time_2q_ns", "measure_time_ns"],
    )
    def test_rejects_nonpositive_latencies(self, field):
        with pytest.raises(ValueError, match=field):
            Technology(**{field: 0.0})

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CURRENT.physical_error_rate = 0.5


class TestTechnologyBehavior:
    def test_presets_span_paper_sweep(self):
        assert CURRENT.physical_error_rate == 1e-3
        assert OPTIMISTIC.physical_error_rate == 1e-8
        assert (
            OPTIMISTIC.physical_error_rate
            < INTERMEDIATE.physical_error_rate
            < CURRENT.physical_error_rate
        )

    def test_error_suppression_base(self):
        tech = Technology(physical_error_rate=1e-4, threshold_error_rate=1e-2)
        assert tech.error_suppression_base == pytest.approx(1e-2)

    def test_with_error_rate_round_trip(self):
        derived = CURRENT.with_error_rate(1e-6)
        assert derived.physical_error_rate == 1e-6
        assert derived.cycle_time_ns == CURRENT.cycle_time_ns
        assert derived.name != CURRENT.name

    def test_seconds_conversion(self):
        tech = Technology(cycle_time_ns=400.0)
        assert tech.seconds(0) == 0.0
        assert tech.seconds(2_500_000) == pytest.approx(1.0)

    def test_seconds_rejects_negative(self):
        with pytest.raises(ValueError):
            CURRENT.seconds(-1)

    def test_single_qubit_gates_10x_faster(self):
        # Figure 7 caption: 1q ops are 10x faster than 2q ops.
        assert CURRENT.gate_time_2q_ns == pytest.approx(
            10 * CURRENT.gate_time_1q_ns
        )

    def test_factory_helper(self):
        tech = technology_for_error_rate(3e-7)
        assert tech.physical_error_rate == 3e-7
        assert "3e-07" in tech.name
