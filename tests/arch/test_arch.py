"""Tests for the tiled and Multi-SIMD machine builders."""

import pytest

from repro.apps import build_circuit
from repro.arch import (
    build_multisimd_machine,
    build_tiled_machine,
    simd_schedule,
)
from repro.frontend import decompose_circuit
from repro.qasm import Circuit


@pytest.fixture(scope="module")
def im_circuit():
    return decompose_circuit(build_circuit("im", 8))


class TestTiledMachine:
    def test_grid_surrounds_data(self, im_circuit):
        machine = build_tiled_machine(im_circuit)
        assert machine.grid.capacity > im_circuit.num_qubits
        # All data tiles are interior (factories live on the ring).
        for r, c in machine.placement.positions.values():
            assert 0 < r < machine.grid.rows - 1
            assert 0 < c < machine.grid.cols - 1

    def test_factories_present_and_on_ring(self, im_circuit):
        machine = build_tiled_machine(im_circuit)
        assert len(machine.factory_routers) >= 2

    def test_factory_count_override(self, im_circuit):
        machine = build_tiled_machine(im_circuit, factories=5)
        assert 1 <= len(machine.factory_routers) <= 5

    def test_physical_qubits_scale_with_distance(self, im_circuit):
        machine = build_tiled_machine(im_circuit)
        assert machine.physical_qubits(9) > machine.physical_qubits(5)

    def test_simulate_runs(self, im_circuit):
        machine = build_tiled_machine(im_circuit)
        result = machine.simulate(6, distance=3)
        assert result.operations == len(im_circuit)
        assert result.schedule_length >= result.critical_path

    def test_naive_vs_optimized_layout_differ(self, im_circuit):
        naive = build_tiled_machine(im_circuit, optimize_layout=False)
        optimized = build_tiled_machine(im_circuit, optimize_layout=True)
        assert naive.grid.capacity == optimized.grid.capacity

    def test_single_qubit_circuit(self):
        c = Circuit(qubits=["a"])
        c.apply("H", "a")
        machine = build_tiled_machine(c)
        result = machine.simulate(1, distance=3)
        assert result.operations == 1


class TestSimdSchedule:
    def test_groups_same_gate_type(self):
        c = Circuit()
        for i in range(6):
            c.apply("H", f"q{i}")
        for i in range(6):
            c.apply("X", f"r{i}")
        schedule = simd_schedule(c, regions=2)
        # All 12 ops are independent and form 2 type groups: 1 cycle.
        assert schedule.length == 1

    def test_region_limit_binds(self):
        c = Circuit()
        # Three distinct gate types, all independent.
        c.apply("H", "a")
        c.apply("X", "b")
        c.apply("Z", "c")
        assert simd_schedule(c, regions=1).length == 3
        assert simd_schedule(c, regions=3).length == 1

    def test_respects_dependences(self):
        c = Circuit()
        c.apply("H", "a")
        c.apply("X", "a")
        schedule = simd_schedule(c, regions=4)
        assert schedule.length == 2
        schedule.validate()

    def test_validates_against_dag(self, im_circuit):
        schedule = simd_schedule(im_circuit, regions=4)
        schedule.validate()

    def test_rejects_bad_region_count(self):
        with pytest.raises(ValueError):
            simd_schedule(Circuit(), regions=0)

    def test_more_regions_never_longer(self, im_circuit):
        narrow = simd_schedule(im_circuit, regions=2)
        wide = simd_schedule(im_circuit, regions=8)
        assert wide.length <= narrow.length


class TestMultiSimdMachine:
    def test_build(self, im_circuit):
        machine = build_multisimd_machine(im_circuit, regions=4)
        assert machine.regions == 4
        assert len(machine.placement.positions) == im_circuit.num_qubits

    def test_rejects_bad_regions(self, im_circuit):
        with pytest.raises(ValueError):
            build_multisimd_machine(im_circuit, regions=0)

    def test_physical_qubits_include_epr(self, im_circuit):
        machine = build_multisimd_machine(im_circuit)
        base = machine.physical_qubits(5, peak_epr_pairs=0)
        with_epr = machine.physical_qubits(5, peak_epr_pairs=10)
        assert with_epr > base

    def test_epr_pipeline_end_to_end(self, im_circuit):
        machine = build_multisimd_machine(im_circuit, regions=4)
        schedule = machine.schedule()
        result = machine.epr_pipeline(schedule, distance=3, window=32)
        assert result.total_pairs > 0
        assert result.schedule_length >= result.ideal_length

    def test_window_tradeoff_on_real_app(self, im_circuit):
        machine = build_multisimd_machine(im_circuit, regions=4)
        schedule = machine.schedule()
        tight = machine.epr_pipeline(schedule, distance=3, window=1)
        loose = machine.epr_pipeline(schedule, distance=3, window=512)
        assert tight.stall_cycles >= loose.stall_cycles
        assert tight.peak_epr_pairs <= loose.peak_epr_pairs
