"""Correctness tests for reversible arithmetic against integer oracles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.arith import (
    add_constant,
    compare_equal_constant,
    multi_controlled_x,
    ripple_add,
    ripple_add_controlled,
    rotate_names,
    xor_register,
)
from repro.qasm import Circuit
from repro.sim import simulate_classical


def _load(init, register, value):
    for i, name in enumerate(register):
        init[name] = (value >> i) & 1


def _regs(n):
    return (
        [f"a{i}" for i in range(n)],
        [f"b{i}" for i in range(n)],
    )


class TestRippleAdd:
    @given(
        st.integers(min_value=1, max_value=6),
        st.data(),
    )
    @settings(max_examples=60)
    def test_add_matches_integers(self, n, data):
        av = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << n) - 1))
        a, b = _regs(n)
        circuit = Circuit()
        ripple_add(circuit, a, b, "carry", carry_out="cout")
        init = {}
        _load(init, a, av)
        _load(init, b, bv)
        state = simulate_classical(circuit, init)
        total = av + bv
        assert state.register_value(b) == total % (1 << n)
        assert state["cout"] == total >> n
        assert state.register_value(a) == av  # addend preserved
        assert state["carry"] == 0  # ancilla restored

    def test_rejects_mismatched_widths(self):
        with pytest.raises(ValueError):
            ripple_add(Circuit(), ["a0"], ["b0", "b1"], "c")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ripple_add(Circuit(), [], [], "c")


class TestControlledAdd:
    @given(
        st.integers(min_value=1, max_value=5),
        st.booleans(),
        st.data(),
    )
    @settings(max_examples=60)
    def test_control_gates_the_add(self, n, control_on, data):
        av = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << n) - 1))
        a, b = _regs(n)
        scratch = [f"s{i}" for i in range(n)]
        circuit = Circuit()
        ripple_add_controlled(circuit, "ctl", a, b, "carry", scratch)
        init = {"ctl": int(control_on)}
        _load(init, a, av)
        _load(init, b, bv)
        state = simulate_classical(circuit, init)
        expected = (av + bv) % (1 << n) if control_on else bv
        assert state.register_value(b) == expected
        assert all(state[q] == 0 for q in scratch)


class TestAddConstant:
    @given(
        st.integers(min_value=1, max_value=6),
        st.data(),
    )
    @settings(max_examples=60)
    def test_matches_integers(self, n, data):
        constant = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << n) - 1))
        target = [f"t{i}" for i in range(n)]
        scratch = [f"s{i}" for i in range(n)]
        circuit = Circuit()
        add_constant(circuit, constant, target, scratch, "carry")
        init = {}
        _load(init, target, bv)
        state = simulate_classical(circuit, init)
        assert state.register_value(target) == (bv + constant) % (1 << n)
        assert all(state[q] == 0 for q in scratch)


class TestMultiControlledX:
    @given(st.integers(min_value=0, max_value=5), st.data())
    @settings(max_examples=60)
    def test_fires_only_on_all_ones(self, k, data):
        controls = [f"c{i}" for i in range(k)]
        ancillas = [f"anc{i}" for i in range(max(0, k - 2))]
        pattern = data.draw(st.integers(0, max(0, (1 << k) - 1)))
        circuit = Circuit()
        multi_controlled_x(circuit, controls, "target", ancillas)
        init = {}
        _load(init, controls, pattern)
        state = simulate_classical(circuit, init)
        expected = 1 if pattern == (1 << k) - 1 else 0
        assert state["target"] == expected
        assert all(state[q] == 0 for q in ancillas)

    def test_insufficient_ancillas(self):
        with pytest.raises(ValueError, match="ancillas"):
            multi_controlled_x(Circuit(), ["a", "b", "c", "d"], "t", [])


class TestCompareEqualConstant:
    @given(st.integers(min_value=1, max_value=5), st.data())
    @settings(max_examples=60)
    def test_equality_flag(self, n, data):
        constant = data.draw(st.integers(0, (1 << n) - 1))
        value = data.draw(st.integers(0, (1 << n) - 1))
        register = [f"r{i}" for i in range(n)]
        ancillas = [f"anc{i}" for i in range(max(1, n - 2))]
        circuit = Circuit()
        compare_equal_constant(circuit, register, constant, "flag", ancillas)
        init = {}
        _load(init, register, value)
        state = simulate_classical(circuit, init)
        assert state["flag"] == int(value == constant)
        assert state.register_value(register) == value  # restored


class TestHelpers:
    def test_xor_register(self):
        circuit = Circuit()
        xor_register(circuit, ["a0", "a1"], ["b0", "b1"])
        state = simulate_classical(circuit, {"a0": 1, "b1": 1})
        assert state["b0"] == 1
        assert state["b1"] == 1

    def test_xor_register_width_mismatch(self):
        with pytest.raises(ValueError):
            xor_register(Circuit(), ["a0"], ["b0", "b1"])

    @pytest.mark.parametrize(
        "amount,expected",
        [(0, ["q0", "q1", "q2"]), (1, ["q1", "q2", "q0"]), (3, ["q0", "q1", "q2"]),
         (5, ["q2", "q0", "q1"])],
    )
    def test_rotate_names(self, amount, expected):
        assert rotate_names(["q0", "q1", "q2"], amount) == expected

    def test_rotate_empty(self):
        assert rotate_names([], 3) == []
