"""Correctness tests for the carry-lookahead adder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.cla import cla_add_inplace, cla_ancilla_count, cla_xor_sum
from repro.qasm import Circuit, CircuitDag
from repro.sim import simulate_classical


def _load(init, register, value):
    for i, name in enumerate(register):
        init[name] = (value >> i) & 1


def _setup(n):
    a = [f"a{i}" for i in range(n)]
    b = [f"b{i}" for i in range(n)]
    t = [f"t{i}" for i in range(n)]
    anc = [f"anc{i}" for i in range(cla_ancilla_count(n))]
    return a, b, t, anc


class TestClaXorSum:
    @given(st.integers(min_value=1, max_value=9), st.data())
    @settings(max_examples=80)
    def test_add_matches_integers(self, n, data):
        av = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << n) - 1))
        tv = data.draw(st.integers(0, (1 << n) - 1))
        a, b, t, anc = _setup(n)
        circuit = Circuit()
        cla_xor_sum(circuit, a, b, t, anc)
        init = {}
        _load(init, a, av)
        _load(init, b, bv)
        _load(init, t, tv)
        state = simulate_classical(circuit, init)
        assert state.register_value(t) == tv ^ ((av + bv) % (1 << n))
        assert state.register_value(a) == av
        assert state.register_value(b) == bv
        assert all(state[q] == 0 for q in anc), "ancillas must be restored"

    @given(st.integers(min_value=1, max_value=9), st.data())
    @settings(max_examples=80)
    def test_subtract_matches_integers(self, n, data):
        av = data.draw(st.integers(0, (1 << n) - 1))
        bv = data.draw(st.integers(0, (1 << n) - 1))
        a, b, t, anc = _setup(n)
        circuit = Circuit()
        cla_xor_sum(circuit, a, b, t, anc, subtract=True)
        init = {}
        _load(init, a, av)
        _load(init, b, bv)
        state = simulate_classical(circuit, init)
        assert state.register_value(t) == (av - bv) % (1 << n)
        assert all(state[q] == 0 for q in anc)

    def test_validates_widths(self):
        with pytest.raises(ValueError, match="widths"):
            cla_xor_sum(Circuit(), ["a0"], ["b0", "b1"], ["t0"], ["x"] * 10)

    def test_validates_ancilla_count(self):
        a, b, t, anc = _setup(4)
        with pytest.raises(ValueError, match="ancillas"):
            cla_xor_sum(Circuit(), a, b, t, anc[:3])

    def test_ancilla_count_validates(self):
        with pytest.raises(ValueError):
            cla_ancilla_count(0)


class TestClaInPlace:
    @given(st.integers(min_value=1, max_value=9), st.data())
    @settings(max_examples=80)
    def test_accumulate_and_zero_spare(self, n, data):
        xv = data.draw(st.integers(0, (1 << n) - 1))
        accv = data.draw(st.integers(0, (1 << n) - 1))
        x = [f"x{i}" for i in range(n)]
        acc = [f"c{i}" for i in range(n)]
        spare = [f"s{i}" for i in range(n)]
        anc = [f"anc{i}" for i in range(cla_ancilla_count(n))]
        circuit = Circuit()
        new_acc, new_spare = cla_add_inplace(circuit, x, acc, spare, anc)
        init = {}
        _load(init, x, xv)
        _load(init, acc, accv)
        state = simulate_classical(circuit, init)
        assert state.register_value(new_acc) == (xv + accv) % (1 << n)
        assert state.register_value(new_spare) == 0
        assert state.register_value(x) == xv
        assert all(state[q] == 0 for q in anc)

    def test_names_swap(self):
        x = ["x0"]
        acc = ["c0"]
        spare = ["s0"]
        anc = [f"anc{i}" for i in range(cla_ancilla_count(1))]
        new_acc, new_spare = cla_add_inplace(Circuit(), x, acc, spare, anc)
        assert new_acc == spare
        assert new_spare == acc


class TestClaDepth:
    def test_logarithmic_depth_scaling(self):
        """CLA depth grows ~log(width); ripple would grow linearly."""
        depths = {}
        for n in (4, 8, 16, 32):
            a, b, t, anc = _setup(n)
            circuit = Circuit()
            cla_xor_sum(circuit, a, b, t, anc)
            depths[n] = CircuitDag(circuit).critical_path_length
        # Doubling the width must not double the depth.
        assert depths[32] < 2 * depths[8]
        assert depths[8] <= depths[16] <= depths[32]

    def test_wide_adder_is_parallel(self):
        a, b, t, anc = _setup(32)
        circuit = Circuit()
        cla_xor_sum(circuit, a, b, t, anc)
        dag = CircuitDag(circuit)
        assert dag.parallelism_factor > 4.0
