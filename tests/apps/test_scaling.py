"""Tests for the power-law scaling models."""

import pytest

from repro.apps.scaling import AppScalingModel, PowerLaw, calibrate


class TestPowerLaw:
    def test_exact_fit(self):
        # y = 2 * x^1.5 fitted from exact samples.
        xs = [1.0, 4.0, 9.0, 16.0]
        ys = [2 * x**1.5 for x in xs]
        law = PowerLaw.fit(xs, ys)
        assert law.exponent == pytest.approx(1.5, abs=1e-9)
        assert law.coefficient == pytest.approx(2.0, rel=1e-9)
        assert law(100.0) == pytest.approx(2 * 100**1.5, rel=1e-9)

    def test_constant_fit(self):
        law = PowerLaw.fit([1, 10, 100], [5.0, 5.0, 5.0])
        assert law.exponent == pytest.approx(0.0, abs=1e-12)
        assert law(1e12) == pytest.approx(5.0)

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            PowerLaw.fit([1.0], [1.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PowerLaw.fit([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            PowerLaw.fit([1.0, 2.0], [1.0, -2.0])

    def test_rejects_nonpositive_eval(self):
        law = PowerLaw(1.0, 1.0)
        with pytest.raises(ValueError):
            law(0.0)


class TestCalibration:
    @pytest.fixture(scope="class")
    def im_model(self) -> AppScalingModel:
        return calibrate("im", sizes=(4, 8, 16))

    def test_qubits_grow_with_ops(self, im_model):
        assert im_model.logical_qubits(1e6) > im_model.logical_qubits(1e4)

    def test_depth_grows_with_ops(self, im_model):
        assert im_model.critical_path(1e6) >= im_model.critical_path(1e4)

    def test_parallelism_positive(self, im_model):
        assert im_model.parallelism_factor > 1.0

    def test_fractions_in_range(self, im_model):
        assert 0.0 < im_model.t_fraction < 1.0
        assert 0.0 < im_model.two_qubit_fraction < 1.0

    def test_t_count_linear(self, im_model):
        assert im_model.t_count(2e6) == pytest.approx(2 * im_model.t_count(1e6))

    def test_communication_ops_bounded(self, im_model):
        assert im_model.communication_ops(1e6) < 1e6

    def test_cache_round_trip(self):
        first = calibrate("sq")
        second = calibrate("sq")
        assert first is second  # cached instance

    def test_custom_sizes_not_cached(self):
        default = calibrate("sq")
        custom = calibrate("sq", sizes=(2, 3))
        assert custom is not default

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            calibrate("im", sizes=(4,))

    def test_extrapolation_is_finite(self, im_model):
        # Figure 7 sweeps to 1e24 operations.
        assert im_model.logical_qubits(1e24) > 0
        assert im_model.critical_path(1e24) > 0
