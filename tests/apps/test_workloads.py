"""Tests for the four paper workload generators (Table 2)."""

import pytest

from repro.apps import (
    APPLICATIONS,
    GseParams,
    IsingParams,
    Sha1Params,
    SqParams,
    build_circuit,
    build_gse,
    build_ising,
    build_sha1,
    build_sq,
    get_app,
    grover_iteration_count,
)
from repro.frontend import decompose_circuit, estimate_circuit, flatten
from repro.qasm import CircuitDag


class TestGse:
    def test_builds_and_validates(self):
        program = build_gse(GseParams(num_orbitals=3, precision_bits=2))
        program.validate()

    def test_qubit_count(self):
        circuit = flatten(build_gse(GseParams(num_orbitals=4, precision_bits=3)))
        assert circuit.num_qubits == 7  # 4 system + 3 phase

    def test_is_serial(self):
        circuit = build_circuit("gse", 4)
        lowered = decompose_circuit(circuit)
        estimate = estimate_circuit(lowered)
        assert estimate.parallelism_factor < 3.0

    def test_size_scales_operations(self):
        small = len(flatten(build_gse(GseParams(num_orbitals=3))))
        large = len(flatten(build_gse(GseParams(num_orbitals=6))))
        assert large > small

    def test_has_measurements(self):
        circuit = flatten(build_gse(GseParams(num_orbitals=3)))
        assert circuit.gate_counts()["MEASZ"] == 3  # one per phase bit

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GseParams(num_orbitals=1)
        with pytest.raises(ValueError):
            GseParams(precision_bits=0)


class TestSq:
    def test_builds_and_validates(self):
        build_sq(SqParams(num_bits=2)).validate()

    def test_resolved_defaults(self):
        params = SqParams(num_bits=3)
        assert params.resolved_target == 49  # (2^3 - 1)^2
        assert 1 <= params.resolved_iterations <= params.max_iterations

    def test_iteration_count_formula(self):
        assert grover_iteration_count(4) == 3  # floor(pi/4 * 4)

    def test_is_mostly_serial(self):
        estimate = estimate_circuit(
            decompose_circuit(build_circuit("sq", 3))
        )
        assert estimate.parallelism_factor < 4.0

    def test_search_register_measured(self):
        circuit = flatten(build_sq(SqParams(num_bits=3, iterations=1)))
        assert circuit.gate_counts()["MEASZ"] == 3

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SqParams(num_bits=1)
        with pytest.raises(ValueError):
            SqParams(num_bits=3, target=1 << 10)
        with pytest.raises(ValueError):
            SqParams(num_bits=3, iterations=0)

    def test_square_uncomputed(self):
        """The oracle must restore acc ancillas: total ops of oracle
        remain balanced (square and unsquare have equal lengths)."""
        program = build_sq(SqParams(num_bits=2, iterations=1))
        square = program.modules["square"]
        unsquare = program.modules["unsquare"]
        assert len(square.body) == len(unsquare.body)


class TestSha1:
    def test_builds_and_validates(self):
        build_sha1(Sha1Params(word_bits=4, rounds=4)).validate()

    def test_schedule_expansion_present(self):
        program = build_sha1(Sha1Params(word_bits=4, rounds=20))
        program.validate()
        calls = [
            s
            for s in program.modules["main"].body
            if hasattr(s, "callee") and s.callee == "schedule_word"
        ]
        assert len(calls) == 4  # rounds 16..19

    def test_round_count(self):
        program = build_sha1(Sha1Params(word_bits=4, rounds=6))
        round_calls = [
            s
            for s in program.modules["main"].body
            if hasattr(s, "callee") and s.callee.startswith("round_")
        ]
        assert len(round_calls) == 6

    def test_is_parallel_class(self):
        estimate = estimate_circuit(
            decompose_circuit(build_circuit("sha1", 6))
        )
        # Clearly separated from the serial apps (GSE ~1.2, SQ ~1.9).
        assert estimate.parallelism_factor > 3.0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            Sha1Params(word_bits=2)
        with pytest.raises(ValueError):
            Sha1Params(rounds=0)
        with pytest.raises(ValueError):
            Sha1Params(message_words=8)


class TestIsing:
    def test_builds_and_validates(self):
        build_ising(IsingParams(num_spins=4)).validate()

    def test_qubit_count(self):
        circuit = flatten(build_ising(IsingParams(num_spins=5)))
        assert circuit.num_qubits == 5

    def test_is_highly_parallel(self):
        estimate = estimate_circuit(
            decompose_circuit(build_circuit("im", 32))
        )
        assert estimate.parallelism_factor > 15.0

    def test_parallelism_scales_with_spins(self):
        small = estimate_circuit(
            decompose_circuit(build_circuit("im", 8))
        ).parallelism_factor
        large = estimate_circuit(
            decompose_circuit(build_circuit("im", 32))
        ).parallelism_factor
        assert large > 2 * small

    def test_periodic_adds_bond(self):
        open_chain = flatten(build_ising(IsingParams(num_spins=4)))
        ring = flatten(build_ising(IsingParams(num_spins=4, periodic=True)))
        assert len(ring) > len(open_chain)

    def test_inline_variants_differ(self):
        """Semi-inlined IM (opaque steps) has lower parallelism."""
        program = build_ising(IsingParams(num_spins=8, trotter_steps=3))
        semi = CircuitDag(flatten(program, inline_depth=0))
        full = CircuitDag(flatten(program))
        assert semi.parallelism_factor <= full.parallelism_factor

    def test_param_validation(self):
        with pytest.raises(ValueError):
            IsingParams(num_spins=1)
        with pytest.raises(ValueError):
            IsingParams(trotter_steps=0)


class TestRegistry:
    def test_all_four_registered(self):
        assert set(APPLICATIONS) == {"gse", "sq", "sha1", "im"}

    @pytest.mark.parametrize("name", ["gse", "sq", "sha1", "im"])
    def test_specs_complete(self, name):
        spec = APPLICATIONS[name]
        assert spec.paper_parallelism > 0
        assert spec.purpose
        assert spec.default_size > 0

    def test_serial_classification(self):
        assert APPLICATIONS["gse"].serial
        assert APPLICATIONS["sq"].serial
        assert not APPLICATIONS["sha1"].serial
        assert not APPLICATIONS["im"].serial

    @pytest.mark.parametrize(
        "alias,expected", [("IM", "im"), ("ising", "im"), ("SHA-1", "sha1"), ("sha", "sha1")]
    )
    def test_aliases(self, alias, expected):
        assert get_app(alias).name == expected

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown application"):
            get_app("quux")

    def test_circuit_names_encode_size(self):
        assert build_circuit("im", 8).name == "im[8]"
        assert (
            get_app("im").circuit(8, inline_depth=0).name == "im[8,inline=0]"
        )

    def test_parallelism_ordering_matches_table2(self):
        """The relative ordering GSE < SQ < SHA-1 < IM must hold."""
        factors = {}
        sizes = {"gse": 4, "sq": 3, "sha1": 6, "im": 32}
        for name, size in sizes.items():
            lowered = decompose_circuit(build_circuit(name, size))
            factors[name] = estimate_circuit(lowered).parallelism_factor
        assert factors["gse"] < factors["sq"] < factors["sha1"] < factors["im"]
