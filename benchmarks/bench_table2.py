"""Table 2: application summary and ideal parallelism factors.

Paper values: GSE 1.2, SQ 1.5, SHA-1 29, IM 66.  We regenerate the
table from our from-scratch workload generators.  Absolute factors
depend on instance sizes and decomposition choices; the reproduced
*ordering* and the serial (~1-2) vs parallel (>>1) class split are the
assertions.
"""

from repro.apps import APPLICATIONS, build_circuit
from repro.core import format_table2_rows
from repro.frontend import decompose_circuit, estimate_circuit

TABLE2_SIZES = {"gse": 6, "sq": 4, "sha1": 8, "im": 64}


def _measure():
    rows = []
    for name in ("gse", "sq", "sha1", "im"):
        spec = APPLICATIONS[name]
        circuit = decompose_circuit(build_circuit(name, TABLE2_SIZES[name]))
        estimate = estimate_circuit(circuit)
        rows.append(
            (
                spec.title,
                spec.purpose,
                spec.paper_parallelism,
                estimate.parallelism_factor,
            )
        )
    return rows


def test_table2_parallelism(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    measured = {name: row[3] for name, row in zip(("gse", "sq", "sha1", "im"), rows)}
    # Ordering must match the paper's.
    assert measured["gse"] < measured["sq"] < measured["sha1"] < measured["im"]
    # Class split: serial apps ~1-2, parallel apps clearly above.
    assert measured["gse"] < 3 and measured["sq"] < 4
    assert measured["sha1"] > 4 and measured["im"] > 15
    print("\n" + "=" * 64)
    print("TABLE 2 -- Applications and parallelism factors")
    print("=" * 64)
    print(format_table2_rows(rows))
