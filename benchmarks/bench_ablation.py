"""Ablation: which braid-policy ingredient buys what (Section 6.3).

The paper evaluates criticality, length, and braid type individually
(Policies 3-5) before combining them (Policy 6).  This ablation
additionally isolates the layout optimization (Policy 2 vs Policy 1)
and checks the DESIGN.md claim that interaction-aware placement reduces
weighted communication distance on every application.
"""

import pytest

from repro.apps import build_circuit
from repro.arch import build_tiled_machine
from repro.frontend import decompose_circuit
from repro.partition import (
    interaction_graph_from_circuit,
    naive_layout,
    optimized_layout,
    weighted_manhattan_cost,
)

DISTANCE = 5


@pytest.fixture(scope="module")
def im_circuit(fig6_sim_sizes):
    return decompose_circuit(build_circuit("im", fig6_sim_sizes["im"]))


def test_ablation_layout_reduces_distance(benchmark):
    def run():
        rows = []
        for app, size in (("gse", 4), ("sq", 3), ("im", 12)):
            circuit = decompose_circuit(build_circuit(app, size))
            graph = interaction_graph_from_circuit(circuit)
            opt = optimized_layout(graph)
            naive = naive_layout(circuit.qubits, opt.grid)
            rows.append(
                (
                    app,
                    weighted_manhattan_cost(graph, naive),
                    weighted_manhattan_cost(graph, opt),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nABLATION -- interaction-aware layout (weighted Manhattan cost)")
    print(f"{'app':<6} {'naive':>12} {'optimized':>12} {'reduction':>10}")
    for app, naive_cost, opt_cost in rows:
        assert opt_cost <= naive_cost, f"{app}: layout must not hurt"
        reduction = 1 - opt_cost / max(naive_cost, 1e-12)
        print(f"{app:<6} {naive_cost:>12.0f} {opt_cost:>12.0f} "
              f"{reduction * 100:>9.1f}%")


def test_ablation_interleaving_is_the_big_lever(im_circuit, benchmark):
    """Policy 1 (interleaving) vs Policy 0 captures most of the gain for
    parallel apps; remaining policies refine it."""

    def run():
        machine = build_tiled_machine(im_circuit, optimize_layout=False)
        p0 = machine.simulate(0, DISTANCE)
        p1 = machine.simulate(1, DISTANCE)
        machine_opt = build_tiled_machine(im_circuit, optimize_layout=True)
        p6 = machine_opt.simulate(6, DISTANCE)
        return p0, p1, p6

    p0, p1, p6 = benchmark.pedantic(run, rounds=1, iterations=1)
    r0 = p0.schedule_to_critical_ratio
    r1 = p1.schedule_to_critical_ratio
    r6 = p6.schedule_to_critical_ratio
    assert r1 < r0, "interleaving must improve on program order"
    assert r6 <= r1 * 1.05, "full policy must not regress interleaving"
    print("\nABLATION -- policy ingredients on IM")
    print(f"policy 0 (program order):     {r0:6.2f}x critical path")
    print(f"policy 1 (+interleave):       {r1:6.2f}x critical path")
    print(f"policy 6 (+layout/type/crit): {r6:6.2f}x critical path")


def test_ablation_factory_count(im_circuit, benchmark):
    """Distributed factories (Fig 3b) vs a single corner factory."""

    def run():
        few = build_tiled_machine(im_circuit, factories=1)
        many = build_tiled_machine(im_circuit, factories=8)
        return few.simulate(6, DISTANCE), many.simulate(6, DISTANCE)

    starved, supplied = benchmark.pedantic(run, rounds=1, iterations=1)
    assert supplied.schedule_length <= starved.schedule_length, (
        "distributing magic-state factories must not slow the schedule"
    )
    print("\nABLATION -- factory distribution on IM")
    print(f"1 factory:  schedule {starved.schedule_length} cycles")
    print(f"8 factories: schedule {supplied.schedule_length} cycles")
