"""Section 8.1: pipelined EPR distribution window-size study.

Paper claims reproduced and asserted here:

* Just-in-time windowed distribution achieves large EPR qubit savings
  (paper: up to ~24x) relative to eager whole-program distribution.
* The latency cost of a good window is small (paper: <= ~4%).
* Too-small windows starve teleports (stalls); too-large windows flood
  the network with idle EPR pairs.
"""

import pytest

from repro.apps import build_circuit
from repro.arch import build_multisimd_machine
from repro.frontend import decompose_circuit

DISTANCE = 5
WINDOWS = (1, 4, 16, 64, 256, 4096, 10**9)


def _sweep(app, size):
    circuit = decompose_circuit(build_circuit(app, size))
    machine = build_multisimd_machine(circuit, regions=4)
    schedule = machine.schedule()
    results = {}
    for window in WINDOWS:
        results[window] = machine.epr_pipeline(
            schedule, DISTANCE, window=window
        )
    return results


@pytest.fixture(scope="module")
def epr_results():
    return {app: _sweep(app, size) for app, size in
            [("sq", 3), ("im", 12)]}


def test_epr_qubit_savings(epr_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app, by_window in epr_results.items():
        eager_peak = by_window[10**9].peak_epr_pairs
        jit = by_window[16]
        savings = eager_peak / max(jit.peak_epr_pairs, 1)
        assert savings > 5.0, (
            f"{app}: JIT window should save >5x EPR qubits "
            f"(eager {eager_peak}, jit {jit.peak_epr_pairs})"
        )
        assert jit.latency_overhead < 0.04, (
            f"{app}: JIT window should cost <4% latency "
            f"(got {jit.latency_overhead:.1%})"
        )


def test_epr_latency_overhead_small_at_good_window(epr_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app, by_window in epr_results.items():
        eager = by_window[10**9].latency_overhead
        good = by_window[256].latency_overhead
        # A generous window approaches eager latency (within ~10 p.p.).
        assert good <= eager + 0.10, f"{app}: window 256 overhead {good}"


def test_epr_stalls_decrease_with_window(epr_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app, by_window in epr_results.items():
        stalls = [by_window[w].stall_cycles for w in WINDOWS]
        assert all(a >= b - 1e-9 for a, b in zip(stalls, stalls[1:])), (
            f"{app}: stalls must be non-increasing in window size"
        )


def test_epr_print_table(epr_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + "=" * 68)
    print("SECTION 8.1 -- Pipelined EPR distribution window sweep")
    print("=" * 68)
    header = (f"{'app':<5} {'window':>10} {'peak EPR pairs':>15} "
              f"{'stall cycles':>13} {'overhead %':>11}")
    print(header)
    print("-" * len(header))
    for app, by_window in epr_results.items():
        for window in WINDOWS:
            r = by_window[window]
            label = "inf" if window == 10**9 else str(window)
            print(
                f"{app:<5} {label:>10} {r.peak_epr_pairs:>15} "
                f"{r.stall_cycles:>13.0f} {r.latency_overhead * 100:>11.1f}"
            )
