"""Figure 9: crossover boundaries across physical error rates.

Paper claims reproduced and asserted here:

* Boundaries fall as the physical error rate worsens (left-to-right
  decline: faultier technology favors double-defect codes earlier).
* Parallel applications sit above serial ones (congestion hurts braids
  more, extending planar's favorable region).
* Fully-inlined IM sits at or above semi-inlined IM (more inlining ->
  more parallelism -> higher boundary).

Known deviation (see EXPERIMENTS.md): GSE's boundary lands high in our
reproduction because our GSE family is extremely qubit-lean (a handful
of logical qubits regardless of computation size), which postpones the
planar swap-distance penalty; the paper's ordering places GSE lowest.
"""

from repro.core import boundary_for_app, format_fig9, sweep_error_rates

RATES = sweep_error_rates(per_decade=1)  # 1e-8 .. 1e-3


def _trace(calibrations):
    lines = []
    for app, inline in (
        ("gse", None),
        ("sq", None),
        ("sha1", None),
        ("im", 0),
        ("im", None),
    ):
        lines.append(
            boundary_for_app(
                app,
                inline_depth=inline,
                error_rates=RATES,
                calibration=calibrations[(app, inline)],
            )
        )
    return lines


def test_fig9_boundaries(calibrations, benchmark):
    lines = benchmark.pedantic(
        _trace, args=(calibrations,), rounds=1, iterations=1
    )
    by_name = {line.app_name: line for line in lines}

    def boundary(name, idx):
        return by_name[name].crossover_sizes[idx]

    # Boundaries decline with worsening error rate where defined.
    for line in lines:
        defined = [c for c in line.crossover_sizes if c is not None]
        if len(defined) >= 2:
            assert defined[0] >= defined[-1], (
                f"{line.app_name}: boundary should fall with rising pP"
            )

    # Parallel IM above serial SQ at every rate where both are defined.
    for i in range(len(RATES)):
        sq = boundary("sq", i)
        im = boundary("im", i)
        if sq is not None and im is not None:
            assert im > sq, f"IM boundary must exceed SQ's at pP={RATES[i]:g}"

    # Inlining raises (or preserves) IM's boundary.
    for i in range(len(RATES)):
        semi = boundary("im-inline0", i)
        full = boundary("im", i)
        if semi is not None and full is not None:
            assert full >= semi * 0.5  # allow calibration noise, not inversions

    print("\n" + "=" * 72)
    print("FIGURE 9 -- Crossover boundary (1/pL) vs physical error rate")
    print("(design points below a boundary favor planar codes)")
    print("=" * 72)
    print(format_fig9(lines))
