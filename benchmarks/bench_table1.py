"""Table 1: communication-efficiency tradeoffs, measured.

Paper claim: teleportation = low space, high latency, prefetchable;
braiding = high space, low latency, not prefetchable.  We measure both
methods on a common microbenchmark (one communication across a 8x8-tile
mesh at d=9) and print the quantified table.
"""

from repro.core import format_table1
from repro.runner.report import measure_table1


def _measure():
    # One corner-to-corner communication across an 8x8-tile mesh at
    # d=9; braiding is space-hungry but distance-independent in
    # latency, teleportation the reverse (see runner.report).
    return measure_table1(distance=9, mesh_side=8)


def test_table1_shape(benchmark):
    tq, tl, bq, bl = benchmark.pedantic(_measure, rounds=1, iterations=1)
    # Paper Table 1: teleportation low space / high latency; braiding
    # high space / low latency.
    assert tq < bq, "teleportation must use fewer qubits than braiding"
    assert tl > bl, "teleportation latency must exceed braiding's"
    print("\n" + "=" * 64)
    print("TABLE 1 -- Communication tradeoffs (measured, 8x8 mesh, d=9)")
    print("=" * 64)
    print(format_table1(tq, tl, bq, bl))
    print("prefetchable: teleportation yes (EPR step), braiding no")
