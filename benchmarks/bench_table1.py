"""Table 1: communication-efficiency tradeoffs, measured.

Paper claim: teleportation = low space, high latency, prefetchable;
braiding = high space, low latency, not prefetchable.  We measure both
methods on a common microbenchmark (one communication across a 8x8-tile
mesh at d=9) and print the quantified table.
"""

from repro.core import format_table1
from repro.network import DEFAULT_TELEPORT_MODEL, BraidMesh, dor_path, path_links
from repro.qec import DOUBLE_DEFECT, PLANAR


def _measure():
    d = 9
    mesh = BraidMesh(8, 8)
    src, dst = (0, 0), (7, 7)

    # Braiding: the braid claims its whole route for ~2 cycles of
    # open/close (latency seen by the op is segment-hold-dominated but
    # distance-INDEPENDENT); space = the claimed route's channel qubits.
    braid_latency = 2.0  # open + close; length-independent (Table 1 "Low")
    route_links = len(path_links(dor_path(src, dst)))
    braid_qubits = route_links * DOUBLE_DEFECT.tile_qubits(d) // 4

    # Teleportation: latency = swap-chain distribution (high, distance-
    # dependent) unless prefetched; space = one EPR pair in flight.
    teleport_latency = DEFAULT_TELEPORT_MODEL.communication_cycles(
        (0, 0), src, dst, d, prefetched=False
    )
    teleport_qubits = 2 * PLANAR.tile_qubits(d)
    return teleport_qubits, teleport_latency, braid_qubits, braid_latency


def test_table1_shape(benchmark):
    tq, tl, bq, bl = benchmark.pedantic(_measure, rounds=1, iterations=1)
    # Paper Table 1: teleportation low space / high latency; braiding
    # high space / low latency.
    assert tq < bq, "teleportation must use fewer qubits than braiding"
    assert tl > bl, "teleportation latency must exceed braiding's"
    print("\n" + "=" * 64)
    print("TABLE 1 -- Communication tradeoffs (measured, 8x8 mesh, d=9)")
    print("=" * 64)
    print(format_table1(tq, tl, bq, bl))
    print("prefetchable: teleportation yes (EPR step), braiding no")
