"""Perf harness driver: record/compare braid-stage benchmark reports.

A thin command-line wrapper over :mod:`repro.runner.bench` (the same
engine behind ``python -m repro bench``), kept under ``benchmarks/`` so
the measurement workflow lives next to the paper's figure drivers.

Record this PR's trajectory point (repo root, ``BENCH_<n>.json``)::

    python benchmarks/perf_harness.py --grid fig6 --reference \
        --out BENCH_3.json

Refresh the committed CI baseline::

    python benchmarks/perf_harness.py --grid tiny --reference \
        --out benchmarks/baselines/bench_ci.json

Gate against a baseline (exit 1 on regression), as CI does::

    python benchmarks/perf_harness.py --grid tiny --reference \
        --baseline benchmarks/baselines/bench_ci.json

The ``--reference`` pass re-runs every braid point through the seed
simulator preserved in ``repro.network._braidsim_reference`` and fails
loudly unless results are bit-identical, so each measurement doubles as
a golden-equivalence check of the optimized core.
"""

import sys
from pathlib import Path

# Allow running from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv=None) -> int:
    from repro.runner.cli import main as cli_main

    return cli_main(["bench", *(sys.argv[1:] if argv is None else argv)])


if __name__ == "__main__":
    sys.exit(main())
