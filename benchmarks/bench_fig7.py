"""Figure 7: absolute time and qubit usage for SQ at pP = 1e-8.

Paper claims reproduced and asserted here:

* Small instances run in under one second of wall-clock time.
* Time spans many orders of magnitude across sizes 1e0..1e24.
* Qubit usage rises much more slowly than time, stepping when the code
  distance increments; modest sizes need ~1000+ physical qubits.
* Both codes track each other closely on log axes.
"""

from repro.core import estimate_double_defect, estimate_planar, format_fig7
from repro.tech import OPTIMISTIC

SIZES = [10.0**e for e in range(0, 25, 2)]


def _sweep(calibrations):
    cal = calibrations[("sq", None)]
    rows = []
    for size in SIZES:
        planar = estimate_planar(cal.scaling, size, OPTIMISTIC)
        dd = estimate_double_defect(
            cal.scaling, size, OPTIMISTIC, congestion=cal.braid_congestion
        )
        rows.append(
            (size, planar.seconds, dd.seconds,
             planar.physical_qubits, dd.physical_qubits)
        )
    return rows


def test_fig7_absolute_scaling(calibrations, benchmark):
    rows = benchmark.pedantic(
        _sweep, args=(calibrations,), rounds=1, iterations=1
    )
    times_planar = [r[1] for r in rows]
    qubits_planar = [r[3] for r in rows]

    assert times_planar[0] < 1.0, "small SQ instances run in under 1 s"
    assert times_planar[-1] / times_planar[0] > 1e12, (
        "time must span many orders of magnitude"
    )
    # Qubits grow far more slowly than time (paper: qubit axis spans
    # ~6 decades while the time axis spans ~18 over the same sizes).
    time_span = times_planar[-1] / times_planar[0]
    qubit_span = qubits_planar[-1] / qubits_planar[0]
    assert qubit_span < time_span**0.75
    # Monotone non-decreasing in size for both metrics.
    assert all(a <= b * 1.0001 for a, b in zip(times_planar, times_planar[1:]))
    assert all(a <= b * 1.0001 for a, b in zip(qubits_planar, qubits_planar[1:]))
    # Modest problem sizes need on the order of 1000+ qubits.
    mid = rows[len(rows) // 2]
    assert mid[3] > 1_000

    print("\n" + "=" * 64)
    print("FIGURE 7 -- Absolute SQ resource usage (pP = 1e-8)")
    print("=" * 64)
    print(format_fig7(rows))
