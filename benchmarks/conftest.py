"""Shared fixtures for the paper-reproduction benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
Calibrations are cached per session so figures sharing inputs do not
re-simulate.
"""

import pytest

from repro.core import calibrate_app


@pytest.fixture(scope="session")
def calibrations():
    """Calibrated (scaling + congestion) inputs for all app variants."""
    variants = [
        ("gse", None),
        ("sq", None),
        ("sha1", None),
        ("im", 0),
        ("im", None),
    ]
    return {
        (name, inline): calibrate_app(name, inline)
        for name, inline in variants
    }


@pytest.fixture(scope="session")
def fig6_sim_sizes():
    """Instance sizes for the Figure 6 braid-policy sweep: small enough
    to simulate 7 policies per app in seconds-to-minutes, large enough
    to exhibit each application's contention regime (the registry's
    per-app ``sim_size`` knobs)."""
    from repro.runner import SMALL_SIM_SIZES

    return dict(SMALL_SIM_SIZES)
