"""Figure 6: braid scheduling policies 0-6 across the four applications.

The sweep runs through :class:`repro.runner.SweepRunner`, which splits
the pipeline into cached stages: every application's frontend is
compiled exactly once for all seven policies (asserted below from the
cache statistics), and the sweep beats an equivalent per-point loop on
wall-clock.

Paper claims reproduced and asserted here:

* Parallel apps (SHA-1, IM) start far above the critical path under
  Policy 0 and improve substantially by Policy 6 (paper: ~12x down to
  ~1.7x, up to ~7x improvement).
* Serial apps (GSE, SQ) sit near the critical path for all policies.
* Mesh utilization rises with better policies (paper: up to ~22%).
"""

import time

import pytest

from repro.runner import GridSpec, StageCache, SweepRunner, fig6_grid, run_point
from repro.runner.report import render_fig6


@pytest.fixture(scope="module")
def fig6_sweep(fig6_sim_sizes):
    return SweepRunner().run(fig6_grid(fig6_sim_sizes))


@pytest.fixture(scope="module")
def fig6_results(fig6_sweep):
    results = {}
    for point in fig6_sweep.points:
        results.setdefault(point.spec.app, {})[point.spec.policy] = (
            point.braid
        )
    return results


def test_fig6_frontend_compiled_exactly_once_per_app(fig6_sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    stats = fig6_sweep.stats
    assert len(fig6_sweep.points) == 28, "4 apps x 7 policies"
    assert stats.computed("frontend") == 4, (
        f"each app's frontend must compile exactly once: {stats.as_dict()}"
    )
    assert stats.reused("frontend") >= 24
    assert stats.computed("braid_sim") == 28, "one braid sim per point"
    # The EPR pipeline does not depend on the braid policy, so it too
    # runs exactly once per app.
    assert stats.computed("simd_epr") == 4


def test_fig6_sweep_beats_per_point_loop(benchmark):
    """Shared-prefix dedup must beat an uncached per-point loop."""
    grid = GridSpec(
        apps=("sq",), sizes={"sq": 3}, policies=tuple(range(7)), distance=5
    )
    specs = grid.expand()

    # Warm process-global memos (the scaling-model fit) outside both
    # timed regions so neither side pays them.
    run_point(specs[0], StageCache())

    start = time.perf_counter()
    for spec in specs:
        run_point(spec, StageCache())
    loop_seconds = time.perf_counter() - start

    sweep = benchmark.pedantic(
        SweepRunner().run, args=(grid,), rounds=1, iterations=1
    )
    # Locally the dedup wins ~1.8x here; the loose margin keeps shared
    # CI runners from flaking on timing noise.
    assert sweep.elapsed_seconds < loop_seconds * 0.95, (
        f"sweep {sweep.elapsed_seconds:.2f}s must beat per-point loop "
        f"{loop_seconds:.2f}s"
    )


def test_fig6_serial_apps_near_critical_path(fig6_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app in ("gse", "sq"):
        for policy in range(1, 7):
            ratio = fig6_results[app][policy].schedule_to_critical_ratio
            assert ratio < 2.0, f"{app} policy {policy}: ratio {ratio}"


def test_fig6_parallel_apps_improve(fig6_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app in ("sha1", "im"):
        base = fig6_results[app][0].schedule_to_critical_ratio
        best = min(
            fig6_results[app][p].schedule_to_critical_ratio
            for p in range(1, 7)
        )
        assert base > 2.0, f"{app}: policy 0 should be contention-bound"
        assert best < base / 1.5, (
            f"{app}: best policy must improve >= 1.5x over policy 0 "
            f"(got {base:.2f} -> {best:.2f})"
        )


def test_fig6_utilization_rises(fig6_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app in ("sha1", "im"):
        u0 = fig6_results[app][0].mean_utilization
        u_best = max(
            fig6_results[app][p].mean_utilization for p in range(1, 7)
        )
        assert u_best > u0, f"{app}: utilization should rise with policies"


def test_fig6_print_table(fig6_sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + "=" * 64)
    print("FIGURE 6 -- Braid policy sweep (schedule/CP ratio, utilization)")
    print("=" * 64)
    print(render_fig6(fig6_sweep.points))
    print(f"[cache] {fig6_sweep.stats.summary()}")
