"""Figure 6: braid scheduling policies 0-6 across the four applications.

Paper claims reproduced and asserted here:

* Parallel apps (SHA-1, IM) start far above the critical path under
  Policy 0 and improve substantially by Policy 6 (paper: ~12x down to
  ~1.7x, up to ~7x improvement).
* Serial apps (GSE, SQ) sit near the critical path for all policies.
* Mesh utilization rises with better policies (paper: up to ~22%).
"""

import pytest

from repro.apps import build_circuit
from repro.arch import build_tiled_machine
from repro.core import format_fig6
from repro.frontend import decompose_circuit
from repro.network import POLICIES
from repro.qasm import CircuitDag

DISTANCE = 5


def _run_app(name, size):
    circuit = decompose_circuit(build_circuit(name, size))
    dag = CircuitDag(circuit)
    results = {}
    for number, policy in POLICIES.items():
        machine = build_tiled_machine(
            circuit, optimize_layout=policy.optimized_layout
        )
        results[number] = machine.simulate(policy, DISTANCE, dag=dag)
    return results


@pytest.fixture(scope="module")
def fig6_results(fig6_sim_sizes):
    return {
        name: _run_app(name, size) for name, size in fig6_sim_sizes.items()
    }


def test_fig6_serial_apps_near_critical_path(fig6_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app in ("gse", "sq"):
        for policy in range(1, 7):
            ratio = fig6_results[app][policy].schedule_to_critical_ratio
            assert ratio < 2.0, f"{app} policy {policy}: ratio {ratio}"


def test_fig6_parallel_apps_improve(fig6_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app in ("sha1", "im"):
        base = fig6_results[app][0].schedule_to_critical_ratio
        best = min(
            fig6_results[app][p].schedule_to_critical_ratio
            for p in range(1, 7)
        )
        assert base > 2.0, f"{app}: policy 0 should be contention-bound"
        assert best < base / 1.5, (
            f"{app}: best policy must improve >= 1.5x over policy 0 "
            f"(got {base:.2f} -> {best:.2f})"
        )


def test_fig6_utilization_rises(fig6_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app in ("sha1", "im"):
        u0 = fig6_results[app][0].mean_utilization
        u_best = max(
            fig6_results[app][p].mean_utilization for p in range(1, 7)
        )
        assert u_best > u0, f"{app}: utilization should rise with policies"


def test_fig6_print_table(fig6_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n" + "=" * 64)
    print("FIGURE 6 -- Braid policy sweep (schedule/CP ratio, utilization)")
    print("=" * 64)
    print(format_fig6(fig6_results))
