"""Figure 8: double-defect vs planar favorability crossover (pP = 1e-8).

Paper claims reproduced and asserted here:

* At small computation sizes planar codes win (smaller tiles).
* Past a crossover size double-defect codes win (braids beat swap-based
  distribution once distribution latency exceeds the prefetch budget).
* The crossover for the parallel IM occurs at a much larger size than
  for the serial SQ (braid congestion penalizes double-defect codes in
  parallel applications).
"""

from repro.core import analyze_crossover, format_fig8
from repro.tech import OPTIMISTIC


def _analyze(calibrations):
    sq = analyze_crossover(
        "sq", OPTIMISTIC, calibration=calibrations[("sq", None)]
    )
    im = analyze_crossover(
        "im", OPTIMISTIC, calibration=calibrations[("im", None)]
    )
    return sq, im


def test_fig8_crossover(calibrations, benchmark):
    sq, im = benchmark.pedantic(
        _analyze, args=(calibrations,), rounds=1, iterations=1
    )
    assert sq.points[0].planar_favored, "planar must win at small sizes"
    assert im.points[0].planar_favored
    assert sq.crossover_size is not None, "SQ must cross over in range"
    assert im.crossover_size is not None, "IM must cross over in range"
    assert im.crossover_size > 100 * sq.crossover_size, (
        "IM's crossover must occur at a much larger size than SQ's "
        f"(got SQ {sq.crossover_size:.2e}, IM {im.crossover_size:.2e})"
    )
    # Qubit ratio > 1 beyond trivial sizes (planar tiles smaller).
    for point in sq.points:
        if point.computation_size > 1e6:
            assert point.qubit_ratio > 1.0

    print("\n" + "=" * 64)
    print("FIGURE 8 -- Double-defect vs planar, normalized (pP = 1e-8)")
    print("=" * 64)
    print(format_fig8(sq))
    print()
    print(format_fig8(im))
