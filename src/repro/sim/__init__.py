"""Simulation oracles used by the test suite and workload validation."""

from .classical import ClassicalState, register_value, simulate_classical

__all__ = ["ClassicalState", "simulate_classical", "register_value"]
