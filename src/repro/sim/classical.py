"""Classical reversible-circuit simulator.

The arithmetic substrate used by the SQ and SHA-1 workloads consists of
X / CNOT / Toffoli / SWAP / Fredkin networks, which permute computational
basis states.  This simulator executes such circuits exactly on basis
states, letting the test suite verify adders and comparators against
plain integer arithmetic.  It deliberately rejects superposition-creating
gates: this is a correctness oracle for reversible logic, not a quantum
simulator.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..qasm.circuit import Circuit

__all__ = ["ClassicalState", "simulate_classical", "register_value"]

_SUPPORTED = {"X", "CNOT", "TOFFOLI", "SWAP", "FREDKIN", "PREPZ", "MEASZ"}


class ClassicalState:
    """Mutable assignment of classical bits to qubit names."""

    def __init__(self, bits: Mapping[str, int] | None = None) -> None:
        self._bits: dict[str, int] = {}
        for name, value in (bits or {}).items():
            self[name] = value

    def __getitem__(self, name: str) -> int:
        return self._bits.get(name, 0)

    def __setitem__(self, name: str, value: int) -> None:
        if value not in (0, 1):
            raise ValueError(f"bit value must be 0 or 1, got {value!r}")
        self._bits[name] = value

    def load_register(self, register: Sequence[str], value: int) -> None:
        """Load a little-endian integer into a register."""
        if value < 0 or value >= 1 << len(register):
            raise ValueError(
                f"value {value} does not fit in {len(register)} bits"
            )
        for i, name in enumerate(register):
            self[name] = (value >> i) & 1

    def register_value(self, register: Sequence[str]) -> int:
        """Read a little-endian register as an integer."""
        return sum(self[name] << i for i, name in enumerate(register))

    def as_dict(self) -> dict[str, int]:
        return dict(self._bits)


def simulate_classical(
    circuit: Circuit | Iterable,
    initial: Mapping[str, int] | ClassicalState | None = None,
) -> ClassicalState:
    """Run a reversible circuit on a basis state.

    Args:
        circuit: A circuit (or iterable of operations) containing only
            classical-reversible gates.
        initial: Starting bit assignment; unspecified qubits are 0.

    Returns:
        The final :class:`ClassicalState`.

    Raises:
        ValueError: If the circuit contains a non-classical gate.
    """
    if isinstance(initial, ClassicalState):
        state = ClassicalState(initial.as_dict())
    else:
        state = ClassicalState(initial)
    for op in circuit:
        gate = op.gate
        if gate not in _SUPPORTED:
            raise ValueError(
                f"gate {gate} is not classical-reversible; the classical "
                "simulator only handles X/CNOT/Toffoli/SWAP/Fredkin"
            )
        qs = op.qubits
        if gate == "X":
            state[qs[0]] ^= 1
        elif gate == "CNOT":
            if state[qs[0]]:
                state[qs[1]] ^= 1
        elif gate == "TOFFOLI":
            if state[qs[0]] and state[qs[1]]:
                state[qs[2]] ^= 1
        elif gate == "SWAP":
            state[qs[0]], state[qs[1]] = state[qs[1]], state[qs[0]]
        elif gate == "FREDKIN":
            if state[qs[0]]:
                state[qs[1]], state[qs[2]] = state[qs[2]], state[qs[1]]
        elif gate == "PREPZ":
            state[qs[0]] = 0
        elif gate == "MEASZ":
            pass  # measurement of a basis state is the identity
    return state


def register_value(
    circuit: Circuit,
    register: Sequence[str],
    initial: Mapping[str, int] | None = None,
) -> int:
    """Convenience: simulate and read one register."""
    return simulate_classical(circuit, initial).register_value(register)
