"""Surface code substrate: code models, distance selection, factories."""

from .codes import DOUBLE_DEFECT, PLANAR, CommunicationStyle, SurfaceCode
from .distance import (
    FOWLER_PREFACTOR,
    choose_distance,
    logical_error_rate,
    max_computation_size,
)
from .lattice_surgery import DEFAULT_LATTICE_SURGERY, LatticeSurgeryModel
from .factories import (
    DEFAULT_ANCILLA_TO_DATA_RATIO,
    EPR_FACTORY,
    MAGIC_STATE_FACTORY,
    FactoryModel,
    ancilla_region_tiles,
    factories_needed,
)

__all__ = [
    "SurfaceCode",
    "CommunicationStyle",
    "PLANAR",
    "DOUBLE_DEFECT",
    "choose_distance",
    "logical_error_rate",
    "max_computation_size",
    "FOWLER_PREFACTOR",
    "FactoryModel",
    "MAGIC_STATE_FACTORY",
    "EPR_FACTORY",
    "factories_needed",
    "ancilla_region_tiles",
    "DEFAULT_ANCILLA_TO_DATA_RATIO",
    "LatticeSurgeryModel",
    "DEFAULT_LATTICE_SURGERY",
]
