"""Planar and double-defect surface code models.

Section 2.3.1 describes the two encodings; Sections 4.4/4.5 their
microarchitectures.  The models here capture what the paper's
evaluation depends on:

* **Tile footprint** -- physical qubits per logical qubit at distance d.
  Planar tiles are smaller: a distance-d planar lattice is a
  (2d-1) x (2d-1) patch [10, 18].  A double-defect logical qubit needs
  two defects plus separation and perimeter at the same effective
  distance, a ~2.5d-pitch square region (Fowler et al. [27]), roughly
  3x the planar footprint -- "planar tiles are smaller (i.e. fewer
  qubits needed for the same code distance)" (Section 3).
* **Logical operation latencies** in error-correction cycles.
* **Communication style** -- teleportation (prefetchable, per-hop swap
  latency) vs braiding (1-cycle any-length path claim, not
  prefetchable): Table 1.
"""

from __future__ import annotations

import dataclasses
import enum
import math

from ..qasm.gates import GateKind

__all__ = ["CommunicationStyle", "SurfaceCode", "PLANAR", "DOUBLE_DEFECT"]


class CommunicationStyle(enum.Enum):
    """Table 1's two communication methods."""

    TELEPORTATION = "teleportation"
    BRAIDING = "braiding"

    @property
    def prefetchable(self) -> bool:
        """Only teleportation's EPR step can be prefetched (Table 1)."""
        return self is CommunicationStyle.TELEPORTATION


@dataclasses.dataclass(frozen=True)
class SurfaceCode:
    """One surface code variant's cost model.

    Attributes:
        name: ``"planar"`` or ``"double-defect"``.
        communication: Teleportation or braiding.
        tile_area_factor: Physical qubits per tile = factor * d^2
            (leading order; :meth:`tile_qubits` applies the exact shape).
        cycles_clifford_1q: Logical 1-qubit Clifford latency (cycles).
        cycles_clifford_2q: Logical 2-qubit latency excluding
            communication (cycles); braid stabilization costs d per
            braid segment, captured by :meth:`two_qubit_cycles`.
        cycles_measure: Logical measurement latency (cycles).
        cycles_t_overhead: Extra cycles for magic-state interaction on
            top of the 2-qubit cost.
    """

    name: str
    communication: CommunicationStyle
    tile_area_factor: float
    cycles_clifford_1q: float
    cycles_clifford_2q: float
    cycles_measure: float
    cycles_t_overhead: float

    def tile_qubits(self, distance: int) -> int:
        """Physical qubits per logical tile at the given distance."""
        if distance < 1:
            raise ValueError(f"distance must be >= 1, got {distance}")
        if self.communication is CommunicationStyle.TELEPORTATION:
            # Planar patch: d^2 data + (d^2 - 1)-ish syndrome = (2d-1)^2.
            return (2 * distance - 1) ** 2
        # Double-defect: 2.5d x 2.5d cell region, 2 physical qubits per
        # cell (data + syndrome).
        return math.ceil(self.tile_area_factor * distance**2)

    def two_qubit_cycles(self, distance: int) -> float:
        """Latency of a logical 2-qubit op excluding network contention.

        For braiding this is the Figure 5 sequence: two braid segments,
        each held d cycles for syndrome stabilization, plus open/close.
        For planar codes lattice operations are transversal but a
        logical CNOT still needs d rounds of stabilization.
        """
        if self.communication is CommunicationStyle.BRAIDING:
            return 2 * distance + 2 + self.cycles_clifford_2q
        return distance + self.cycles_clifford_2q

    def t_cycles(self, distance: int) -> float:
        """Latency of a logical T: magic-state interaction included."""
        return self.two_qubit_cycles(distance) + self.cycles_t_overhead

    def op_cycles(self, kind: GateKind, distance: int) -> float:
        """Latency in cycles for a gate class at distance d."""
        if kind is GateKind.CLIFFORD_1Q:
            return self.cycles_clifford_1q
        if kind is GateKind.CLIFFORD_2Q:
            return self.two_qubit_cycles(distance)
        if kind is GateKind.NON_CLIFFORD:
            return self.t_cycles(distance)
        if kind is GateKind.MEASUREMENT:
            return self.cycles_measure
        if kind is GateKind.PREPARATION:
            return self.cycles_clifford_1q
        raise ValueError(
            f"composite gate kind {kind} must be decomposed before costing"
        )


PLANAR = SurfaceCode(
    name="planar",
    communication=CommunicationStyle.TELEPORTATION,
    tile_area_factor=4.0,
    cycles_clifford_1q=1.0,
    cycles_clifford_2q=1.0,
    cycles_measure=1.0,
    cycles_t_overhead=2.0,
)

DOUBLE_DEFECT = SurfaceCode(
    name="double-defect",
    communication=CommunicationStyle.BRAIDING,
    tile_area_factor=12.5,
    cycles_clifford_1q=1.0,
    cycles_clifford_2q=0.0,
    cycles_measure=1.0,
    cycles_t_overhead=2.0,
)
