"""Code distance selection from error-rate requirements.

Section 5.3: the frontend's size-of-computation estimate "in conjunction
with the physical error rate (pP) ... helps determine the strength of
surface code error correction that is needed (d)."

We use the standard surface-code failure model the paper cites
(Fowler et al. [27]): the per-logical-qubit, per-round logical error
rate is approximately::

    p_L(d) = A * (p_P / p_th) ** ((d + 1) / 2)

with ``A ~ 0.03`` and threshold ``p_th ~ 1e-2``.  The minimal odd
distance whose ``p_L`` meets the target is chosen.
"""

from __future__ import annotations

import math

from ..tech import Technology

__all__ = [
    "FOWLER_PREFACTOR",
    "logical_error_rate",
    "choose_distance",
    "max_computation_size",
]

FOWLER_PREFACTOR = 0.03
MAX_DISTANCE = 2001


def logical_error_rate(
    distance: int, tech: Technology, prefactor: float = FOWLER_PREFACTOR
) -> float:
    """Logical error probability per logical operation at distance d."""
    if distance < 1:
        raise ValueError(f"distance must be >= 1, got {distance}")
    exponent = (distance + 1) / 2.0
    return prefactor * tech.error_suppression_base**exponent


def choose_distance(
    target_pl: float,
    tech: Technology,
    prefactor: float = FOWLER_PREFACTOR,
) -> int:
    """Minimal odd code distance achieving ``p_L <= target_pl``.

    Raises:
        ValueError: If the target is unachievable below
            :data:`MAX_DISTANCE` (physically: pP too close to threshold).
    """
    if not 0 < target_pl < 1:
        raise ValueError(f"target_pl must be in (0, 1), got {target_pl}")
    base = tech.error_suppression_base
    # Closed form first: A * base^((d+1)/2) <= target.
    ratio = target_pl / prefactor
    if ratio >= 1.0:
        return 3  # even the weakest practical code suffices; keep d >= 3
    needed = 2 * math.log(ratio) / math.log(base) - 1
    distance = max(3, math.ceil(needed))
    if distance % 2 == 0:
        distance += 1
    # Guard against floating-point edge cases at the boundary.
    while (
        distance <= MAX_DISTANCE
        and logical_error_rate(distance, tech, prefactor) > target_pl
    ):
        distance += 2
    if distance > MAX_DISTANCE:
        raise ValueError(
            f"cannot reach p_L={target_pl:g} with p_P="
            f"{tech.physical_error_rate:g} below distance {MAX_DISTANCE} "
            "(physical error rate too close to threshold)"
        )
    return distance


def max_computation_size(
    distance: int,
    tech: Technology,
    prefactor: float = FOWLER_PREFACTOR,
    success_target: float = 0.5,
) -> float:
    """Largest computation (logical op count) a distance supports.

    Inverse of the budget rule ``p_L = (1 - success_target) / K``.
    """
    return (1.0 - success_target) / logical_error_rate(
        distance, tech, prefactor
    )
