"""Lattice surgery cost model (paper Section 8.2, extension).

The paper discusses lattice surgery [38] as a hybrid alternative:
planar-sized patches communicating through merge/split operations on
shared boundaries.  "Crucially ... the chain of merges and splits does
not have the benefits of braids (fast movement) nor teleportation
(prefetchability)", which is why the paper's evaluation focuses on the
other two.  This module quantifies that argument: it models surgery
communication cost so the Table 1 comparison can be extended with the
third row, supporting the paper's dismissal quantitatively.

Model: interacting two patches at Manhattan distance ``h`` tiles routes
a merged region across ``h`` intermediate patches; each merge and each
split costs ``d`` rounds of syndrome measurement (boundary stabilizers
must be measured d times to be fault tolerant), and the chain advances
one tile per merge+split pair.  The chain claims its intermediate tiles
exclusively while active (like braids, it blocks crossing traffic) and
cannot be separated into a prefetchable half (unlike teleportation).
"""

from __future__ import annotations

import dataclasses

from .codes import CommunicationStyle, SurfaceCode

__all__ = ["LatticeSurgeryModel", "DEFAULT_LATTICE_SURGERY"]


@dataclasses.dataclass(frozen=True)
class LatticeSurgeryModel:
    """Merge/split communication cost model.

    Attributes:
        rounds_per_merge: Syndrome rounds per merge (units of d).
        rounds_per_split: Syndrome rounds per split (units of d).
    """

    rounds_per_merge: float = 1.0
    rounds_per_split: float = 1.0

    def __post_init__(self) -> None:
        if self.rounds_per_merge <= 0 or self.rounds_per_split <= 0:
            raise ValueError("surgery round counts must be positive")

    def communication_cycles(self, hops: int, distance: int) -> float:
        """Latency of interacting patches ``hops`` tiles apart.

        Each hop extends the merged region one patch (a merge) and
        retracts it (a split), each stabilized for d cycles.  Distance-
        *dependent*, unlike braiding; unprefetchable, unlike
        teleportation.
        """
        if hops < 0:
            raise ValueError(f"hops must be >= 0, got {hops}")
        if distance < 1:
            raise ValueError(f"distance must be >= 1, got {distance}")
        per_hop = (self.rounds_per_merge + self.rounds_per_split) * distance
        # Even adjacent patches need one merge + split.
        return max(1, hops) * per_hop

    def channel_tiles(self, hops: int) -> int:
        """Intermediate patches claimed while the chain is active."""
        if hops < 0:
            raise ValueError(f"hops must be >= 0, got {hops}")
        return max(0, hops - 1)

    def is_prefetchable(self) -> bool:
        """Merges act directly on data patches: nothing to prefetch."""
        return False

    def compare_against(
        self,
        planar: SurfaceCode,
        double_defect: SurfaceCode,
        hops: int,
        distance: int,
    ) -> dict[str, float]:
        """Latency comparison for one communication at (hops, distance).

        Returns a mapping of method name to cycles, quantifying the
        Section 8.2 argument: surgery is distance-dependent like
        neither alternative's strength.
        """
        if double_defect.communication is not CommunicationStyle.BRAIDING:
            raise ValueError("double_defect must be a braiding code")
        braid_cycles = 2.0  # open + close, any length
        teleport_cycles = 2.0  # constant, EPR prefetched
        return {
            "braiding": braid_cycles,
            "teleportation(prefetched)": teleport_cycles,
            "lattice-surgery": self.communication_cycles(hops, distance),
        }


DEFAULT_LATTICE_SURGERY = LatticeSurgeryModel()
