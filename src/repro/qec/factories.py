"""Ancilla factory models (Section 4.3).

"We use so-called 'ancilla factories' [39, 41, 74, 78] to dedicate
specialized regions of the architecture to continuously prepare and
supply ancillas. ... every magic state factory consumes 12 encoded
qubits. ... In our empirical model, we have found that a good space-time
balance is achieved with a 1:4 ancilla-to-data ratio."
"""

from __future__ import annotations

import dataclasses
import math

from .codes import SurfaceCode

__all__ = [
    "FactoryModel",
    "MAGIC_STATE_FACTORY",
    "EPR_FACTORY",
    "factories_needed",
    "ancilla_region_tiles",
]

DEFAULT_ANCILLA_TO_DATA_RATIO = 0.25
"""The paper's empirical 1:4 ancilla-to-data balance."""


@dataclasses.dataclass(frozen=True)
class FactoryModel:
    """A logical-ancilla factory.

    Attributes:
        name: Kind of ancilla produced.
        tiles: Logical tiles the factory occupies (12 for magic states
            per Jones et al. [41]).
        cycles_per_output: Production latency per ancilla, in units of
            code distance d (distillation rounds scale with d).
    """

    name: str
    tiles: int
    cycles_per_output: float

    def qubits(self, code: SurfaceCode, distance: int) -> int:
        """Physical qubit footprint at the given code/distance."""
        return self.tiles * code.tile_qubits(distance)

    def output_period_cycles(self, distance: int) -> float:
        """Cycles between consecutive ancillas from one factory."""
        return self.cycles_per_output * distance

    def throughput(self, distance: int) -> float:
        """Ancillas per cycle from one factory."""
        return 1.0 / self.output_period_cycles(distance)


MAGIC_STATE_FACTORY = FactoryModel(
    name="magic-state",
    tiles=12,
    cycles_per_output=10.0,
)

EPR_FACTORY = FactoryModel(
    name="epr",
    tiles=4,
    cycles_per_output=2.0,
)


def factories_needed(
    demand_per_cycle: float, factory: FactoryModel, distance: int
) -> int:
    """Factories required to keep ancilla supply off the critical path.

    Args:
        demand_per_cycle: Mean ancilla consumption rate (e.g. T ops per
            logical cycle for magic states).
        factory: The factory model.
        distance: Code distance (production latency scales with d).
    """
    if demand_per_cycle < 0:
        raise ValueError(f"demand must be >= 0, got {demand_per_cycle}")
    if demand_per_cycle == 0:
        return 0
    return max(1, math.ceil(demand_per_cycle / factory.throughput(distance)))


def ancilla_region_tiles(
    data_tiles: int, ratio: float = DEFAULT_ANCILLA_TO_DATA_RATIO
) -> int:
    """Tiles reserved for ancilla generation at the paper's 1:4 balance."""
    if data_tiles < 0:
        raise ValueError(f"data_tiles must be >= 0, got {data_tiles}")
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return math.ceil(data_tiles * ratio)
