"""Ising Model (IM) workload.

Table 2: "Finding ground state for ising model on n-qubit spin chain"
[6], parallelism factor ~66 -- the most parallel application.

Digitized adiabatic evolution of a transverse-field Ising chain (Barends
et al. [6]): each Trotter step applies a transverse-field layer (RX on
*every* spin -- fully parallel) and a coupling layer of ZZ interactions
applied in two rounds (even bonds, then odd bonds -- each round fully
parallel).  The annealing schedule ramps the field down and the
couplings up across steps.

The program is deliberately hierarchical -- one module per Trotter step
layer -- because the paper evaluates IM at medium and maximal inlining
(Figure 9's ``IM_Semi_Inlined`` and ``IM_Fully_Inlined``): flattening
with ``inline_depth=0`` reproduces the semi-inlined variant (opaque
per-step boundaries), and full inlining exposes the cross-layer
parallelism.
"""

from __future__ import annotations

import dataclasses

from ..frontend.program import Module, Program

__all__ = ["IsingParams", "build_ising"]


@dataclasses.dataclass(frozen=True)
class IsingParams:
    """IM instance parameters.

    Attributes:
        num_spins: Chain length n.
        trotter_steps: Number of digitized-annealing steps.
        periodic: Close the chain into a ring (adds the n-1..0 bond).
    """

    num_spins: int = 8
    trotter_steps: int = 2
    periodic: bool = False

    def __post_init__(self) -> None:
        if self.num_spins < 2:
            raise ValueError("num_spins must be >= 2")
        if self.trotter_steps < 1:
            raise ValueError("trotter_steps must be >= 1")


def _field_angle(step: int, total: int) -> float:
    """Transverse field ramps down across the anneal."""
    return 0.9 * (1.0 - (step + 0.5) / total) + 0.05


def _coupling_angle(step: int, total: int) -> float:
    """ZZ coupling ramps up across the anneal."""
    return 0.9 * ((step + 0.5) / total) + 0.05


def _bonds(params: IsingParams) -> list[tuple[int, int]]:
    bonds = [(i, i + 1) for i in range(params.num_spins - 1)]
    if params.periodic and params.num_spins > 2:
        bonds.append((params.num_spins - 1, 0))
    return bonds


def _step_module(
    program: Program, params: IsingParams, step: int
) -> Module:
    """One Trotter step: RX layer, even-bond ZZ layer, odd-bond ZZ layer."""
    n = params.num_spins
    spins = [f"z{i}" for i in range(n)]
    module = program.module(f"trotter_step_{step}", parameters=spins)
    field = _field_angle(step, params.trotter_steps)
    coupling = _coupling_angle(step, params.trotter_steps)

    # Transverse field: RX(theta) = H RZ(theta) H on every spin, parallel.
    for q in spins:
        module.apply("H", q)
        module.apply("RZ", q, param=field)
        module.apply("H", q)

    # ZZ interactions: exp(-i theta Z_i Z_j / 2) = CNOT RZ CNOT.
    bonds = _bonds(params)
    for parity in (0, 1):
        for i, j in bonds:
            if i % 2 == parity:
                module.apply("CNOT", spins[i], spins[j])
                module.apply("RZ", spins[j], param=coupling)
                module.apply("CNOT", spins[i], spins[j])
    return module


def build_ising(params: IsingParams | None = None) -> Program:
    """Build the digitized-adiabatic Ising program."""
    params = params or IsingParams()
    program = Program("main")
    steps = [
        _step_module(program, params, s) for s in range(params.trotter_steps)
    ]
    spins = [f"z{i}" for i in range(params.num_spins)]
    main = program.module("main", locals_=spins)
    # Start in the transverse-field ground state |+...+>.
    for q in spins:
        main.apply("PREPZ", q)
        main.apply("H", q)
    for step in steps:
        main.call(step.name, *spins)
    for q in spins:
        main.apply("MEASZ", q)
    return program
