"""Application registry: uniform access to the paper's four workloads.

Each entry in :data:`APPLICATIONS` maps a single scalar *size knob* to a
hierarchical program, so the toolflow, benchmarks, and scaling models can
treat workloads uniformly.  The knob follows the paper's Table 2 problem
sizes: molecule size ``m`` for GSE, operand bits ``n`` for SQ, message
word width for SHA-1, spin-chain length ``n`` for IM.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..frontend.flatten import flatten
from ..frontend.program import Program
from ..qasm.circuit import Circuit
from .gse import GseParams, build_gse
from .ising import IsingParams, build_ising
from .sha1 import Sha1Params, build_sha1
from .sq import SqParams, build_sq

__all__ = ["AppSpec", "APPLICATIONS", "SIM_SIZES", "get_app", "build_circuit"]


@dataclasses.dataclass(frozen=True)
class AppSpec:
    """One registered application.

    Attributes:
        name: Short identifier (``gse``, ``sq``, ``sha1``, ``im``).
        title: Paper display name.
        purpose: Table 2's "Purpose" column.
        paper_parallelism: Parallelism factor reported in Table 2.
        build: Size knob -> hierarchical program.
        default_size: Size used by benchmarks when none is given.
        sim_size: "Small" instance size for cycle-accurate simulation:
            large enough to exhibit the app's contention regime, small
            enough to simulate all seven braid policies in seconds.
        serial: True for the paper's "mostly-serial" class (GSE, SQ).
        scaling_build: Optional alternate builder for the *scaling*
            calibration, when the asymptotic growth regime differs from
            the instance-size knob (e.g. SHA-1 grows by Grover
            iterations at fixed width, not by word width).
    """

    name: str
    title: str
    purpose: str
    paper_parallelism: float
    build: Callable[[int], Program]
    default_size: int
    sim_size: int
    serial: bool
    scaling_build: Optional[Callable[[int], Program]] = None

    def scaling_circuit(self, size: int) -> Circuit:
        """Build a calibration instance in the asymptotic-growth regime."""
        builder = self.scaling_build or self.build
        circuit = flatten(builder(size))
        circuit.name = f"{self.name}[scaling:{size}]"
        return circuit

    def circuit(
        self, size: Optional[int] = None, inline_depth: Optional[int] = None
    ) -> Circuit:
        """Build and flatten an instance (still containing composites)."""
        chosen = self.default_size if size is None else size
        program = self.build(chosen)
        circuit = flatten(program, inline_depth=inline_depth)
        circuit.name = (
            f"{self.name}[{chosen}]"
            if inline_depth is None
            else f"{self.name}[{chosen},inline={inline_depth}]"
        )
        return circuit


APPLICATIONS: dict[str, AppSpec] = {
    spec.name: spec
    for spec in [
        AppSpec(
            name="gse",
            title="Ground State Estimation (GSE)",
            purpose="Compute ground state energy for molecule of size m",
            paper_parallelism=1.2,
            build=lambda size: build_gse(GseParams(num_orbitals=size)),
            default_size=6,
            sim_size=4,
            serial=True,
        ),
        AppSpec(
            name="sq",
            title="Square Root (SQ)",
            purpose="Find square root of an n-bit number",
            paper_parallelism=1.5,
            build=lambda size: build_sq(SqParams(num_bits=size)),
            default_size=4,
            sim_size=3,
            serial=True,
        ),
        AppSpec(
            name="sha1",
            title="SHA-1 Decryption (SHA-1)",
            purpose="SHA-1 decryption of n-bit message",
            paper_parallelism=29.0,
            build=lambda size: build_sha1(Sha1Params(word_bits=size)),
            default_size=8,
            sim_size=4,
            serial=False,
            # Asymptotically a SHA-1 attack grows by Grover iterations
            # (fixed width) and by digest/word width for larger hashes;
            # the scaling family grows both, giving qubits ~ sqrt(ops).
            scaling_build=lambda size: build_sha1(
                Sha1Params(word_bits=4 + 2 * size, grover_iterations=size)
            ),
        ),
        AppSpec(
            name="im",
            title="Ising Model (IM)",
            purpose="Finding ground state for ising model on n-qubit spin chain",
            paper_parallelism=66.0,
            # A larger Ising instance needs both more spins and a longer
            # digitized anneal (adiabatic runtime grows with n), so the
            # size knob scales Trotter steps alongside the chain length.
            build=lambda size: build_ising(
                IsingParams(num_spins=size, trotter_steps=max(2, size // 2))
            ),
            default_size=32,
            sim_size=12,
            serial=False,
        ),
    ]
}


SIM_SIZES: dict[str, int] = {
    spec.name: spec.sim_size for spec in APPLICATIONS.values()
}
"""Per-app "small" simulation sizes (each spec's ``sim_size`` knob),
shared by the calibration layer and the sweep runner."""


def get_app(name: str) -> AppSpec:
    """Look up an application by name (case-insensitive)."""
    key = name.lower().replace("-", "").replace("_", "")
    aliases = {"ising": "im", "sha": "sha1"}
    key = aliases.get(key, key)
    try:
        return APPLICATIONS[key]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; available: "
            f"{sorted(APPLICATIONS)}"
        ) from None


def build_circuit(
    name: str,
    size: Optional[int] = None,
    inline_depth: Optional[int] = None,
) -> Circuit:
    """Shorthand: build the flattened circuit for a named application."""
    return get_app(name).circuit(size, inline_depth)
