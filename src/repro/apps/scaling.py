"""Application scaling models: extrapolating beyond generatable sizes.

Figures 7--9 sweep computation sizes up to 1/pL = 1e24 logical
operations -- far beyond anything that can be generated and simulated
directly.  The paper handles this the same way: small instances are
compiled and simulated; their characteristics (qubit count vs. operation
count, parallelism factor, T fraction) are then extrapolated.

:class:`AppScalingModel` fits log-log linear models (power laws) of
``logical qubits`` and ``critical path`` against ``total operations``
over a calibration set of generated instances, and carries forward the
(size-stable) parallelism factor and gate-mix fractions.  Power laws are
the right family: circuit families here have polynomial resource scaling
in the problem size by construction.
"""

from __future__ import annotations

import dataclasses
import math
from statistics import fmean
from typing import TYPE_CHECKING, Optional, Sequence

from ..frontend.decompose import decompose_circuit
from ..frontend.estimate import LogicalEstimate, estimate_circuit
from .registry import AppSpec, get_app

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runner.cache import StageCache

__all__ = [
    "PowerLaw",
    "AppScalingModel",
    "calibrate",
    "calibration_estimate",
    "calibration_sizes",
    "fit_scaling_model",
    "CALIBRATION_SIZES",
]

CALIBRATION_SIZES: dict[str, tuple[int, ...]] = {
    "gse": (3, 4, 6, 8),
    "sq": (2, 3, 4, 5),
    "sha1": (1, 2, 3),  # Grover iterations at fixed width (scaling_build)
    "im": (4, 6, 8, 12),
}


@dataclasses.dataclass(frozen=True)
class PowerLaw:
    """``y = coefficient * x ** exponent`` fitted in log-log space."""

    coefficient: float
    exponent: float

    def __call__(self, x: float) -> float:
        if x <= 0:
            raise ValueError(f"power law defined for x > 0, got {x}")
        return self.coefficient * x**self.exponent

    @staticmethod
    def fit(xs: Sequence[float], ys: Sequence[float]) -> "PowerLaw":
        if len(xs) != len(ys) or len(xs) < 2:
            raise ValueError("need >= 2 paired samples to fit a power law")
        if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
            raise ValueError("power-law fit requires positive samples")
        # Closed-form degree-1 least squares on the logs (what a
        # polynomial fit of degree 1 computes): slope = cov/var.
        log_x = [math.log(float(x)) for x in xs]
        log_y = [math.log(float(y)) for y in ys]
        mean_x = fmean(log_x)
        mean_y = fmean(log_y)
        var = fmean([(lx - mean_x) ** 2 for lx in log_x])
        if var == 0.0:
            raise ValueError("power-law fit requires distinct x samples")
        cov = fmean(
            [
                (lx - mean_x) * (ly - mean_y)
                for lx, ly in zip(log_x, log_y)
            ]
        )
        exponent = cov / var
        intercept = mean_y - exponent * mean_x
        return PowerLaw(
            coefficient=float(math.exp(intercept)), exponent=float(exponent)
        )


@dataclasses.dataclass(frozen=True)
class AppScalingModel:
    """Extrapolated application characteristics at arbitrary size.

    Attributes:
        app_name: Registry name of the application.
        qubits_vs_ops: Logical qubit count as a power law of total ops.
        depth_vs_ops: Critical path length as a power law of total ops.
        parallelism_factor: Mean measured ideal concurrency (size-stable
            by construction of the workloads).
        t_fraction: Mean fraction of ops consuming a magic state.
        two_qubit_fraction: Mean fraction of 2-qubit ops.
        calibration_ops: Total-op counts of the calibration instances.
    """

    app_name: str
    qubits_vs_ops: PowerLaw
    depth_vs_ops: PowerLaw
    parallelism_factor: float
    t_fraction: float
    two_qubit_fraction: float
    calibration_ops: tuple[int, ...]

    def logical_qubits(self, total_operations: float) -> int:
        """Extrapolated logical data-qubit count for a K-op computation."""
        return max(2, round(self.qubits_vs_ops(total_operations)))

    def critical_path(self, total_operations: float) -> float:
        """Extrapolated dependence-limited depth (logical cycles)."""
        return max(1.0, self.depth_vs_ops(total_operations))

    def t_count(self, total_operations: float) -> float:
        return self.t_fraction * total_operations

    def communication_ops(self, total_operations: float) -> float:
        """Operations requiring network service (2q gates + T states)."""
        return (self.two_qubit_fraction + self.t_fraction) * total_operations


_MODEL_CACHE: dict[str, AppScalingModel] = {}


def calibration_sizes(app: str | AppSpec) -> tuple[int, ...]:
    """The default calibration size knobs for an application."""
    spec = get_app(app) if isinstance(app, str) else app
    return CALIBRATION_SIZES[spec.name]


def calibration_estimate(app: str | AppSpec, size: int) -> LogicalEstimate:
    """Compile and estimate one calibration instance.

    Builds the app's *scaling-regime* circuit (``scaling_build`` when the
    asymptotic family differs from the size knob), lowers it to
    Clifford+T, and summarizes it.  This is the expensive half of a
    calibration, used by the uncached :func:`calibrate` path; the
    cached path (:func:`repro.runner.stages.compute_scaling`) instead
    routes the lowering through the ``lowered`` stage — which persists
    the circuit itself to disk — and estimates from that.
    """
    spec = get_app(app) if isinstance(app, str) else app
    lowered = decompose_circuit(spec.scaling_circuit(size))
    return estimate_circuit(lowered)


def fit_scaling_model(
    app_name: str, estimates: Sequence[LogicalEstimate]
) -> AppScalingModel:
    """Fit the power-law model from per-size calibration estimates."""
    if len(estimates) < 2:
        raise ValueError("need at least two calibration sizes")
    ops = [e.total_operations for e in estimates]
    return AppScalingModel(
        app_name=app_name,
        qubits_vs_ops=PowerLaw.fit(ops, [e.num_qubits for e in estimates]),
        depth_vs_ops=PowerLaw.fit(ops, [e.critical_path for e in estimates]),
        parallelism_factor=fmean(
            [e.parallelism_factor for e in estimates]
        ),
        t_fraction=fmean([e.t_fraction for e in estimates]),
        two_qubit_fraction=fmean(
            [e.two_qubit_count / e.total_operations for e in estimates]
        ),
        calibration_ops=tuple(ops),
    )


def calibrate(
    app: str | AppSpec,
    sizes: Optional[Sequence[int]] = None,
    use_cache: bool = True,
    cache: Optional["StageCache"] = None,
) -> AppScalingModel:
    """Fit an :class:`AppScalingModel` from generated instances.

    Args:
        app: Application name or spec.
        sizes: Calibration size knobs; defaults to
            :data:`CALIBRATION_SIZES` for the app.
        use_cache: Reuse a previously fitted model for the default sizes.
        cache: Optional :class:`~repro.runner.cache.StageCache`; when
            given, the per-size compiles and the fit run through the
            ``scaling_calib``/``scaling`` toolflow stages (shared and
            persisted with any sweep using the same cache).
    """
    spec = get_app(app) if isinstance(app, str) else app
    if cache is not None:
        from ..runner.stages import compute_scaling

        return compute_scaling(cache, spec.name, sizes)
    chosen = tuple(sizes) if sizes is not None else CALIBRATION_SIZES[spec.name]
    cache_key = spec.name
    if use_cache and sizes is None and cache_key in _MODEL_CACHE:
        return _MODEL_CACHE[cache_key]
    if len(chosen) < 2:
        raise ValueError("need at least two calibration sizes")

    model = fit_scaling_model(
        spec.name, [calibration_estimate(spec, size) for size in chosen]
    )
    if use_cache and sizes is None:
        _MODEL_CACHE[cache_key] = model
    return model
