"""Reversible arithmetic building blocks.

The SQ and SHA-1 workloads are built from classical reversible
arithmetic: ripple-carry addition (Cuccaro et al.'s CDKM adder),
constant addition, comparison, and controlled variants.  All builders
emit gates into any object exposing ``apply(gate, *qubits)`` (both
:class:`~repro.qasm.Circuit` and :class:`~repro.frontend.Module`
qualify), so workloads can assemble them into flat circuits or
hierarchical programs.

Registers are little-endian: ``reg[0]`` is the least significant bit.
"""

from __future__ import annotations

from typing import Protocol, Sequence

__all__ = [
    "GateSink",
    "maj",
    "uma",
    "ripple_add",
    "ripple_add_controlled",
    "add_constant",
    "compare_equal_constant",
    "multi_controlled_x",
    "xor_register",
    "rotate_names",
]


class GateSink(Protocol):
    """Anything that accepts gate applications."""

    def apply(self, gate: str, *qubits: str, param: float | None = None) -> None:
        ...


def maj(sink: GateSink, c: str, b: str, a: str) -> None:
    """Cuccaro MAJ: (c, b, a) -> (c^a, b^a, MAJ(a, b, c))."""
    sink.apply("CNOT", a, b)
    sink.apply("CNOT", a, c)
    sink.apply("TOFFOLI", c, b, a)


def uma(sink: GateSink, c: str, b: str, a: str) -> None:
    """Cuccaro UMA (2-CNOT variant): inverse of MAJ plus sum restore."""
    sink.apply("TOFFOLI", c, b, a)
    sink.apply("CNOT", a, c)
    sink.apply("CNOT", c, b)


def ripple_add(
    sink: GateSink,
    a: Sequence[str],
    b: Sequence[str],
    carry_in: str,
    carry_out: str | None = None,
) -> None:
    """CDKM ripple-carry adder: ``b += a`` (mod 2^n, or with carry out).

    Args:
        sink: Gate sink.
        a: Addend register (unchanged on completion).
        b: Accumulator register (receives the sum).
        carry_in: Ancilla in |0> used as the incoming carry (restored).
        carry_out: Optional qubit receiving the final carry.
    """
    if len(a) != len(b):
        raise ValueError(f"register sizes differ: {len(a)} vs {len(b)}")
    if not a:
        raise ValueError("registers must be non-empty")
    n = len(a)
    carries = [carry_in] + list(a[:-1])
    for i in range(n):
        maj(sink, carries[i], b[i], a[i])
    if carry_out is not None:
        sink.apply("CNOT", a[-1], carry_out)
    for i in range(n - 1, -1, -1):
        uma(sink, carries[i], b[i], a[i])


def ripple_add_controlled(
    sink: GateSink,
    control: str,
    a: Sequence[str],
    b: Sequence[str],
    carry_in: str,
    scratch: Sequence[str],
) -> None:
    """Controlled ``b += a`` via a conditionally-loaded scratch addend.

    ``scratch`` (|0...0>, width of ``a``) receives ``control AND a``
    through a Toffoli fan, is added into ``b`` unconditionally, then is
    uncomputed.  Adding zero is the identity, so the whole block is a
    controlled adder.  Cost over :func:`ripple_add`: 2n Toffolis.
    """
    if len(a) != len(b):
        raise ValueError(f"register sizes differ: {len(a)} vs {len(b)}")
    if len(scratch) != len(a):
        raise ValueError("scratch register must match addend width")
    for a_bit, s_bit in zip(a, scratch):
        sink.apply("TOFFOLI", control, a_bit, s_bit)
    ripple_add(sink, scratch, b, carry_in)
    for a_bit, s_bit in zip(a, scratch):
        sink.apply("TOFFOLI", control, a_bit, s_bit)


def add_constant(
    sink: GateSink,
    constant: int,
    target: Sequence[str],
    scratch: Sequence[str],
    carry: str,
) -> None:
    """``target += constant`` using a scratch register loaded with X gates.

    The scratch register must be in |0...0>; it is restored afterwards.
    """
    n = len(target)
    if len(scratch) != n:
        raise ValueError("scratch register must match target width")
    constant %= 1 << n
    bits = [(constant >> i) & 1 for i in range(n)]
    for i, bit in enumerate(bits):
        if bit:
            sink.apply("X", scratch[i])
    ripple_add(sink, scratch, target, carry)
    for i, bit in enumerate(bits):
        if bit:
            sink.apply("X", scratch[i])


def multi_controlled_x(
    sink: GateSink,
    controls: Sequence[str],
    target: str,
    ancillas: Sequence[str],
) -> None:
    """X on ``target`` conditioned on all ``controls`` (Toffoli ladder).

    Needs ``len(controls) - 2`` ancillas (in |0>, restored).  Degenerate
    cases (0, 1, 2 controls) emit X / CNOT / Toffoli directly.
    """
    k = len(controls)
    if k == 0:
        sink.apply("X", target)
        return
    if k == 1:
        sink.apply("CNOT", controls[0], target)
        return
    if k == 2:
        sink.apply("TOFFOLI", controls[0], controls[1], target)
        return
    needed = k - 2
    if len(ancillas) < needed:
        raise ValueError(
            f"{k}-controlled X needs {needed} ancillas, got {len(ancillas)}"
        )
    work = list(ancillas[:needed])
    ladder: list[tuple[str, str, str]] = []
    ladder.append((controls[0], controls[1], work[0]))
    for i in range(k - 3):
        ladder.append((controls[i + 2], work[i], work[i + 1]))
    for c1, c2, t in ladder:
        sink.apply("TOFFOLI", c1, c2, t)
    sink.apply("TOFFOLI", controls[-1], work[-1], target)
    for c1, c2, t in reversed(ladder):
        sink.apply("TOFFOLI", c1, c2, t)


def compare_equal_constant(
    sink: GateSink,
    register: Sequence[str],
    constant: int,
    result: str,
    ancillas: Sequence[str],
) -> None:
    """``result ^= (register == constant)``.

    X-conjugates the zero bits so equality becomes an AND, then applies a
    multi-controlled X.  Register state is restored.
    """
    n = len(register)
    constant %= 1 << n
    zero_bits = [register[i] for i in range(n) if not (constant >> i) & 1]
    for q in zero_bits:
        sink.apply("X", q)
    multi_controlled_x(sink, list(register), result, ancillas)
    for q in zero_bits:
        sink.apply("X", q)


def xor_register(sink: GateSink, source: Sequence[str], dest: Sequence[str]) -> None:
    """Bitwise ``dest ^= source`` -- fully parallel CNOT layer."""
    if len(source) != len(dest):
        raise ValueError("register widths differ")
    for s, d in zip(source, dest):
        sink.apply("CNOT", s, d)


def rotate_names(register: Sequence[str], amount: int) -> list[str]:
    """Left-rotate a register *by renaming* (free on hardware schedules).

    Classical rotations in SHA-1 are compile-time register permutations,
    not gates; this helper performs the permutation.
    """
    n = len(register)
    if n == 0:
        return []
    amount %= n
    return list(register[amount:]) + list(register[:amount])
