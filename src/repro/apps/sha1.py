"""SHA-1 (SHA-1 decryption) workload.

Table 2: "SHA-1 decryption of n-bit message" [55], parallelism factor
~29 -- a highly parallel application.

The quantum attack circuit is the reversible SHA-1 compression function
(the Grover oracle core of [55]-style preimage search).  Parallelism
comes from three sources, all present in real SHA-1 attack circuits:

* **Bitwise round functions** -- Ch / Parity / Maj computed with
  word-wide Toffoli/CNOT layers (fully parallel across bits).
* **Log-depth addition** -- a Draper-style carry-lookahead network
  (:mod:`repro.apps.cla`) instead of ripple carries, and the five round
  addends summed through a balanced tree so independent adds overlap.
* **Out-of-place message schedule** -- every ``W[t]`` is a fresh
  register XOR-combined from four earlier words, so schedule expansion
  for all rounds proceeds concurrently with the round chain.

``word_bits`` parameterizes the word width so small instances stay
tractable (real SHA-1 is ``word_bits=32, rounds=80``).
"""

from __future__ import annotations

import dataclasses

from ..frontend.program import Module, Program
from .arith import rotate_names, xor_register
from .cla import cla_ancilla_count, cla_add_inplace, cla_xor_sum

__all__ = ["Sha1Params", "build_sha1", "ROUND_CONSTANTS"]

ROUND_CONSTANTS = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


@dataclasses.dataclass(frozen=True)
class Sha1Params:
    """SHA-1 instance parameters.

    Attributes:
        word_bits: Width of each working register (32 in real SHA-1).
        rounds: Compression rounds (80 in real SHA-1).
        message_words: Input message words before schedule expansion
            (16 in SHA-1).
        grover_iterations: Repetitions of the compression function
            (the Grover preimage attack iterates the same oracle, so
            computation size grows while the qubit footprint stays
            fixed -- the regime of the paper's SHA-1 scaling).
    """

    word_bits: int = 8
    rounds: int = 20
    message_words: int = 16
    grover_iterations: int = 1

    def __post_init__(self) -> None:
        if self.word_bits < 4:
            raise ValueError("word_bits must be >= 4")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.message_words < 16:
            raise ValueError("message_words must be >= 16 (SHA-1 block)")
        if self.grover_iterations < 1:
            raise ValueError("grover_iterations must be >= 1")


def _word(prefix: str, width: int) -> list[str]:
    return [f"{prefix}_{i}" for i in range(width)]


def _ch_layer(module: Module, b, c, d, out) -> None:
    """out ^= Ch(b, c, d) = (b AND c) XOR (NOT b AND d), bitwise."""
    for bb, cc, dd, oo in zip(b, c, d, out):
        module.apply("TOFFOLI", bb, cc, oo)
        module.apply("X", bb)
        module.apply("TOFFOLI", bb, dd, oo)
        module.apply("X", bb)


def _parity_layer(module: Module, b, c, d, out) -> None:
    """out ^= b XOR c XOR d, bitwise."""
    for bb, cc, dd, oo in zip(b, c, d, out):
        module.apply("CNOT", bb, oo)
        module.apply("CNOT", cc, oo)
        module.apply("CNOT", dd, oo)


def _maj_layer(module: Module, b, c, d, out) -> None:
    """out ^= Maj(b, c, d) = (b AND c) XOR (b AND d) XOR (c AND d)."""
    for bb, cc, dd, oo in zip(b, c, d, out):
        module.apply("TOFFOLI", bb, cc, oo)
        module.apply("TOFFOLI", bb, dd, oo)
        module.apply("TOFFOLI", cc, dd, oo)


_F_LAYERS = (_ch_layer, _parity_layer, _maj_layer, _parity_layer)


def _round_module(program: Program, params: Sha1Params, t: int) -> Module:
    """One SHA-1 round.

    Computes ``new_a = rotl5(a) + f(b, c, d) + e + K_t + W_t`` through a
    balanced add tree, leaving the result in the (renamed) ``e``
    register slot and restoring every temporary:

    * ``t1 = rotl5(a) + f`` and ``t2 = K + W_t`` in parallel,
    * ``t3 = t1 + t2``,
    * ``e += t3`` in place (accumulator/spare renaming),
    * uncompute ``t3``, ``t2``, ``t1``, the K load, and ``f``.

    The caller performs the register rotation by permuting arguments at
    the call site, so positionally: parameters are
    ``a, b, c, d, e, w_t, spare`` and the new working value lands in the
    *spare* slot (callers treat the round as mapping
    ``(e, spare) -> (zeroed, new_a)``).
    """
    w = params.word_bits
    a, b, c, d, e = (_word(r, w) for r in "abcde")
    wt = _word("wt", w)
    spare = _word("spare", w)
    f_temp = _word("f", w)
    k_reg = _word("k", w)
    t1, t2, t3 = _word("t1", w), _word("t2", w), _word("t3", w)
    anc = _word("cla", cla_ancilla_count(w))
    # Scratch (f, K, adder temps, CLA ancillas) is passed in by the
    # caller from a shared pool: ancillas are *reused* across rounds, as
    # any reversible-circuit compiler would, so the qubit footprint does
    # not grow with round or iteration count.
    module = program.module(
        f"round_{t}",
        parameters=a + b + c + d + e + wt + spare
        + f_temp + k_reg + t1 + t2 + t3 + anc,
    )
    quarter = min((t * 4) // max(params.rounds, 1), 3)
    f_layer = _F_LAYERS[quarter]
    constant = ROUND_CONSTANTS[quarter] & ((1 << w) - 1)
    k_bits = [k_reg[i] for i in range(w) if (constant >> i) & 1]

    f_layer(module, b, c, d, f_temp)
    for q in k_bits:
        module.apply("X", q)

    rotated_a = rotate_names(a, 5 % w)
    cla_xor_sum(module, rotated_a, f_temp, t1, anc)
    cla_xor_sum(module, k_reg, wt, t2, anc)
    cla_xor_sum(module, t1, t2, t3, anc)
    cla_add_inplace(module, t3, e, spare, anc)
    # The sum now lives in ``spare``; ``e`` is zeroed.  Uncompute temps.
    cla_xor_sum(module, t1, t2, t3, anc)
    cla_xor_sum(module, k_reg, wt, t2, anc)
    cla_xor_sum(module, rotated_a, f_temp, t1, anc)

    for q in k_bits:
        module.apply("X", q)
    f_layer(module, b, c, d, f_temp)  # all three f layers are involutions
    return module


def _schedule_module(program: Program, params: Sha1Params) -> Module:
    """Out-of-place schedule word: dst ^= s3 ^ s8 ^ s14 ^ s16 (pre-rotl1).

    Four parallel CNOT layers; the rotl1 is applied by the caller as an
    argument permutation on the destination word.
    """
    w = params.word_bits
    dst = _word("dst", w)
    sources = [_word(f"src{k}", w) for k in range(4)]
    module = program.module(
        "schedule_word", parameters=dst + [q for s in sources for q in s]
    )
    for source in sources:
        xor_register(module, source, dst)
    return module


def build_sha1(params: Sha1Params | None = None) -> Program:
    """Build the reversible SHA-1 compression program."""
    params = params or Sha1Params()
    w, rounds = params.word_bits, params.rounds
    program = Program("main")

    schedule_word = _schedule_module(program, params)
    round_modules = [_round_module(program, params, t) for t in range(rounds)]

    state = {reg: _word(f"h{reg}", w) for reg in "abcde"}
    spare = _word("hspare", w)
    schedule = [_word(f"w{t}", w) for t in range(max(rounds, 16))]
    scratch_size = 5 * w + cla_ancilla_count(w)
    pools = [_word(f"pool{k}", scratch_size) for k in range(2)]
    all_locals = (
        [q for reg in state.values() for q in reg]
        + spare
        + [q for word in schedule for q in word]
        + [q for pool in pools for q in pool]
    )
    main = program.module("main", locals_=all_locals)

    # Initialize chaining state and message words (prep + seed pattern);
    # scratch pools are prepared to |0> (CLA ancilla precondition).
    seeded = set(
        [q for reg in state.values() for q in reg]
        + spare
        + [q for word in schedule for q in word]
    )
    for index, qubit in enumerate(all_locals):
        main.apply("PREPZ", qubit)
        if qubit in seeded and (index * 2654435761) % 3 == 0:
            main.apply("X", qubit)

    # Message schedule expansion: independent of the round chain, so all
    # words expand concurrently (subject to their own W-dependencies).
    for t in range(16, rounds):
        rotated_dst = rotate_names(schedule[t], 1)
        main.call(
            schedule_word.name,
            *(
                rotated_dst
                + schedule[t - 3]
                + schedule[t - 8]
                + schedule[t - 14]
                + schedule[t - 16]
            ),
        )
        schedule[t] = rotated_dst

    names = {reg: list(word) for reg, word in state.items()}
    spare_name = list(spare)
    for step in range(rounds * params.grover_iterations):
        t = step % rounds
        # Alternate scratch pools so adjacent rounds can still overlap.
        pool = pools[step % 2]
        main.call(
            round_modules[t].name,
            *(
                names["a"]
                + names["b"]
                + names["c"]
                + names["d"]
                + names["e"]
                + schedule[min(t, len(schedule) - 1)]
                + spare_name
                + pool
            ),
        )
        # The round left new_a in the spare slot and zeroed e.
        new_a = spare_name
        spare_name = names["e"]
        names = {
            "a": new_a,
            "b": names["a"],
            "c": rotate_names(names["b"], 30 % w),
            "d": names["c"],
            "e": names["d"],
        }

    for reg in "abcde":
        for qubit in names[reg]:
            main.apply("MEASZ", qubit)
    return program
