"""The paper's four applications (Table 2) plus shared arithmetic.

* GSE -- Ground State Estimation, parallelism ~1.2 (serial).
* SQ -- Grover square root, parallelism ~1.5 (serial).
* SHA-1 -- reversible SHA-1 rounds, parallelism ~29 (parallel).
* IM -- digitized-adiabatic Ising chain, parallelism ~66 (parallel).
"""

from .gse import GseParams, build_gse
from .ising import IsingParams, build_ising
from .registry import APPLICATIONS, AppSpec, build_circuit, get_app
from .scaling import (
    CALIBRATION_SIZES,
    AppScalingModel,
    PowerLaw,
    calibrate,
)
from .sha1 import Sha1Params, build_sha1
from .sq import SqParams, build_sq, grover_iteration_count

__all__ = [
    "GseParams",
    "build_gse",
    "IsingParams",
    "build_ising",
    "Sha1Params",
    "build_sha1",
    "SqParams",
    "build_sq",
    "grover_iteration_count",
    "APPLICATIONS",
    "AppSpec",
    "get_app",
    "build_circuit",
    "AppScalingModel",
    "PowerLaw",
    "calibrate",
    "CALIBRATION_SIZES",
]
