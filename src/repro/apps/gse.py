"""Ground State Estimation (GSE) workload.

Table 2: "Compute ground state energy for molecule of size m" [80],
parallelism factor ~1.2 -- the most serial of the paper's applications.

The circuit is iterative quantum phase estimation over a Trotterized
electronic-structure Hamiltonian (Whitfield et al. [80]): a phase
register controls repeated applications of the time-evolution unitary of
a molecule with ``m`` spin-orbitals, followed by an inverse QFT on the
phase register.  Every Hamiltonian term is exponentiated through the
*single* control qubit of the current phase bit and threads the system
register through CNOT ladders, which is what makes the workload serial:
each term's ladder shares qubits with its neighbors.

Hamiltonian model: single-Z number terms on every orbital, ZZ Coulomb
terms on every orbital pair within ``interaction_range``, and XX+YY
hopping terms on adjacent orbitals (basis-changed with H / S gates).
Term angles are deterministic functions of the indices so circuits are
reproducible.
"""

from __future__ import annotations

import dataclasses
import math

from ..frontend.program import Module, Program

__all__ = ["GseParams", "build_gse"]


@dataclasses.dataclass(frozen=True)
class GseParams:
    """GSE instance parameters.

    Attributes:
        num_orbitals: Molecule size m (system register width).
        precision_bits: Phase-estimation bits (energy precision digits).
        trotter_steps: First-order Trotter steps per controlled evolution.
        interaction_range: Max orbital distance for ZZ Coulomb terms.
    """

    num_orbitals: int = 4
    precision_bits: int = 3
    trotter_steps: int = 1
    interaction_range: int = 2

    def __post_init__(self) -> None:
        if self.num_orbitals < 2:
            raise ValueError("num_orbitals must be >= 2")
        if self.precision_bits < 1:
            raise ValueError("precision_bits must be >= 1")
        if self.trotter_steps < 1:
            raise ValueError("trotter_steps must be >= 1")
        if self.interaction_range < 1:
            raise ValueError("interaction_range must be >= 1")


def _angle(kind: int, i: int, j: int = 0) -> float:
    """Deterministic pseudo-coefficient for Hamiltonian term (kind, i, j)."""
    seed = (kind * 2654435761 + i * 40503 + j * 65537) % 10_000
    return 0.1 + (seed / 10_000) * 0.8  # in [0.1, 0.9], avoids pi/4 grid


def _crz(module: Module, control: str, target: str, theta: float) -> None:
    """Controlled-RZ via two CNOTs and two half-angle RZs."""
    module.apply("RZ", target, param=theta / 2)
    module.apply("CNOT", control, target)
    module.apply("RZ", target, param=-theta / 2)
    module.apply("CNOT", control, target)


def _controlled_trotter_step(
    program: Program, params: GseParams, scale: float, label: str
) -> Module:
    """One controlled first-order Trotter step with angles scaled."""
    m = params.num_orbitals
    system = [f"s{i}" for i in range(m)]
    module = program.module(label, parameters=["ctl"] + system)

    # Number operator terms: controlled-RZ on each orbital.
    for i in range(m):
        _crz(module, "ctl", system[i], scale * _angle(1, i))

    # Coulomb ZZ terms: CNOT ladder to the later orbital, controlled-RZ,
    # un-ladder.  Shared orbitals serialize consecutive terms.
    for i in range(m):
        for j in range(i + 1, min(i + 1 + params.interaction_range, m)):
            module.apply("CNOT", system[i], system[j])
            _crz(module, "ctl", system[j], scale * _angle(2, i, j))
            module.apply("CNOT", system[i], system[j])

    # Hopping XX and YY terms on adjacent orbitals (basis-conjugated).
    for i in range(m - 1):
        j = i + 1
        theta = scale * _angle(3, i, j)
        # XX: conjugate both with H.
        module.apply("H", system[i])
        module.apply("H", system[j])
        module.apply("CNOT", system[i], system[j])
        _crz(module, "ctl", system[j], theta)
        module.apply("CNOT", system[i], system[j])
        module.apply("H", system[i])
        module.apply("H", system[j])
        # YY: conjugate with S-H (Y = S H Z H Sdg up to phase).
        module.apply("SDG", system[i])
        module.apply("SDG", system[j])
        module.apply("H", system[i])
        module.apply("H", system[j])
        module.apply("CNOT", system[i], system[j])
        _crz(module, "ctl", system[j], theta)
        module.apply("CNOT", system[i], system[j])
        module.apply("H", system[i])
        module.apply("H", system[j])
        module.apply("S", system[i])
        module.apply("S", system[j])
    return module


def _inverse_qft(module: Module, phase: list[str]) -> None:
    """Textbook inverse QFT over the phase register (no final swaps)."""
    p = len(phase)
    for k in range(p - 1, -1, -1):
        for j in range(p - 1, k, -1):
            _crz(module, phase[j], phase[k], -math.pi / (1 << (j - k)))
        module.apply("H", phase[k])


def build_gse(params: GseParams | None = None) -> Program:
    """Build the GSE phase-estimation program."""
    params = params or GseParams()
    program = Program("main")
    m, p = params.num_orbitals, params.precision_bits

    step_modules = []
    for k in range(p):
        # Controlled-U^(2^k) folds repetition into the Trotter angle
        # scale (standard iterative-QPE angle doubling): same gate count
        # per step, 2^k-scaled rotations.
        step_modules.append(
            _controlled_trotter_step(
                program, params, float(1 << k), f"ctrl_evolution_{k}"
            )
        )

    phase = [f"ph{k}" for k in range(p)]
    system = [f"s{i}" for i in range(m)]
    main = program.module("main", locals_=phase + system)

    # Reference state: fill the lower half of the orbitals.
    for i in range(m):
        main.apply("PREPZ", system[i])
        if i < m // 2:
            main.apply("X", system[i])
    for k in range(p):
        main.apply("PREPZ", phase[k])
        main.apply("H", phase[k])

    for k in range(p):
        for _ in range(params.trotter_steps):
            main.call(step_modules[k].name, phase[k], *system)

    _inverse_qft(main, phase)
    for k in range(p):
        main.apply("MEASZ", phase[k])
    return program
