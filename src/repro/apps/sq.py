"""Square Root (SQ) workload.

Table 2: "Find square root of an n-bit number" via Grover search [32],
parallelism factor ~1.5 -- a mostly-serial application.

Grover iterations over an ``n``-bit search register ``x``.  The oracle
computes ``x * x`` into a ``2n``-bit accumulator with reversible
shift-and-add multiplication (partial products via Toffoli fans, CDKM
ripple-carry accumulation), compares the accumulator against the target
``N`` with a multi-controlled X onto a phase-kick qubit, then uncomputes
the square.  The diffusion operator is the standard
H/X/multi-controlled-Z sandwich.  Ripple carries make the workload
serial: every adder threads a carry chain through the accumulator.
"""

from __future__ import annotations

import dataclasses
import math

from ..frontend.program import Module, Program
from .arith import multi_controlled_x, ripple_add

__all__ = ["SqParams", "build_sq", "grover_iteration_count"]


@dataclasses.dataclass(frozen=True)
class SqParams:
    """SQ instance parameters.

    Attributes:
        num_bits: Width n of the search register.
        target: The number N whose square root is sought
            (default: largest square representable, (2^n - 1)^2).
        iterations: Grover iterations; default is the optimal
            ``floor(pi/4 * sqrt(2^n))`` capped at ``max_iterations``.
        max_iterations: Safety cap so generated circuits stay tractable.
    """

    num_bits: int = 3
    target: int | None = None
    iterations: int | None = None
    max_iterations: int = 4

    def __post_init__(self) -> None:
        if self.num_bits < 2:
            raise ValueError("num_bits must be >= 2")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.iterations is not None and self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.target is not None:
            if not 0 <= self.target < 1 << (2 * self.num_bits):
                raise ValueError(
                    f"target {self.target} does not fit in "
                    f"{2 * self.num_bits} bits"
                )

    @property
    def resolved_target(self) -> int:
        if self.target is not None:
            return self.target
        root = (1 << self.num_bits) - 1
        return root * root

    @property
    def resolved_iterations(self) -> int:
        if self.iterations is not None:
            return self.iterations
        optimal = max(1, math.floor(math.pi / 4 * math.sqrt(1 << self.num_bits)))
        return min(optimal, self.max_iterations)


def grover_iteration_count(num_bits: int) -> int:
    """Optimal Grover iteration count for a 2^n search space."""
    return max(1, math.floor(math.pi / 4 * math.sqrt(1 << num_bits)))


def _square_module(program: Program, n: int, name: str) -> Module:
    """Reversible ``acc += x * x`` (acc in |0> yields acc = x^2).

    Self-inverse structure: calling the module on ``acc = x^2`` restores
    zero only via the inverse network; we instead emit a dedicated
    inverse module by replaying the (self-inverse) gate list reversed.
    """
    x = [f"x{i}" for i in range(n)]
    acc = [f"acc{i}" for i in range(2 * n)]
    pp = [f"pp{i}" for i in range(2 * n)]
    carry = "sq_carry"
    module = program.module(name, parameters=x + acc, locals_=pp + [carry])
    for i in range(n):
        # Load partial product x_i * (x << i) into the zero register pp.
        # The diagonal bit uses x_i * x_i = x_i (a plain CNOT).
        module.apply("CNOT", x[i], pp[2 * i])
        for j in range(n):
            if j != i:
                module.apply("TOFFOLI", x[i], x[j], pp[i + j])
        ripple_add(module, pp, acc, carry)
        # Uncompute the partial product.
        for j in range(n - 1, -1, -1):
            if j != i:
                module.apply("TOFFOLI", x[i], x[j], pp[i + j])
        module.apply("CNOT", x[i], pp[2 * i])
    return module


def _inverse_of(program: Program, module: Module, name: str) -> Module:
    """Build the inverse module by reversing and inverting the body."""
    inverse = program.module(
        name, parameters=list(module.parameters), locals_=list(module.locals_)
    )
    for op in reversed(module.body):
        if not hasattr(op, "gate"):
            raise ValueError("cannot invert a module containing calls")
        spec = op.spec
        inverse.apply(spec.inverse, *op.qubits, param=(
            -op.param if op.param is not None else None
        ))
    return inverse


def _oracle_module(
    program: Program, params: SqParams, square: Module, unsquare: Module
) -> Module:
    """Phase-flip states with x*x == N."""
    n = params.num_bits
    x = [f"x{i}" for i in range(n)]
    acc = [f"acc{i}" for i in range(2 * n)]
    anc = [f"oracle_anc{i}" for i in range(max(1, 2 * n - 2))]
    module = program.module(
        "oracle", parameters=x + ["flag"], locals_=acc + anc
    )
    module.call(square.name, *(x + acc))
    # flag ^= (acc == N); with flag in |->, this is a phase flip.
    target = params.resolved_target
    zero_positions = [acc[i] for i in range(2 * n) if not (target >> i) & 1]
    for q in zero_positions:
        module.apply("X", q)
    multi_controlled_x(module, acc, "flag", anc)
    for q in zero_positions:
        module.apply("X", q)
    module.call(unsquare.name, *(x + acc))
    return module


def _diffusion_module(program: Program, n: int) -> Module:
    """Inversion about the mean on the search register."""
    x = [f"x{i}" for i in range(n)]
    anc = [f"diff_anc{i}" for i in range(max(1, n - 2))]
    module = program.module("diffusion", parameters=x, locals_=anc)
    for q in x:
        module.apply("H", q)
        module.apply("X", q)
    # Multi-controlled Z on the all-ones state: H-conjugate the last bit.
    module.apply("H", x[-1])
    multi_controlled_x(module, x[:-1], x[-1], anc)
    module.apply("H", x[-1])
    for q in x:
        module.apply("X", q)
        module.apply("H", q)
    return module


def build_sq(params: SqParams | None = None) -> Program:
    """Build the Grover square-root program."""
    params = params or SqParams()
    n = params.num_bits
    program = Program("main")

    square = _square_module(program, n, "square")
    unsquare = _inverse_of(program, square, "unsquare")
    oracle = _oracle_module(program, params, square, unsquare)
    diffusion = _diffusion_module(program, n)

    iteration = program.module(
        "grover_iteration",
        parameters=[f"x{i}" for i in range(n)] + ["flag"],
    )
    iteration.call(oracle.name, *iteration.parameters)
    iteration.call(diffusion.name, *iteration.parameters[:-1])

    x = [f"x{i}" for i in range(n)]
    main = program.module("main", locals_=x + ["flag"])
    for q in x:
        main.apply("PREPZ", q)
        main.apply("H", q)
    # Phase-kick qubit in |->.
    main.apply("PREPZ", "flag")
    main.apply("X", "flag")
    main.apply("H", "flag")
    for _ in range(params.resolved_iterations):
        main.call(iteration.name, *(x + ["flag"]))
    for q in x:
        main.apply("MEASZ", q)
    return program
