"""Carry-lookahead (prefix-network) adder with logarithmic depth.

The SHA-1 workload's parallelism comes from word-wide bitwise layers;
ripple-carry adders would serialize it away.  This module implements a
Draper/Brent-Kung-style reversible carry-lookahead network:

* ``cla_xor_sum(target ^= a + b)`` -- out-of-place, O(log n) depth,
  O(n log n) gates, all internal ancillas returned to |0>.
* ``cla_xor_sum(..., subtract=True)`` -- ``target ^= a - b`` using the
  two's-complement identity ``a - b = ~(~a + b)``.
* ``cla_add_inplace`` -- in-place accumulate ``acc += x`` built from an
  add into a spare register followed by a subtract that zeroes the old
  accumulator (``old_acc ^= (sum - x) == old_acc``), returning the
  swapped register names.

Carry recurrences use XOR in place of OR, which is exact because a
block's generate and propagate signals are never simultaneously 1.
"""

from __future__ import annotations

from typing import Sequence

from .arith import GateSink

__all__ = ["cla_ancilla_count", "cla_xor_sum", "cla_add_inplace"]


def cla_ancilla_count(width: int) -> int:
    """Safe upper bound on ancillas used by one :func:`cla_xor_sum`."""
    if width < 1:
        raise ValueError("width must be >= 1")
    # g + p per bit, one (G, P) pair per internal tree node (< width),
    # one carry per position.
    return 2 * width + 2 * max(width - 1, 0) + width


class _Allocator:
    """Hands out ancilla names and records them for symmetric uncompute."""

    def __init__(self, pool: Sequence[str]) -> None:
        self._pool = list(pool)
        self._next = 0

    def take(self) -> str:
        if self._next >= len(self._pool):
            raise ValueError(
                f"carry-lookahead network exhausted its ancilla pool "
                f"({len(self._pool)} provided)"
            )
        name = self._pool[self._next]
        self._next += 1
        return name


class _Recorder:
    """Gate sink wrapper that records emitted gates for exact reversal."""

    def __init__(self, sink: GateSink) -> None:
        self._sink = sink
        self.log: list[tuple[str, tuple[str, ...]]] = []

    def apply(self, gate: str, *qubits: str, param: float | None = None) -> None:
        assert param is None, "CLA emits only X/CNOT/Toffoli"
        self._sink.apply(gate, *qubits)
        self.log.append((gate, qubits))

    def unwind(self) -> None:
        """Re-emit the recorded gates in reverse (all are self-inverse)."""
        for gate, qubits in reversed(self.log):
            self._sink.apply(gate, *qubits)


def _build_tree(
    rec: _Recorder,
    lo: int,
    hi: int,
    g: Sequence[str],
    p: Sequence[str],
    alloc: _Allocator,
    nodes: dict[tuple[int, int], tuple[str, str]],
) -> tuple[str, str]:
    """Compute block (G, P) for bit range [lo, hi) into fresh ancillas."""
    if (lo, hi) in nodes:
        return nodes[(lo, hi)]
    if hi - lo == 1:
        nodes[(lo, hi)] = (g[lo], p[lo])
        return nodes[(lo, hi)]
    mid = (lo + hi) // 2
    g_left, p_left = _build_tree(rec, lo, mid, g, p, alloc, nodes)
    g_right, p_right = _build_tree(rec, mid, hi, g, p, alloc, nodes)
    g_block = alloc.take()
    p_block = alloc.take()
    # G = G_right XOR (P_right AND G_left); P = P_left AND P_right.
    rec.apply("CNOT", g_right, g_block)
    rec.apply("TOFFOLI", p_right, g_left, g_block)
    rec.apply("TOFFOLI", p_left, p_right, p_block)
    nodes[(lo, hi)] = (g_block, p_block)
    return nodes[(lo, hi)]


def _compute_carries(
    rec: _Recorder,
    lo: int,
    hi: int,
    carry_in: str | None,
    alloc: _Allocator,
    nodes: dict[tuple[int, int], tuple[str, str]],
    carries: dict[int, str],
) -> None:
    """Fill ``carries[i]`` (carry *into* bit i) for lo < i < hi."""
    if hi - lo == 1:
        return
    mid = (lo + hi) // 2
    g_block, p_block = nodes[(lo, mid)]
    carry_mid = alloc.take()
    rec.apply("CNOT", g_block, carry_mid)
    if carry_in is not None:
        rec.apply("TOFFOLI", p_block, carry_in, carry_mid)
    carries[mid] = carry_mid
    _compute_carries(rec, lo, mid, carry_in, alloc, nodes, carries)
    _compute_carries(rec, mid, hi, carry_mid, alloc, nodes, carries)


def cla_xor_sum(
    sink: GateSink,
    a: Sequence[str],
    b: Sequence[str],
    target: Sequence[str],
    ancillas: Sequence[str],
    subtract: bool = False,
) -> None:
    """``target ^= (a + b) mod 2^n`` (or ``a - b`` with ``subtract``).

    ``a`` and ``b`` are read-only; all ancillas are restored to |0>.
    Requires :func:`cla_ancilla_count` ancillas for the operand width.
    """
    n = len(a)
    if len(b) != n or len(target) != n:
        raise ValueError("operand and target widths must match")
    if n == 0:
        raise ValueError("registers must be non-empty")
    if len(ancillas) < cla_ancilla_count(n):
        raise ValueError(
            f"need {cla_ancilla_count(n)} ancillas for width {n}, got "
            f"{len(ancillas)}"
        )
    if subtract:
        # a - b = ~(~a + b): X-conjugate a, add, X the target bits.
        for q in a:
            sink.apply("X", q)
    alloc = _Allocator(ancillas)
    rec = _Recorder(sink)
    g = [alloc.take() for _ in range(n)]
    p = [alloc.take() for _ in range(n)]
    for i in range(n):
        rec.apply("TOFFOLI", a[i], b[i], g[i])
        rec.apply("CNOT", a[i], p[i])
        rec.apply("CNOT", b[i], p[i])
    nodes: dict[tuple[int, int], tuple[str, str]] = {}
    carries: dict[int, str] = {}
    if n > 1:
        _build_tree(rec, 0, n, g, p, alloc, nodes)
        _compute_carries(rec, 0, n, None, alloc, nodes, carries)
    # Write the sum bits (not recorded: this is the network's output).
    for i in range(n):
        sink.apply("CNOT", p[i], target[i])
        if i in carries:
            sink.apply("CNOT", carries[i], target[i])
    rec.unwind()
    if subtract:
        for q in a:
            sink.apply("X", q)
        for q in target:
            sink.apply("X", q)


def cla_add_inplace(
    sink: GateSink,
    addend: Sequence[str],
    accumulator: Sequence[str],
    spare: Sequence[str],
    ancillas: Sequence[str],
) -> tuple[list[str], list[str]]:
    """In-place ``accumulator += addend`` with register renaming.

    ``spare`` must be |0...0>.  The sum lands in ``spare`` and the old
    accumulator register is provably zeroed (``acc ^= sum - addend``),
    so the roles swap.

    Returns:
        ``(new_accumulator_names, new_spare_names)``.
    """
    cla_xor_sum(sink, addend, accumulator, spare, ancillas)
    cla_xor_sum(sink, spare, addend, accumulator, ancillas, subtract=True)
    return list(spare), list(accumulator)
