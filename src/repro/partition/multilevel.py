"""Multilevel recursive bisection: the METIS-substitute driver.

``bisect`` runs the classic three-phase multilevel scheme [42]:
coarsen with heavy-edge matching, seed-bisect the coarsest graph, then
uncoarsen with Kernighan--Lin refinement at every level.
``recursive_partition`` applies bisection recursively to produce 2^k
parts, which is exactly how the paper uses METIS ("iterative calls to a
graph partitioning library ... to separate the qubits into two
partitions", Section 6.2).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from .coarsen import coarsen_to_size
from .graph import InteractionGraph
from .kl import balanced_seed_bisection, kl_refine

__all__ = ["bisect", "recursive_partition"]

Node = Hashable

COARSEST_SIZE = 32


def bisect(graph: InteractionGraph) -> dict[Node, int]:
    """2-way multilevel partition of ``graph`` (parts 0 and 1)."""
    if graph.num_nodes == 0:
        return {}
    if graph.num_nodes == 1:
        return {graph.nodes[0]: 0}
    hierarchy = coarsen_to_size(graph, COARSEST_SIZE)
    coarsest = hierarchy[-1].graph if hierarchy else graph
    assignment = balanced_seed_bisection(coarsest)
    assignment = kl_refine(coarsest, assignment)
    for level in reversed(hierarchy):
        assignment = level.expand(assignment)
        fine_graph = (
            hierarchy[hierarchy.index(level) - 1].graph
            if hierarchy.index(level) > 0
            else graph
        )
        assignment = kl_refine(fine_graph, assignment)
    return assignment


def recursive_partition(
    graph: InteractionGraph, num_parts: int
) -> dict[Node, int]:
    """Partition into ``num_parts`` (power of two) parts, labels 0..k-1.

    Each recursion level bisects the subgraph induced by one part.
    """
    if num_parts < 1:
        raise ValueError(f"num_parts must be >= 1, got {num_parts}")
    if num_parts & (num_parts - 1):
        raise ValueError(f"num_parts must be a power of two, got {num_parts}")
    assignment = {node: 0 for node in graph.nodes}
    if num_parts == 1 or graph.num_nodes == 0:
        return assignment
    _recurse(graph, graph.nodes, 0, num_parts, assignment)
    return assignment


def _induced_subgraph(
    graph: InteractionGraph, nodes: Sequence[Node]
) -> InteractionGraph:
    keep = set(nodes)
    sub = InteractionGraph()
    for node in nodes:
        sub.add_node(node, graph.node_weight(node))
    for u, v, w in graph.edges():
        if u in keep and v in keep:
            sub.add_edge(u, v, w)
    return sub


def _recurse(
    graph: InteractionGraph,
    nodes: Sequence[Node],
    label_base: int,
    num_parts: int,
    assignment: dict[Node, int],
) -> None:
    if num_parts == 1 or not nodes:
        for node in nodes:
            assignment[node] = label_base
        return
    sub = _induced_subgraph(graph, nodes)
    halves = bisect(sub)
    left = [n for n in nodes if halves[n] == 0]
    right = [n for n in nodes if halves[n] == 1]
    if not left or not right:
        # Degenerate bisection (e.g. all-isolated nodes): split evenly.
        ordered = sorted(nodes, key=str)
        mid = len(ordered) // 2
        left, right = ordered[:mid], ordered[mid:]
    _recurse(graph, left, label_base, num_parts // 2, assignment)
    _recurse(graph, right, label_base + num_parts // 2, num_parts // 2, assignment)
