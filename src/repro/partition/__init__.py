"""Multilevel graph partitioning and interaction-aware layout.

From-scratch substitute for METIS [42]: heavy-edge matching coarsening,
Kernighan--Lin refinement, recursive bisection, and the 2D placement
driver of Section 6.2.
"""

from .coarsen import CoarseLevel, coarsen_once, coarsen_to_size
from .graph import InteractionGraph, interaction_graph_from_circuit
from .kl import balanced_seed_bisection, kl_refine
from .layout import (
    GridShape,
    Placement,
    grid_for,
    naive_layout,
    optimized_layout,
    weighted_manhattan_cost,
)
from .multilevel import bisect, recursive_partition

__all__ = [
    "InteractionGraph",
    "interaction_graph_from_circuit",
    "CoarseLevel",
    "coarsen_once",
    "coarsen_to_size",
    "kl_refine",
    "balanced_seed_bisection",
    "bisect",
    "recursive_partition",
    "GridShape",
    "Placement",
    "grid_for",
    "naive_layout",
    "optimized_layout",
    "weighted_manhattan_cost",
]
