"""Heavy-edge matching coarsening for the multilevel partitioner.

The multilevel scheme (Karypis & Kumar [42], the METIS algorithm)
repeatedly contracts a maximal matching that prefers heavy edges: each
contraction halves the graph while preserving most of the cut structure,
so a partition of the coarse graph projects to a good partition of the
fine graph.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable

from .graph import InteractionGraph

__all__ = ["CoarseLevel", "coarsen_once", "coarsen_to_size"]

Node = Hashable


@dataclasses.dataclass(frozen=True)
class CoarseLevel:
    """One level of the coarsening hierarchy.

    Attributes:
        graph: The coarsened graph.
        projection: Coarse node -> tuple of fine nodes it absorbed.
    """

    graph: InteractionGraph
    projection: dict[Node, tuple[Node, ...]]

    def expand(self, coarse_assignment: dict[Node, int]) -> dict[Node, int]:
        """Project a coarse partition assignment down to fine nodes."""
        fine: dict[Node, int] = {}
        for coarse_node, part in coarse_assignment.items():
            for fine_node in self.projection[coarse_node]:
                fine[fine_node] = part
        return fine


def coarsen_once(graph: InteractionGraph) -> CoarseLevel:
    """Contract one maximal heavy-edge matching.

    Visits nodes in descending weighted-degree order and matches each
    unmatched node with its heaviest unmatched neighbor.  Unmatched
    nodes survive as singletons.
    """
    matched: set[Node] = set()
    merges: list[tuple[Node, Node]] = []
    # Deterministic order: highest total interaction first, name-tiebreak.
    order = sorted(
        graph.nodes, key=lambda n: (-graph.degree(n), str(n))
    )
    for node in order:
        if node in matched:
            continue
        candidates = [
            (w, str(nbr), nbr)
            for nbr, w in graph.neighbors(node).items()
            if nbr not in matched
        ]
        if not candidates:
            matched.add(node)
            merges.append((node, node))
            continue
        candidates.sort(key=lambda item: (-item[0], item[1]))
        partner = candidates[0][2]
        matched.add(node)
        matched.add(partner)
        merges.append((node, partner))

    coarse = InteractionGraph()
    projection: dict[Node, tuple[Node, ...]] = {}
    fine_to_coarse: dict[Node, Node] = {}
    for index, (u, v) in enumerate(merges):
        coarse_node = f"c{index}"
        if u == v:
            projection[coarse_node] = (u,)
            weight = graph.node_weight(u)
        else:
            projection[coarse_node] = (u, v)
            weight = graph.node_weight(u) + graph.node_weight(v)
        coarse.add_node(coarse_node, weight)
        for fine in projection[coarse_node]:
            fine_to_coarse[fine] = coarse_node
    for u, v, w in graph.edges():
        cu, cv = fine_to_coarse[u], fine_to_coarse[v]
        if cu != cv:
            coarse.add_edge(cu, cv, w)
    return CoarseLevel(graph=coarse, projection=projection)


def coarsen_to_size(
    graph: InteractionGraph, target_size: int, max_levels: int = 30
) -> list[CoarseLevel]:
    """Coarsen until at most ``target_size`` nodes (or no progress).

    Returns the hierarchy finest-first; an empty list when the graph is
    already small enough.
    """
    if target_size < 2:
        raise ValueError(f"target_size must be >= 2, got {target_size}")
    levels: list[CoarseLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.num_nodes <= target_size:
            break
        level = coarsen_once(current)
        if level.graph.num_nodes >= current.num_nodes:
            break  # no further contraction possible
        levels.append(level)
        current = level.graph
    return levels
