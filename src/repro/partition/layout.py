"""Interaction-aware 2D qubit placement (Section 6.2).

``optimized_layout`` recursively bisects the interaction graph and the
grid region together: each graph bisection is assigned to one half of
the current rectangle (split along its longer axis), so strongly
interacting qubits land in the same sub-rectangle at every scale.
Relative to the naive program-order layout this "reduces the lengths of
braids, hence reducing the chance of braid collisions."
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Iterable, Mapping, Sequence

from .graph import InteractionGraph
from .multilevel import _induced_subgraph, bisect

__all__ = ["GridShape", "Placement", "naive_layout", "optimized_layout",
           "weighted_manhattan_cost", "grid_for"]

Node = Hashable


@dataclasses.dataclass(frozen=True)
class GridShape:
    """A rows x cols grid of tile sites."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {self}")

    @property
    def capacity(self) -> int:
        return self.rows * self.cols

    def sites(self) -> list[tuple[int, int]]:
        return [(r, c) for r in range(self.rows) for c in range(self.cols)]


def grid_for(count: int, aspect: float = 1.0) -> GridShape:
    """Smallest near-``aspect`` grid with at least ``count`` sites."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rows = max(1, round((count / aspect) ** 0.5))
    cols = -(-count // rows)
    while rows * cols < count:
        cols += 1
    return GridShape(rows=rows, cols=cols)


@dataclasses.dataclass(frozen=True)
class Placement:
    """Assignment of logical qubits to grid sites.

    Attributes:
        grid: The grid shape.
        positions: Qubit -> (row, col).
    """

    grid: GridShape
    positions: dict[Node, tuple[int, int]]

    def __post_init__(self) -> None:
        seen: set[tuple[int, int]] = set()
        for node, site in self.positions.items():
            row, col = site
            if not (0 <= row < self.grid.rows and 0 <= col < self.grid.cols):
                raise ValueError(f"{node!r} placed off-grid at {site}")
            if site in seen:
                raise ValueError(f"site {site} assigned twice")
            seen.add(site)

    def position(self, node: Node) -> tuple[int, int]:
        return self.positions[node]

    def distance(self, u: Node, v: Node) -> int:
        (r1, c1), (r2, c2) = self.positions[u], self.positions[v]
        return abs(r1 - r2) + abs(c1 - c2)

    def free_sites(self) -> list[tuple[int, int]]:
        used = set(self.positions.values())
        return [s for s in self.grid.sites() if s not in used]


def weighted_manhattan_cost(
    graph: InteractionGraph, placement: Placement
) -> float:
    """Sum over interacting pairs of weight x Manhattan distance --
    the objective of Section 6.2."""
    return sum(
        w * placement.distance(u, v) for u, v, w in graph.edges()
    )


def naive_layout(
    qubits: Sequence[Node], grid: GridShape | None = None
) -> Placement:
    """Row-major program-order placement (the paper's naive baseline)."""
    grid = grid or grid_for(len(qubits))
    if len(qubits) > grid.capacity:
        raise ValueError(
            f"{len(qubits)} qubits exceed grid capacity {grid.capacity}"
        )
    sites = grid.sites()
    return Placement(
        grid=grid,
        positions={q: sites[i] for i, q in enumerate(qubits)},
    )


def optimized_layout(
    graph: InteractionGraph, grid: GridShape | None = None
) -> Placement:
    """Interaction-aware placement by joint graph/region bisection."""
    qubits = graph.nodes
    grid = grid or grid_for(len(qubits))
    if len(qubits) > grid.capacity:
        raise ValueError(
            f"{len(qubits)} qubits exceed grid capacity {grid.capacity}"
        )
    positions: dict[Node, tuple[int, int]] = {}
    _place(graph, qubits, (0, 0, grid.rows, grid.cols), positions)
    return Placement(grid=grid, positions=positions)


def _place(
    graph: InteractionGraph,
    nodes: Sequence[Node],
    region: tuple[int, int, int, int],
    positions: dict[Node, tuple[int, int]],
) -> None:
    """Recursively assign ``nodes`` inside region (r0, c0, rows, cols)."""
    r0, c0, rows, cols = region
    if not nodes:
        return
    if len(nodes) == 1:
        positions[nodes[0]] = (r0, c0)
        return
    if rows == 1 and cols == 1:
        raise ValueError("region capacity exhausted during placement")

    # Split the region along its longer axis.
    if cols >= rows:
        left_cols = cols // 2
        region_a = (r0, c0, rows, left_cols)
        region_b = (r0, c0 + left_cols, rows, cols - left_cols)
        cap_a = rows * left_cols
    else:
        top_rows = rows // 2
        region_a = (r0, c0, top_rows, cols)
        region_b = (r0 + top_rows, c0, rows - top_rows, cols)
        cap_a = top_rows * cols

    sub = _induced_subgraph(graph, nodes)
    halves = bisect(sub)
    part_a = [n for n in nodes if halves[n] == 0]
    part_b = [n for n in nodes if halves[n] == 1]
    # Respect region capacities: move overflow between parts by weakest
    # connection to their current part.
    part_a, part_b = _rebalance(sub, part_a, part_b, cap_a,
                                len(nodes) - cap_a if len(nodes) > cap_a else None)
    cap_b = (rows * cols) - cap_a
    if len(part_b) > cap_b:
        part_b, part_a = _rebalance(sub, part_b, part_a, cap_b, None)

    _place(graph, part_a, region_a, positions)
    _place(graph, part_b, region_b, positions)


def _rebalance(
    graph: InteractionGraph,
    primary: list[Node],
    secondary: list[Node],
    primary_capacity: int,
    secondary_minimum: int | None,
) -> tuple[list[Node], list[Node]]:
    """Move overflow nodes from primary to secondary, weakest-tie first."""
    primary = list(primary)
    secondary = list(secondary)
    need_move = len(primary) - primary_capacity
    if secondary_minimum is not None:
        need_move = max(need_move, secondary_minimum - len(secondary))
    if need_move <= 0:
        return primary, secondary
    primary_set = set(primary)

    def tie_strength(node: Node) -> float:
        return sum(
            w
            for nbr, w in graph.neighbors(node).items()
            if nbr in primary_set
        )

    movers = sorted(primary, key=lambda n: (tie_strength(n), str(n)))[:need_move]
    mover_set = set(movers)
    primary = [n for n in primary if n not in mover_set]
    secondary.extend(movers)
    return primary, secondary
