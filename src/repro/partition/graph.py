"""Weighted undirected interaction graphs for layout optimization.

Section 6.2: "the optimized arrangement of qubit tiles attempts to
minimize the sum of Manhattan distances between pairs of tiles involved
in non-local, braiding operations ... through iterative calls to a graph
partitioning library, METIS, to separate the qubits (each represented as
a vertex on a graph of qubit interactions)".

This module provides the graph structure; :mod:`repro.partition.multilevel`
provides the METIS-style partitioner.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Iterator, Mapping

from ..qasm.circuit import Circuit

__all__ = ["InteractionGraph", "interaction_graph_from_circuit"]

Node = Hashable


class InteractionGraph:
    """Undirected graph with integer-weighted edges and weighted nodes."""

    def __init__(self) -> None:
        self._adjacency: dict[Node, dict[Node, float]] = {}
        self._node_weights: dict[Node, float] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"node weight must be positive, got {weight}")
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self._node_weights[node] = weight
        else:
            self._node_weights[node] = weight

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the edge u—v."""
        if u == v:
            raise ValueError(f"self-loop on {u!r} not allowed")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        for node in (u, v):
            if node not in self._adjacency:
                self.add_node(node)
        self._adjacency[u][v] = self._adjacency[u].get(v, 0.0) + weight
        self._adjacency[v][u] = self._adjacency[v].get(u, 0.0) + weight

    # -- accessors ----------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        return list(self._adjacency)

    @property
    def num_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def node_weight(self, node: Node) -> float:
        return self._node_weights[node]

    def neighbors(self, node: Node) -> dict[Node, float]:
        """Neighbor -> edge weight (a copy)."""
        return dict(self._adjacency[node])

    def edge_weight(self, u: Node, v: Node) -> float:
        return self._adjacency.get(u, {}).get(v, 0.0)

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        seen = set()
        for u, nbrs in self._adjacency.items():
            for v, w in nbrs.items():
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield u, v, w

    def total_edge_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    def degree(self, node: Node) -> float:
        """Weighted degree."""
        return sum(self._adjacency[node].values())

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    # -- partition metrics --------------------------------------------------

    def cut_weight(self, assignment: Mapping[Node, int]) -> float:
        """Total weight of edges crossing between parts."""
        return sum(
            w
            for u, v, w in self.edges()
            if assignment[u] != assignment[v]
        )

    def part_weights(self, assignment: Mapping[Node, int]) -> dict[int, float]:
        weights: dict[int, float] = defaultdict(float)
        for node, part in assignment.items():
            weights[part] += self._node_weights[node]
        return dict(weights)

    def __repr__(self) -> str:
        return (
            f"InteractionGraph(nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )


def interaction_graph_from_circuit(
    circuit: Circuit, include_isolated: bool = True
) -> InteractionGraph:
    """Build the qubit interaction graph of a circuit.

    Edge weights count multi-qubit operations touching each qubit pair
    (the quantity whose Manhattan-distance-weighted sum the layout
    optimizer minimizes).
    """
    graph = InteractionGraph()
    if include_isolated:
        for qubit in circuit.qubits:
            graph.add_node(qubit)
    for pair, count in circuit.interaction_pairs().items():
        graph.add_edge(pair[0], pair[1], float(count))
    return graph
