"""Kernighan--Lin refinement for bisections.

The multilevel partitioner refines the projected partition at every
level with KL passes: repeatedly swap the pair of nodes (one per side)
with the best cut-weight gain, allowing temporarily-negative moves, and
keep the best prefix of the swap sequence.  This is the refinement used
by METIS-family partitioners (with FM-style gain bookkeeping).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from .graph import InteractionGraph

__all__ = ["kl_refine", "balanced_seed_bisection"]

Node = Hashable


def _gains(
    graph: InteractionGraph, assignment: dict[Node, int]
) -> dict[Node, float]:
    """D-values: external minus internal edge weight per node."""
    gains: dict[Node, float] = {}
    for node in graph.nodes:
        internal = external = 0.0
        side = assignment[node]
        for nbr, w in graph.neighbors(node).items():
            if assignment[nbr] == side:
                internal += w
            else:
                external += w
        gains[node] = external - internal
    return gains


def kl_refine(
    graph: InteractionGraph,
    assignment: Mapping[Node, int],
    max_passes: int = 8,
) -> dict[Node, int]:
    """Refine a 2-way assignment with Kernighan--Lin passes.

    Node weights are respected only in that swaps exchange one node per
    side, keeping part *counts* constant (the multilevel driver seeds
    balanced bisections, so this preserves balance to within the
    heaviest node).

    Returns:
        A new assignment with cut weight <= the input's.
    """
    best = dict(assignment)
    sides = set(best.values())
    if sides - {0, 1}:
        raise ValueError(f"kl_refine expects parts {{0, 1}}, got {sides}")
    for _ in range(max_passes):
        improved, best = _one_pass(graph, best)
        if not improved:
            break
    return best


def _one_pass(
    graph: InteractionGraph, assignment: dict[Node, int]
) -> tuple[bool, dict[Node, int]]:
    working = dict(assignment)
    gains = _gains(graph, working)
    locked: set[Node] = set()
    swap_sequence: list[tuple[Node, Node, float]] = []

    left = [n for n in graph.nodes if working[n] == 0]
    right = [n for n in graph.nodes if working[n] == 1]
    rounds = min(len(left), len(right))

    for _ in range(rounds):
        best_pair = None
        best_gain = -float("inf")
        # Consider the top unlocked candidates by D-value on each side;
        # scanning a bounded candidate set keeps passes near-linear.
        left_candidates = _top_unlocked(left, gains, locked)
        right_candidates = _top_unlocked(right, gains, locked)
        for a in left_candidates:
            for b in right_candidates:
                gain = gains[a] + gains[b] - 2 * graph.edge_weight(a, b)
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (a, b)
        if best_pair is None:
            break
        a, b = best_pair
        locked.update((a, b))
        swap_sequence.append((a, b, best_gain))
        # Update D-values as if the swap happened (pre-swap sides).
        for node in (a, b):
            for nbr, w in graph.neighbors(node).items():
                if nbr in locked:
                    continue
                same_side = working[nbr] == working[node]
                gains[nbr] += 2 * w if same_side else -2 * w
        working[a], working[b] = working[b], working[a]

    # Keep the best prefix of the swap sequence.
    best_prefix, best_total, running = 0, 0.0, 0.0
    for index, (_, _, gain) in enumerate(swap_sequence, start=1):
        running += gain
        if running > best_total + 1e-12:
            best_total = running
            best_prefix = index
    if best_prefix == 0:
        return False, dict(assignment)
    result = dict(assignment)
    for a, b, _ in swap_sequence[:best_prefix]:
        result[a], result[b] = result[b], result[a]
    return True, result


def _top_unlocked(
    nodes: list[Node],
    gains: dict[Node, float],
    locked: set[Node],
    limit: int = 16,
) -> list[Node]:
    unlocked = [n for n in nodes if n not in locked]
    unlocked.sort(key=lambda n: (-gains[n], str(n)))
    return unlocked[:limit]


def balanced_seed_bisection(graph: InteractionGraph) -> dict[Node, int]:
    """Greedy BFS-based seed bisection (before KL refinement).

    Grows part 0 from the heaviest-degree node, always absorbing the
    frontier node most connected to the growing part, until half the
    total node weight is absorbed.
    """
    nodes = graph.nodes
    if not nodes:
        return {}
    total_weight = sum(graph.node_weight(n) for n in nodes)
    target = total_weight / 2.0
    seed = max(nodes, key=lambda n: (graph.degree(n), str(n)))
    part0: set[Node] = set()
    part0_weight = 0.0
    # connection strength of candidate nodes to part 0
    connection: dict[Node, float] = {seed: 1.0}
    while connection and part0_weight < target:
        pick = max(
            connection, key=lambda n: (connection[n], -graph.degree(n), str(n))
        )
        del connection[pick]
        part0.add(pick)
        part0_weight += graph.node_weight(pick)
        for nbr, w in graph.neighbors(pick).items():
            if nbr not in part0:
                connection[nbr] = connection.get(nbr, 0.0) + w
        if not connection:
            remaining = [n for n in nodes if n not in part0]
            if remaining and part0_weight < target:
                connection[min(remaining, key=str)] = 0.0
    return {n: (0 if n in part0 else 1) for n in nodes}
