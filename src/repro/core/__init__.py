"""Top-level analysis: toolflow, resources, crossover, sensitivity."""

from .calibration import CALIBRATION_SIM_SIZES, AppCalibration, calibrate_app
from .crossover import (
    CrossoverAnalysis,
    RatioPoint,
    analyze_crossover,
    sweep_sizes,
)
from .report import (
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9,
    format_table1,
    format_table2_rows,
)
from .resources import (
    ANCILLA_TILE_FACTOR,
    DEFAULT_CONSTANTS,
    CommunicationConstants,
    SpaceTimeEstimate,
    estimate_double_defect,
    estimate_planar,
)
from .sensitivity import (
    FIGURE9_VARIANTS,
    BoundaryLine,
    boundary_for_app,
    sweep_error_rates,
)
from .toolflow import ToolflowResult, run_toolflow

__all__ = [
    "AppCalibration",
    "calibrate_app",
    "CALIBRATION_SIM_SIZES",
    "CommunicationConstants",
    "DEFAULT_CONSTANTS",
    "ANCILLA_TILE_FACTOR",
    "SpaceTimeEstimate",
    "estimate_planar",
    "estimate_double_defect",
    "RatioPoint",
    "CrossoverAnalysis",
    "analyze_crossover",
    "sweep_sizes",
    "BoundaryLine",
    "boundary_for_app",
    "sweep_error_rates",
    "FIGURE9_VARIANTS",
    "ToolflowResult",
    "run_toolflow",
    "format_table1",
    "format_table2_rows",
    "format_fig6",
    "format_fig7",
    "format_fig8",
    "format_fig9",
]
