"""Text-table renderers matching the paper's tables and figures."""

from __future__ import annotations

from typing import Optional, Sequence

from ..network.braidsim import BraidSimResult
from .crossover import CrossoverAnalysis
from .sensitivity import BoundaryLine

__all__ = [
    "format_table1",
    "format_table2_rows",
    "format_fig6",
    "format_fig7",
    "format_fig8",
    "format_fig9",
]


def format_table1(
    teleport_qubit_cost: float,
    teleport_latency: float,
    braid_qubit_cost: float,
    braid_latency: float,
) -> str:
    """Table 1: communication tradeoff summary, with measured values."""

    def level(value: float, other: float) -> str:
        return "Low" if value < other else "High"

    rows = [
        ("", "Communication", "Space", "Time", "Prefetchable?"),
        ("", "Method", "(Qubits)", "(Latency)", ""),
        (
            "Planar",
            "Teleportation",
            f"{level(teleport_qubit_cost, braid_qubit_cost)} "
            f"({teleport_qubit_cost:.0f})",
            f"{level(teleport_latency, braid_latency)} "
            f"({teleport_latency:.0f} cyc)",
            "Yes",
        ),
        (
            "Double-Defect",
            "Braiding",
            f"{level(braid_qubit_cost, teleport_qubit_cost)} "
            f"({braid_qubit_cost:.0f})",
            f"{level(braid_latency, teleport_latency)} "
            f"({braid_latency:.0f} cyc)",
            "No",
        ),
    ]
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    return "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    )


def format_table2_rows(rows: Sequence[tuple[str, str, float, float]]) -> str:
    """Table 2: (application, purpose, paper parallelism, measured)."""
    header = (
        f"{'Application':<28} {'Paper par.':>10} {'Measured par.':>14}"
    )
    lines = [header, "-" * len(header)]
    for name, _, paper, measured in rows:
        lines.append(f"{name:<28} {paper:>10.1f} {measured:>14.1f}")
    return "\n".join(lines)


def format_fig6(
    results: dict[str, dict[int, BraidSimResult]]
) -> str:
    """Figure 6: ratio and utilization per (application, policy)."""
    lines = [
        f"{'App':<8} {'Policy':>6} {'Sched/CP':>10} {'MeshUtil%':>10} "
        f"{'Drops':>8} {'Adaptive':>9}"
    ]
    lines.append("-" * len(lines[0]))
    for app, by_policy in results.items():
        for policy in sorted(by_policy):
            r = by_policy[policy]
            lines.append(
                f"{app:<8} {policy:>6} {r.schedule_to_critical_ratio:>10.2f} "
                f"{r.mean_utilization * 100:>10.1f} {r.drops:>8} "
                f"{r.adaptive_routes:>9}"
            )
    return "\n".join(lines)


def format_fig7(
    rows: Sequence[tuple[float, float, float, float, float]]
) -> str:
    """Figure 7: (size, planar_s, dd_s, planar_qubits, dd_qubits)."""
    header = (
        f"{'1/pL':>10} {'planar time(s)':>15} {'dd time(s)':>12} "
        f"{'planar qubits':>14} {'dd qubits':>12}"
    )
    lines = [header, "-" * len(header)]
    for size, pt, dt, pq, dq in rows:
        lines.append(
            f"{size:>10.1e} {pt:>15.3e} {dt:>12.3e} {pq:>14.3e} {dq:>12.3e}"
        )
    return "\n".join(lines)


def format_fig8(analysis: CrossoverAnalysis) -> str:
    """Figure 8: normalized double-defect/planar ratios per size."""
    header = (
        f"{'1/pL':>10} {'qubit ratio':>12} {'time ratio':>11} "
        f"{'qubits x time':>14} {'favored':>14}"
    )
    lines = [f"[{analysis.app_name}]", header, "-" * len(header)]
    for point in analysis.points:
        lines.append(
            f"{point.computation_size:>10.1e} {point.qubit_ratio:>12.2f} "
            f"{point.time_ratio:>11.2f} {point.spacetime_ratio:>14.2f} "
            f"{'planar' if point.planar_favored else 'double-defect':>14}"
        )
    if analysis.crossover_size is not None:
        lines.append(f"cross-over point: 1/pL ~ {analysis.crossover_size:.2e}")
    else:
        lines.append("no cross-over in range (planar favored throughout)")
    return "\n".join(lines)


def format_fig9(lines_data: Sequence[BoundaryLine]) -> str:
    """Figure 9: crossover boundary (1/pL) per (app, pP)."""
    rates = lines_data[0].error_rates if lines_data else ()
    header = f"{'pP':>8} " + " ".join(
        f"{line.app_name:>18}" for line in lines_data
    )
    out = [header, "-" * len(header)]
    for i, rate in enumerate(rates):
        cells = []
        for line in lines_data:
            value: Optional[float] = line.crossover_sizes[i]
            cells.append(f"{value:>18.1e}" if value is not None else
                         f"{'> range':>18}")
        out.append(f"{rate:>8.0e} " + " ".join(cells))
    return "\n".join(out)
