"""Simulator-backed calibration of the analytic resource model.

The resource estimator (``core.resources``) extrapolates to computation
sizes far beyond what the cycle-accurate simulators can execute; its
application-dependent congestion inputs come from running those
simulators on small instances:

* **Braid congestion** -- the tiled-architecture braid simulator's
  schedule-to-critical-path ratio under a given policy (Figure 6's
  converged value).  High-parallelism applications congest more, which
  is exactly the effect that moves their planar/double-defect crossover
  (Figures 8 and 9).
* **EPR stall overhead** -- the Multi-SIMD pipeline's fractional latency
  increase at the default window (Section 8.1 reports <= ~4%).

The simulations run through :mod:`repro.runner.stages`, so they share
results with any sweep using the same stage cache: a Figure 6 policy
sweep at the calibration sizes leaves the policy-6 braid results the
calibration needs already cached, and vice versa.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from ..apps.registry import SIM_SIZES, get_app
from ..apps.scaling import AppScalingModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runner.cache import StageCache

__all__ = ["AppCalibration", "calibrate_app", "CALIBRATION_SIM_SIZES"]

CALIBRATION_SIM_SIZES: dict[str, int] = dict(SIM_SIZES)
"""Instance sizes used for simulator calibration (a copy of the
registry's :data:`~repro.apps.registry.SIM_SIZES`, kept as a public
name for backward compatibility)."""


@dataclasses.dataclass(frozen=True)
class AppCalibration:
    """Calibrated inputs for one application (+ inlining variant).

    Attributes:
        scaling: Power-law scaling model (qubits, depth, gate mix).
        braid_congestion: Braid schedule / critical-path ratio, policy 6.
        epr_overhead: Fractional EPR stall overhead at default window.
    """

    scaling: AppScalingModel
    braid_congestion: float
    epr_overhead: float


_CACHE: dict[tuple[str, Optional[int], int, int], AppCalibration] = {}


def _variant_scaling(
    spec, inline_depth: int, stage_cache: "StageCache"
) -> AppScalingModel:
    """Variant-specific scaling: fit from two sizes of this variant.

    The calibration circuits compile through
    :func:`repro.runner.stages.compute_frontend`, so a sweep that
    already touched the same (app, size, inline_depth) frontends --
    or a repeated calibration -- reuses them from the stage cache
    instead of recompiling.
    """
    from statistics import fmean

    from ..apps.scaling import CALIBRATION_SIZES, PowerLaw
    from ..runner import stages

    sizes = CALIBRATION_SIZES[spec.name][-2:]
    estimates = [
        stages.compute_frontend(
            stage_cache, spec.name, s, inline_depth
        ).logical
        for s in sizes
    ]
    ops = [e.total_operations for e in estimates]
    return AppScalingModel(
        app_name=f"{spec.name}-inline{inline_depth}",
        qubits_vs_ops=PowerLaw.fit(ops, [e.num_qubits for e in estimates]),
        depth_vs_ops=PowerLaw.fit(ops, [e.critical_path for e in estimates]),
        parallelism_factor=fmean(
            [e.parallelism_factor for e in estimates]
        ),
        t_fraction=fmean([e.t_fraction for e in estimates]),
        two_qubit_fraction=fmean(
            [e.two_qubit_count / e.total_operations for e in estimates]
        ),
        calibration_ops=tuple(ops),
    )


def calibrate_app(
    app_name: str,
    inline_depth: Optional[int] = None,
    policy: int = 6,
    distance: int = 5,
    sim_size: Optional[int] = None,
    use_cache: bool = True,
    cache: Optional["StageCache"] = None,
) -> AppCalibration:
    """Measure the calibration inputs for one application variant.

    Args:
        app_name: Registry name.
        inline_depth: Flattening depth (None = fully inlined; 0 = the
            paper's "semi-inlined" variant).
        policy: Braid policy used for the congestion measurement.
        distance: Code distance for the calibration simulations.
        sim_size: Override the calibration instance size.
        use_cache: Reuse previous measurements for the same variant.
        cache: Stage cache for the underlying simulations (the
            process-wide default cache if omitted).
    """
    from ..runner import stages

    spec = get_app(app_name)
    key = (spec.name, inline_depth, policy, distance)
    # The memo only applies to the default stage cache: with an explicit
    # cache the caller expects *that* cache to serve (and be filled by)
    # the simulations.
    memoizable = use_cache and sim_size is None and cache is None
    if memoizable and key in _CACHE:
        return _CACHE[key]

    size = sim_size if sim_size is not None else spec.sim_size
    if cache is not None:
        stage_cache = cache
    elif use_cache:
        stage_cache = stages.default_cache()
    else:
        # use_cache=False promises a fresh measurement: don't let the
        # process-wide stage cache serve memoized simulations.
        stage_cache = stages.StageCache()

    if inline_depth is None:
        # Routed through the `scaling` stage: the calibration circuits
        # compile once per app per cache (and persist to its disk level).
        scaling = stages.compute_scaling(stage_cache, spec.name)
    else:
        scaling = _variant_scaling(spec, inline_depth, stage_cache)

    braid = stages.compute_braid(
        stage_cache,
        spec.name,
        size,
        inline_depth,
        policy=policy,
        distance=distance,
        optimize_layout=True,
    )
    congestion = max(1.0, braid.schedule_to_critical_ratio)

    epr = stages.compute_epr(
        stage_cache,
        spec.name,
        size,
        inline_depth,
        regions=4,
        distance=distance,
    )
    overhead = max(0.0, epr.latency_overhead)

    result = AppCalibration(
        scaling=scaling,
        braid_congestion=congestion,
        epr_overhead=overhead,
    )
    if memoizable:
        _CACHE[key] = result
    return result
