"""Simulator-backed calibration of the analytic resource model.

The resource estimator (``core.resources``) extrapolates to computation
sizes far beyond what the cycle-accurate simulators can execute; its
application-dependent congestion inputs come from running those
simulators on small instances:

* **Braid congestion** -- the tiled-architecture braid simulator's
  schedule-to-critical-path ratio under a given policy (Figure 6's
  converged value).  High-parallelism applications congest more, which
  is exactly the effect that moves their planar/double-defect crossover
  (Figures 8 and 9).
* **EPR stall overhead** -- the Multi-SIMD pipeline's fractional latency
  increase at the default window (Section 8.1 reports <= ~4%).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..apps.registry import get_app
from ..apps.scaling import AppScalingModel, calibrate
from ..arch.multisimd import build_multisimd_machine
from ..arch.tiled import build_tiled_machine
from ..frontend.decompose import decompose_circuit

__all__ = ["AppCalibration", "calibrate_app", "CALIBRATION_SIM_SIZES"]

CALIBRATION_SIM_SIZES: dict[str, int] = {
    "gse": 4,
    "sq": 3,
    "sha1": 4,
    "im": 12,
}
"""Instance sizes used for simulator calibration (small enough to run in
seconds, large enough to exhibit each app's contention regime)."""


@dataclasses.dataclass(frozen=True)
class AppCalibration:
    """Calibrated inputs for one application (+ inlining variant).

    Attributes:
        scaling: Power-law scaling model (qubits, depth, gate mix).
        braid_congestion: Braid schedule / critical-path ratio, policy 6.
        epr_overhead: Fractional EPR stall overhead at default window.
    """

    scaling: AppScalingModel
    braid_congestion: float
    epr_overhead: float


_CACHE: dict[tuple[str, Optional[int]], AppCalibration] = {}


def calibrate_app(
    app_name: str,
    inline_depth: Optional[int] = None,
    policy: int = 6,
    distance: int = 5,
    sim_size: Optional[int] = None,
    use_cache: bool = True,
) -> AppCalibration:
    """Measure the calibration inputs for one application variant.

    Args:
        app_name: Registry name.
        inline_depth: Flattening depth (None = fully inlined; 0 = the
            paper's "semi-inlined" variant).
        policy: Braid policy used for the congestion measurement.
        distance: Code distance for the calibration simulations.
        sim_size: Override the calibration instance size.
        use_cache: Reuse previous measurements for the same variant.
    """
    spec = get_app(app_name)
    key = (spec.name, inline_depth)
    if use_cache and sim_size is None and key in _CACHE:
        return _CACHE[key]

    size = sim_size if sim_size is not None else CALIBRATION_SIM_SIZES[spec.name]
    circuit = decompose_circuit(spec.circuit(size, inline_depth=inline_depth))

    if inline_depth is None:
        scaling = calibrate(spec.name)
    else:
        # Variant-specific scaling: fit from two sizes of this variant.
        from ..apps.scaling import CALIBRATION_SIZES

        sizes = CALIBRATION_SIZES[spec.name][-2:]
        estimates = []
        from ..frontend.estimate import estimate_circuit

        for s in sizes:
            lowered = decompose_circuit(spec.circuit(s, inline_depth=inline_depth))
            estimates.append(estimate_circuit(lowered))
        from ..apps.scaling import PowerLaw
        import numpy as np

        ops = [e.total_operations for e in estimates]
        scaling = AppScalingModel(
            app_name=f"{spec.name}-inline{inline_depth}",
            qubits_vs_ops=PowerLaw.fit(ops, [e.num_qubits for e in estimates]),
            depth_vs_ops=PowerLaw.fit(ops, [e.critical_path for e in estimates]),
            parallelism_factor=float(
                np.mean([e.parallelism_factor for e in estimates])
            ),
            t_fraction=float(np.mean([e.t_fraction for e in estimates])),
            two_qubit_fraction=float(
                np.mean(
                    [e.two_qubit_count / e.total_operations for e in estimates]
                )
            ),
            calibration_ops=tuple(ops),
        )

    machine = build_tiled_machine(circuit, optimize_layout=True)
    braid = machine.simulate(policy, distance)
    congestion = max(1.0, braid.schedule_to_critical_ratio)

    simd = build_multisimd_machine(circuit, regions=4)
    schedule = simd.schedule()
    epr = simd.epr_pipeline(schedule, distance)
    overhead = max(0.0, epr.latency_overhead)

    result = AppCalibration(
        scaling=scaling,
        braid_congestion=congestion,
        epr_overhead=overhead,
    )
    if use_cache and sim_size is None:
        _CACHE[key] = result
    return result
