"""End-to-end toolflow (Figure 4): application -> physical estimate.

``run_toolflow`` chains every stage the paper's Figure 4 depicts:
frontend compilation (flatten, decompose, estimate), backend mapping
(layout, machine construction), network simulation (braids for
double-defect, SIMD schedule + EPR pipeline for planar), and the final
space-time resource accounting for both codes.

Each stage runs through :mod:`repro.runner.stages`, memoized in a
:class:`~repro.runner.cache.StageCache` keyed by the stage's inputs, so
repeated runs sharing a prefix (the same circuit across policies,
distances, or technologies) compute the shared work once per process.
Pass ``cache`` to control sharing explicitly; by default the
process-wide cache is used.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from ..arch.multisimd import MultiSimdMachine
from ..arch.tiled import TiledMachine
from ..frontend.estimate import LogicalEstimate
from ..network.braidsim import BraidSimResult
from ..network.epr import EprPipelineResult
from ..qasm.circuit import Circuit
from ..qec.distance import choose_distance
from ..tech import Technology
from .resources import (
    DEFAULT_CONSTANTS,
    CommunicationConstants,
    SpaceTimeEstimate,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runner.cache import StageCache

__all__ = ["ToolflowResult", "run_toolflow"]


@dataclasses.dataclass(frozen=True)
class ToolflowResult:
    """Everything the toolflow produces for one application instance.

    Attributes:
        circuit: The flat Clifford+T circuit.
        logical: Frontend resource/parallelism estimate.
        distance: Selected code distance.
        tiled_machine: Sized double-defect machine.
        braid_result: Braid network simulation outcome.
        simd_machine: Sized Multi-SIMD machine.
        epr_result: Pipelined EPR distribution outcome.
        planar_estimate: Planar space-time estimate at this size.
        double_defect_estimate: Double-defect space-time estimate.
    """

    circuit: Circuit
    logical: LogicalEstimate
    distance: int
    tiled_machine: TiledMachine
    braid_result: BraidSimResult
    simd_machine: MultiSimdMachine
    epr_result: EprPipelineResult
    planar_estimate: SpaceTimeEstimate
    double_defect_estimate: SpaceTimeEstimate

    @property
    def preferred_code(self) -> str:
        """The code with the smaller qubits x time product."""
        if (
            self.planar_estimate.spacetime
            <= self.double_defect_estimate.spacetime
        ):
            return self.planar_estimate.code_name
        return self.double_defect_estimate.code_name


def run_toolflow(
    app_name: str,
    size: Optional[int] = None,
    tech: Optional[Technology] = None,
    policy: int = 6,
    regions: int = 4,
    inline_depth: Optional[int] = None,
    constants: CommunicationConstants = DEFAULT_CONSTANTS,
    cache: Optional["StageCache"] = None,
) -> ToolflowResult:
    """Run the full Figure 4 pipeline on one application instance.

    Args:
        app_name: Registry application name.
        size: Problem size knob (app default if omitted).
        tech: Technology preset (defaults to ``repro.INTERMEDIATE``).
        policy: Braid scheduling policy for the tiled simulation.
        regions: SIMD region count for the Multi-SIMD machine.
        inline_depth: Flattening depth (None = full inlining).
        constants: Communication model constants.
        cache: Stage cache to run through (the process-wide default
            cache if omitted, so repeated calls share stage results).
    """
    from ..runner import stages
    from ..tech import INTERMEDIATE

    tech = tech or INTERMEDIATE
    cache = cache if cache is not None else stages.default_cache()

    fe = stages.compute_frontend(cache, app_name, size, inline_depth)
    distance = choose_distance(fe.logical.target_pl, tech)

    # The reference toolflow always maps onto the interaction-aware
    # layout, whichever policy schedules the braids.
    tiled = stages.compute_layout(
        cache, app_name, size, inline_depth, optimize_layout=True
    )
    braid = stages.compute_braid(
        cache,
        app_name,
        size,
        inline_depth,
        policy=policy,
        distance=distance,
        optimize_layout=True,
    )

    simd = stages.compute_simd(cache, app_name, size, inline_depth, regions)
    epr = stages.compute_epr(
        cache,
        app_name,
        size,
        inline_depth,
        regions=regions,
        distance=distance,
    )

    accounting = stages.compute_accounting(
        cache,
        app_name,
        fe.logical.computation_size,
        tech,
        congestion=max(1.0, braid.schedule_to_critical_ratio),
        constants=constants,
    )
    return ToolflowResult(
        circuit=fe.circuit,
        logical=fe.logical,
        distance=distance,
        tiled_machine=tiled,
        braid_result=braid,
        simd_machine=simd.machine,
        epr_result=epr,
        planar_estimate=accounting.planar,
        double_defect_estimate=accounting.double_defect,
    )
