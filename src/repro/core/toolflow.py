"""End-to-end toolflow (Figure 4): application -> physical estimate.

``run_toolflow`` chains every stage the paper's Figure 4 depicts:
frontend compilation (flatten, decompose, estimate), backend mapping
(layout, machine construction), network simulation (braids for
double-defect, SIMD schedule + EPR pipeline for planar), and the final
space-time resource accounting for both codes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..apps.registry import get_app
from ..apps.scaling import calibrate
from ..arch.multisimd import MultiSimdMachine, build_multisimd_machine
from ..arch.tiled import TiledMachine, build_tiled_machine
from ..frontend.decompose import decompose_circuit
from ..frontend.estimate import LogicalEstimate, estimate_circuit
from ..network.braidsim import BraidSimResult
from ..network.epr import EprPipelineResult
from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag
from ..qec.distance import choose_distance
from ..tech import Technology
from .calibration import AppCalibration, calibrate_app
from .resources import (
    DEFAULT_CONSTANTS,
    CommunicationConstants,
    SpaceTimeEstimate,
    estimate_double_defect,
    estimate_planar,
)

__all__ = ["ToolflowResult", "run_toolflow"]


@dataclasses.dataclass(frozen=True)
class ToolflowResult:
    """Everything the toolflow produces for one application instance.

    Attributes:
        circuit: The flat Clifford+T circuit.
        logical: Frontend resource/parallelism estimate.
        distance: Selected code distance.
        tiled_machine: Sized double-defect machine.
        braid_result: Braid network simulation outcome.
        simd_machine: Sized Multi-SIMD machine.
        epr_result: Pipelined EPR distribution outcome.
        planar_estimate: Planar space-time estimate at this size.
        double_defect_estimate: Double-defect space-time estimate.
    """

    circuit: Circuit
    logical: LogicalEstimate
    distance: int
    tiled_machine: TiledMachine
    braid_result: BraidSimResult
    simd_machine: MultiSimdMachine
    epr_result: EprPipelineResult
    planar_estimate: SpaceTimeEstimate
    double_defect_estimate: SpaceTimeEstimate

    @property
    def preferred_code(self) -> str:
        """The code with the smaller qubits x time product."""
        if (
            self.planar_estimate.spacetime
            <= self.double_defect_estimate.spacetime
        ):
            return self.planar_estimate.code_name
        return self.double_defect_estimate.code_name


def run_toolflow(
    app_name: str,
    size: Optional[int] = None,
    tech: Optional[Technology] = None,
    policy: int = 6,
    regions: int = 4,
    inline_depth: Optional[int] = None,
    constants: CommunicationConstants = DEFAULT_CONSTANTS,
) -> ToolflowResult:
    """Run the full Figure 4 pipeline on one application instance.

    Args:
        app_name: Registry application name.
        size: Problem size knob (app default if omitted).
        tech: Technology preset (defaults to ``repro.INTERMEDIATE``).
        policy: Braid scheduling policy for the tiled simulation.
        regions: SIMD region count for the Multi-SIMD machine.
        inline_depth: Flattening depth (None = full inlining).
        constants: Communication model constants.
    """
    from ..tech import INTERMEDIATE

    tech = tech or INTERMEDIATE
    spec = get_app(app_name)
    circuit = decompose_circuit(spec.circuit(size, inline_depth=inline_depth))
    dag = CircuitDag(circuit)
    logical = estimate_circuit(circuit, dag)
    distance = choose_distance(logical.target_pl, tech)

    tiled = build_tiled_machine(circuit, optimize_layout=True)
    braid = tiled.simulate(policy, distance, dag=dag)

    simd = build_multisimd_machine(circuit, regions=regions)
    schedule = simd.schedule(dag)
    epr = simd.epr_pipeline(schedule, distance)

    calibration = AppCalibration(
        scaling=calibrate(spec.name),
        braid_congestion=max(1.0, braid.schedule_to_critical_ratio),
        epr_overhead=max(0.0, epr.latency_overhead),
    )
    planar_est = estimate_planar(
        calibration.scaling, logical.computation_size, tech, constants
    )
    dd_est = estimate_double_defect(
        calibration.scaling,
        logical.computation_size,
        tech,
        congestion=calibration.braid_congestion,
        constants=constants,
    )
    return ToolflowResult(
        circuit=circuit,
        logical=logical,
        distance=distance,
        tiled_machine=tiled,
        braid_result=braid,
        simd_machine=simd,
        epr_result=epr,
        planar_estimate=planar_est,
        double_defect_estimate=dd_est,
    )
