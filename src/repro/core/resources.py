"""Space-time resource estimation for both codes (Figures 7 and 8).

For a computation of ``K`` logical operations, the estimator combines:

* the frontend's application model (logical qubits, parallelism, gate
  mix -- extrapolated by :mod:`repro.apps.scaling`),
* code distance selection (:mod:`repro.qec.distance`),
* tile footprints (:mod:`repro.qec.codes`), and
* a communication time model whose congestion parameters are
  *calibrated from the cycle-accurate simulators* on small instances.

Communication models:

**Double-defect / braiding.**  Every 2-qubit or T operation is a braid
(1-cycle claim, d-cycle stabilization); congestion inflates the schedule
by the factor the braid simulator measures for this application
(Figure 6's schedule-to-critical-path ratio, policy 6).

**Planar / teleportation.**  Logical ops take d cycles; a teleport adds
a small constant.  EPR distribution is prefetched, so it costs nothing
*until* the swap-chain latency (~ sqrt(n) tiles x d cycles/tile) exceeds
the just-in-time lead budget; past that point every communication op
stalls for the uncovered remainder, shared across the channel pool.
This is the space-time cap of Section 8.1: bounded EPR qubit budget
means bounded prefetch lead.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..apps.scaling import AppScalingModel
from ..qec.codes import DOUBLE_DEFECT, PLANAR, SurfaceCode
from ..qec.distance import choose_distance
from ..tech import Technology

__all__ = [
    "CommunicationConstants",
    "SpaceTimeEstimate",
    "estimate_planar",
    "estimate_double_defect",
]

ANCILLA_TILE_FACTOR = 1.25
"""Data + ancilla region tiles per logical data qubit (Section 4.3's
1:4 ancilla-to-data balance, covering factories and buffers)."""


@dataclasses.dataclass(frozen=True)
class CommunicationConstants:
    """Tunable constants of the communication time models.

    Attributes:
        mean_hop_fraction: Mean communication distance as a fraction of
            the mesh side length sqrt(n).
        swap_cycles_per_tile: EC cycles for an EPR half to cross one
            tile per unit code distance.
        teleport_cycles: Constant teleport latency (EC cycles).
        epr_lead_budget: Maximum prefetch lead (EC cycles) the EPR
            qubit budget sustains; distribution latency beyond this
            stalls the consumer (Section 8.1's window cap).
        epr_channels: Concurrent swap-channel capacity absorbing stalls.
    """

    mean_hop_fraction: float = 0.5
    swap_cycles_per_tile: float = 1.0
    teleport_cycles: float = 2.0
    epr_lead_budget: float = 2048.0
    epr_channels: float = 8.0


DEFAULT_CONSTANTS = CommunicationConstants()


@dataclasses.dataclass(frozen=True)
class SpaceTimeEstimate:
    """Resource estimate for one (application, size, code, technology).

    Attributes:
        code_name: ``"planar"`` or ``"double-defect"``.
        computation_size: K, total logical operations (= 1 / (2 pL)).
        distance: Selected code distance.
        logical_qubits: Application logical qubits.
        physical_qubits: Total physical qubits including ancilla regions.
        cycles: Execution time in error-correction cycles.
        seconds: Wall-clock execution time.
    """

    code_name: str
    computation_size: float
    distance: int
    logical_qubits: int
    physical_qubits: float
    cycles: float
    seconds: float

    @property
    def spacetime(self) -> float:
        """The paper's favorability metric: qubits x time."""
        return self.physical_qubits * self.seconds


def _common(
    model: AppScalingModel, computation_size: float, tech: Technology
) -> tuple[int, int, float, float]:
    """Shared pieces: distance, logical qubits, depth, comm rate."""
    if computation_size < 1:
        raise ValueError(
            f"computation_size must be >= 1, got {computation_size}"
        )
    target_pl = 0.5 / computation_size
    distance = choose_distance(target_pl, tech)
    logical_qubits = model.logical_qubits(computation_size)
    depth = computation_size / max(model.parallelism_factor, 1.0)
    comm_rate = (
        model.two_qubit_fraction + model.t_fraction
    ) * model.parallelism_factor
    return distance, logical_qubits, depth, comm_rate


def estimate_planar(
    model: AppScalingModel,
    computation_size: float,
    tech: Technology,
    constants: CommunicationConstants = DEFAULT_CONSTANTS,
    code: SurfaceCode = PLANAR,
) -> SpaceTimeEstimate:
    """Planar-code estimate on the Multi-SIMD architecture."""
    d, n, depth, comm_rate = _common(model, computation_size, tech)
    del comm_rate  # EPR channels are provisioned proportionally to demand
    c = constants
    # Prefetched-EPR stall: swap-chain latency beyond the lead budget.
    # Channel capacity scales with communication demand (Section 8.1:
    # "degree of application parallelism has little effect, since
    # ancillas do not follow regular data dependencies"), so the residual
    # stall per logical cycle is demand-independent.
    distribution = c.mean_hop_fraction * math.sqrt(n) * d * c.swap_cycles_per_tile
    # Smooth saturating stall: negligible while distribution latency is
    # well under the lead budget (fully hidden), approaching the full
    # distribution latency once it dwarfs the budget.  The soft knee
    # models the spread of communication distances around the mean -- a
    # fraction of pairs miss the budget before the mean does.
    stall_per_op = distribution * distribution / (
        distribution + c.epr_lead_budget
    )
    per_cycle = d + c.teleport_cycles + stall_per_op / c.epr_channels
    cycles = depth * per_cycle
    # EPR buffers/factories scale with the data region, not a constant.
    epr_tiles = max(2.0, 0.05 * n)
    tiles = ANCILLA_TILE_FACTOR * n + epr_tiles
    physical = tiles * code.tile_qubits(d)
    return SpaceTimeEstimate(
        code_name=code.name,
        computation_size=computation_size,
        distance=d,
        logical_qubits=n,
        physical_qubits=physical,
        cycles=cycles,
        seconds=tech.seconds(cycles),
    )


def estimate_double_defect(
    model: AppScalingModel,
    computation_size: float,
    tech: Technology,
    congestion: float = 1.0,
    constants: CommunicationConstants = DEFAULT_CONSTANTS,
    code: SurfaceCode = DOUBLE_DEFECT,
) -> SpaceTimeEstimate:
    """Double-defect estimate on the tiled architecture.

    Args:
        congestion: Braid schedule inflation (schedule / critical path)
            measured by the braid simulator for this application under
            the chosen policy (>= 1; Figure 6).
    """
    if congestion < 1.0:
        raise ValueError(f"congestion factor must be >= 1, got {congestion}")
    d, n, depth, _ = _common(model, computation_size, tech)
    per_op = 2 * d + 2  # Figure 5: two stabilized braid segments
    cycles = depth * per_op * congestion
    tiles = ANCILLA_TILE_FACTOR * n
    physical = tiles * code.tile_qubits(d)
    return SpaceTimeEstimate(
        code_name=code.name,
        computation_size=computation_size,
        distance=d,
        logical_qubits=n,
        physical_qubits=physical,
        cycles=cycles,
        seconds=tech.seconds(cycles),
    )
