"""Planar vs double-defect favorability analysis (Figure 8).

"Favorability cross-over occurs where the space-time ratio
(qubits x time) crosses 1" -- below the crossover size planar codes win
(smaller tiles), above it double-defect codes win (braids beat swaps,
unless congestion intervenes).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

from ..tech import Technology
from .calibration import AppCalibration, calibrate_app
from .resources import (
    DEFAULT_CONSTANTS,
    CommunicationConstants,
    SpaceTimeEstimate,
    estimate_double_defect,
    estimate_planar,
)

__all__ = ["RatioPoint", "CrossoverAnalysis", "analyze_crossover", "sweep_sizes"]


@dataclasses.dataclass(frozen=True)
class RatioPoint:
    """Normalized resource usage at one computation size (Figure 8's
    y-values: double-defect relative to the planar baseline)."""

    computation_size: float
    qubit_ratio: float
    time_ratio: float
    planar: SpaceTimeEstimate
    double_defect: SpaceTimeEstimate

    @property
    def spacetime_ratio(self) -> float:
        return self.qubit_ratio * self.time_ratio

    @property
    def planar_favored(self) -> bool:
        return self.spacetime_ratio > 1.0


@dataclasses.dataclass(frozen=True)
class CrossoverAnalysis:
    """Sweep result for one application/technology pair.

    Attributes:
        app_name: Application (variant) name.
        points: Ratio points at the swept sizes.
        crossover_size: Smallest swept size where double-defect wins
            (None if planar wins everywhere in range).
    """

    app_name: str
    points: tuple[RatioPoint, ...]
    crossover_size: Optional[float]


def _ratio_point(
    calibration: AppCalibration,
    size: float,
    tech: Technology,
    constants: CommunicationConstants,
) -> RatioPoint:
    planar = estimate_planar(calibration.scaling, size, tech, constants)
    dd = estimate_double_defect(
        calibration.scaling,
        size,
        tech,
        congestion=calibration.braid_congestion,
        constants=constants,
    )
    return RatioPoint(
        computation_size=size,
        qubit_ratio=dd.physical_qubits / planar.physical_qubits,
        time_ratio=dd.seconds / planar.seconds,
        planar=planar,
        double_defect=dd,
    )


def sweep_sizes(
    min_exponent: float = 0.5, max_exponent: float = 24.0, per_decade: int = 1
) -> list[float]:
    """Log-spaced computation sizes (Figure 8's x-axis, 1e0..1e24)."""
    if max_exponent <= min_exponent:
        raise ValueError("max_exponent must exceed min_exponent")
    count = max(2, int((max_exponent - min_exponent) * per_decade) + 1)
    step = (max_exponent - min_exponent) / (count - 1)
    return [10 ** (min_exponent + i * step) for i in range(count)]


def analyze_crossover(
    app_name: str,
    tech: Technology,
    sizes: Optional[Sequence[float]] = None,
    inline_depth: Optional[int] = None,
    constants: CommunicationConstants = DEFAULT_CONSTANTS,
    calibration: Optional[AppCalibration] = None,
) -> CrossoverAnalysis:
    """Compute Figure 8's normalized-ratio sweep and the crossover point.

    The crossover is refined by bisection (in log-size) between the last
    planar-favored and first double-defect-favored swept sizes.
    """
    calibration = calibration or calibrate_app(app_name, inline_depth)
    swept = list(sizes) if sizes is not None else sweep_sizes()
    points = tuple(
        _ratio_point(calibration, size, tech, constants) for size in swept
    )
    crossover: Optional[float] = None
    for earlier, later in zip(points, points[1:]):
        if earlier.planar_favored and not later.planar_favored:
            crossover = _bisect(
                calibration,
                tech,
                constants,
                math.log10(earlier.computation_size),
                math.log10(later.computation_size),
            )
            break
    if crossover is None and points and not points[0].planar_favored:
        crossover = points[0].computation_size
    label = app_name if inline_depth is None else f"{app_name}-inline{inline_depth}"
    return CrossoverAnalysis(
        app_name=label, points=points, crossover_size=crossover
    )


def _bisect(
    calibration: AppCalibration,
    tech: Technology,
    constants: CommunicationConstants,
    low_exp: float,
    high_exp: float,
    iterations: int = 40,
) -> float:
    """Log-space bisection for the spacetime-ratio-equals-1 boundary."""
    for _ in range(iterations):
        mid = (low_exp + high_exp) / 2
        point = _ratio_point(calibration, 10**mid, tech, constants)
        if point.planar_favored:
            low_exp = mid
        else:
            high_exp = mid
    return 10 ** ((low_exp + high_exp) / 2)
