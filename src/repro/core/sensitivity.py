"""Crossover-boundary sensitivity over physical error rates (Figure 9).

Each application traces a boundary line in the (p_P, 1/p_L) plane:
design points below the line favor planar codes, above it double-defect
codes.  "Boundaries are generally higher for more parallel
applications" because congestion hurts braids more.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..tech import technology_for_error_rate
from .calibration import AppCalibration, calibrate_app
from .crossover import analyze_crossover, sweep_sizes
from .resources import DEFAULT_CONSTANTS, CommunicationConstants

__all__ = ["BoundaryLine", "sweep_error_rates", "boundary_for_app",
           "FIGURE9_VARIANTS"]

FIGURE9_VARIANTS: tuple[tuple[str, Optional[int]], ...] = (
    ("gse", None),
    ("sq", None),
    ("sha1", None),
    ("im", 0),      # IM_Semi_Inlined
    ("im", None),   # IM_Fully_Inlined
)
"""The five lines of Figure 9 (application, inline depth)."""


@dataclasses.dataclass(frozen=True)
class BoundaryLine:
    """One application's crossover boundary.

    Attributes:
        app_name: Application (variant) label.
        error_rates: Swept physical error rates p_P.
        crossover_sizes: Boundary computation size (1/p_L) per error
            rate; None where planar wins across the whole size range.
    """

    app_name: str
    error_rates: tuple[float, ...]
    crossover_sizes: tuple[Optional[float], ...]

    def as_rows(self) -> list[tuple[float, Optional[float]]]:
        return list(zip(self.error_rates, self.crossover_sizes))


def sweep_error_rates(
    min_exponent: float = -8.0, max_exponent: float = -3.0, per_decade: int = 1
) -> list[float]:
    """Figure 9's x-axis: p_P from 1e-8 (future) to 1e-3 (current)."""
    count = max(2, int((max_exponent - min_exponent) * per_decade) + 1)
    step = (max_exponent - min_exponent) / (count - 1)
    return [10 ** (min_exponent + i * step) for i in range(count)]


def boundary_for_app(
    app_name: str,
    inline_depth: Optional[int] = None,
    error_rates: Optional[Sequence[float]] = None,
    sizes: Optional[Sequence[float]] = None,
    constants: CommunicationConstants = DEFAULT_CONSTANTS,
    calibration: Optional[AppCalibration] = None,
) -> BoundaryLine:
    """Trace one Figure 9 boundary line."""
    calibration = calibration or calibrate_app(app_name, inline_depth)
    rates = tuple(error_rates) if error_rates is not None else tuple(
        sweep_error_rates()
    )
    swept = list(sizes) if sizes is not None else sweep_sizes()
    crossovers: list[Optional[float]] = []
    for rate in rates:
        tech = technology_for_error_rate(rate)
        analysis = analyze_crossover(
            app_name,
            tech,
            sizes=swept,
            inline_depth=inline_depth,
            constants=constants,
            calibration=calibration,
        )
        crossovers.append(analysis.crossover_size)
    label = app_name if inline_depth is None else f"{app_name}-inline{inline_depth}"
    return BoundaryLine(
        app_name=label,
        error_rates=rates,
        crossover_sizes=tuple(crossovers),
    )
