"""Determinism/purity linter for cached-stage code paths.

A standalone AST lint (stdlib :mod:`ast` only, run beside ruff in CI)
that walks Python sources and flags patterns which would silently break
the stage cache's soundness contract:

* **ND01 — nondeterminism near a StageKey**: a function that builds a
  :class:`~repro.runner.keys.StageKey` (calls ``StageKey.make``) also
  calls into ``time`` / ``random`` / ``uuid`` / ``secrets`` /
  ``os.urandom``, or feeds ``id(...)`` into the key itself.  Cache
  identities must be pure functions of stage parameters.
* **ND02 — unordered set feeding a key or payload**: a set literal,
  set comprehension, or ``set()`` / ``frozenset()`` call appears inside
  the argument list of ``StageKey.make`` or inside a ``to_jsonable``
  function without a wrapping ``sorted(...)``.  Key canonicalization
  sorts mappings, but an unsorted set reaching a serialized payload
  makes the persisted bytes run-dependent.
* **SK01 — stage parameter missing from its key**: a function that
  calls ``cache.get_or_compute`` must flow *every* parameter into key
  construction (``StageKey.make(...)``, a ``*_key(...)`` helper, or a
  ``.key()`` method); a parameter that never reaches the key means two
  different computations share a cache entry.
* **FM01 — frozen plan/route mutation**: ``object.__setattr__`` outside
  whitelisted constructor methods, or direct mutation of a
  ``plan.<attr>`` / ``routes.<attr>`` structure (item assignment,
  ``augmented`` assignment, or a mutating method call such as
  ``.append``) outside the ``BraidPlan`` / ``RouteTable`` classes
  themselves.  Plans are shared across threads and memoized by ``id``;
  mutating one corrupts every holder.

Findings are reported as :class:`~repro.analysis.diagnostics.Diagnostic`
objects whose ``pass_name`` is the rule id; a source line containing
``repro-lint: skip`` suppresses findings anchored on it.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .diagnostics import Diagnostic, Severity

__all__ = ["lint_source", "lint_paths"]

SUPPRESS_MARKER = "repro-lint: skip"

_NONDET_MODULES = {"time", "random", "uuid", "secrets"}

_CONSTRUCTOR_METHODS = {
    "__init__", "__post_init__", "__new__", "__setstate__", "__deepcopy__",
}

# Classes allowed to touch their own frozen internals.
_FROZEN_OWNERS = {"BraidPlan", "RouteTable"}

# Attribute roots whose contents are treated as frozen shared state.
_FROZEN_ROOTS = {"plan", "routes"}

_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "add", "discard", "setdefault", "popitem",
}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _call_name(node: ast.Call) -> str:
    """Dotted name of a call target: ``StageKey.make``, ``sorted``, ..."""
    parts: list[str] = []
    target: ast.expr = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return ".".join(reversed(parts))
    return ""


def _frozen_root(node: ast.expr) -> Optional[str]:
    """``plan`` for ``plan.tasks`` / ``self.plan.segments[i]``; else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    base = node.value
    while isinstance(base, (ast.Attribute, ast.Subscript)):
        if isinstance(base, ast.Attribute) and base.attr in _FROZEN_ROOTS:
            return base.attr
        base = base.value
    if isinstance(base, ast.Name) and base.id in _FROZEN_ROOTS:
        return base.id
    return None


class _Lint:
    def __init__(self, source: str, artifact: str):
        self.artifact = artifact
        self.lines = source.splitlines()
        self.findings: list[Diagnostic] = []

    def _suppressed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return SUPPRESS_MARKER in self.lines[line - 1]
        return False

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        if self._suppressed(node):
            return
        self.findings.append(Diagnostic(
            Severity.ERROR, rule, self.artifact,
            f"line {getattr(node, 'lineno', 0)}", message,
        ))

    # -- traversal ---------------------------------------------------------

    def run(self, tree: ast.Module) -> None:
        self._walk(tree.body, enclosing_class=None)

    def _walk(self, body: Sequence[ast.stmt], enclosing_class) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(stmt, enclosing_class)
                self._walk(stmt.body, enclosing_class)
            elif isinstance(stmt, ast.ClassDef):
                self._walk(stmt.body, enclosing_class=stmt.name)
            elif hasattr(stmt, "body"):
                self._walk(getattr(stmt, "body"), enclosing_class)
                for clause in getattr(stmt, "orelse", []) or []:
                    self._walk([clause], enclosing_class)
                for clause in getattr(stmt, "finalbody", []) or []:
                    self._walk([clause], enclosing_class)

    # -- per-function analysis ---------------------------------------------

    def _own_nodes(self, func: _FunctionNode) -> Iterable[ast.AST]:
        """Walk a function's body excluding nested function/class defs."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_function(self, func: _FunctionNode, enclosing_class) -> None:
        nodes = list(self._own_nodes(func))
        calls = [n for n in nodes if isinstance(n, ast.Call)]
        key_calls = [c for c in calls if _call_name(c) == "StageKey.make"]
        self._check_frozen_mutation(func, nodes, calls, enclosing_class)
        if key_calls:
            self._check_nondeterminism(calls, key_calls)
        self._check_set_hygiene(func, nodes, key_calls)
        if any(_call_name(c).endswith("get_or_compute") for c in calls):
            self._check_params_reach_key(func, nodes, calls)

    # ND01
    def _check_nondeterminism(
        self,
        calls: Sequence[ast.Call],
        key_calls: Sequence[ast.Call],
    ) -> None:
        for call in calls:
            name = _call_name(call)
            root = name.split(".", 1)[0]
            if root in _NONDET_MODULES or name == "os.urandom":
                self.report(
                    "ND01", call,
                    f"call to {name}() in a function that builds a "
                    "StageKey; cache identities must be deterministic",
                )
        for key_call in key_calls:
            for node in ast.walk(key_call):
                if (
                    isinstance(node, ast.Call)
                    and _call_name(node) == "id"
                ):
                    self.report(
                        "ND01", node,
                        "id() feeds a StageKey; object identities vary "
                        "between runs",
                    )

    # ND02
    def _check_set_hygiene(
        self,
        func: _FunctionNode,
        nodes: Sequence[ast.AST],
        key_calls: Sequence[ast.Call],
    ) -> None:
        def sets_not_sorted(root: ast.AST) -> Iterable[ast.AST]:
            # Yield unordered-set constructions not wrapped in sorted().
            stack: list[ast.AST] = [root]
            while stack:
                node = stack.pop()
                if (
                    isinstance(node, ast.Call)
                    and _call_name(node) in {"sorted", "len", "min", "max", "sum"}
                ):
                    continue
                if isinstance(node, (ast.Set, ast.SetComp)) or (
                    isinstance(node, ast.Call)
                    and _call_name(node) in {"set", "frozenset"}
                ):
                    yield node
                    continue
                stack.extend(ast.iter_child_nodes(node))

        for key_call in key_calls:
            for arg in [*key_call.args, *[k.value for k in key_call.keywords]]:
                for bad in sets_not_sorted(arg):
                    self.report(
                        "ND02", bad,
                        "unordered set feeds a StageKey; wrap it in "
                        "sorted(...) to make the identity stable",
                    )
        if func.name == "to_jsonable":
            for node in nodes:
                if isinstance(node, (ast.Return,)) and node.value is not None:
                    for bad in sets_not_sorted(node.value):
                        self.report(
                            "ND02", bad,
                            "unordered set in a serialized payload; "
                            "wrap it in sorted(...) so persisted bytes "
                            "are run-independent",
                        )

    # SK01
    def _check_params_reach_key(
        self,
        func: _FunctionNode,
        nodes: Sequence[ast.AST],
        calls: Sequence[ast.Call],
    ) -> None:
        args = func.args
        params = [
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        params = [
            p for p in params if p not in {"self", "cls", "cache", "key"}
        ]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        if not params:
            return

        # Names reaching key construction: arguments of StageKey.make,
        # of *_key(...) helpers, of .key() methods, and of
        # get_or_compute's key argument.
        key_exprs: list[ast.expr] = []
        for call in calls:
            name = _call_name(call)
            tail = name.rsplit(".", 1)[-1]
            if (
                name == "StageKey.make"
                or tail.endswith("_key")
                or tail == "key"
            ):
                key_exprs.extend(call.args)
                key_exprs.extend(k.value for k in call.keywords)
                if isinstance(call.func, ast.Attribute):
                    key_exprs.append(call.func.value)
            elif tail == "get_or_compute" and call.args:
                key_exprs.append(call.args[0])

        tainted: set[str] = set()
        for expr in key_exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Name):
                    tainted.add(node.id)

        # One-level fixpoint over simple assignments: if `x` is tainted
        # and `x = f(a, b)` / `x, y = f(a, b)`, then a and b are too
        # (covers `name, size = _resolve(app, size)`).
        assignments: list[tuple[set[str], set[str]]] = []
        for node in nodes:
            if isinstance(node, ast.Assign):
                targets: set[str] = set()
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            targets.add(sub.id)
                sources = {
                    sub.id
                    for sub in ast.walk(node.value)
                    if isinstance(sub, ast.Name)
                }
                assignments.append((targets, sources))
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                sources = {
                    sub.id
                    for sub in ast.walk(node.value)
                    if isinstance(sub, ast.Name)
                }
                assignments.append(({node.target.id}, sources))
        changed = True
        while changed:
            changed = False
            for targets, sources in assignments:
                if targets & tainted and not sources <= tainted:
                    tainted |= sources
                    changed = True

        for param in params:
            if param not in tainted:
                self.report(
                    "SK01", func,
                    f"parameter {param!r} of {func.name}() never flows "
                    "into the StageKey; two computations differing only "
                    "in it would share a cache entry",
                )

    # FM01
    def _check_frozen_mutation(
        self,
        func: _FunctionNode,
        nodes: Sequence[ast.AST],
        calls: Sequence[ast.Call],
        enclosing_class,
    ) -> None:
        for call in calls:
            if (
                _call_name(call) == "object.__setattr__"
                and func.name not in _CONSTRUCTOR_METHODS
            ):
                self.report(
                    "FM01", call,
                    f"object.__setattr__ outside a constructor "
                    f"(in {func.name}()); frozen instances must only "
                    "be written during construction",
                )
        if enclosing_class in _FROZEN_OWNERS:
            return
        for node in nodes:
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    # Item/attribute stores only: `self.plan = plan`
                    # is a rebinding, not a mutation.
                    if isinstance(t, ast.Subscript) or (
                        isinstance(t, ast.Attribute)
                        and _frozen_root(t.value) is not None
                    ):
                        target = t
                        break
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, (ast.Subscript, ast.Attribute)
            ):
                target = node.target
            if target is not None:
                root = _frozen_root(target)
                if root is not None:
                    self.report(
                        "FM01", node,
                        f"mutation of shared {root} state "
                        f"({ast.unparse(target)}); plans and route "
                        "tables are immutable once built",
                    )
        for call in calls:
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _MUTATING_METHODS
            ):
                root = _frozen_root(call.func.value)
                if root is not None:
                    self.report(
                        "FM01", call,
                        f"mutating call .{call.func.attr}() on shared "
                        f"{root} state ({ast.unparse(call.func.value)})",
                    )


def lint_source(
    source: str, artifact: str = "<string>"
) -> list[Diagnostic]:
    """Lint one Python source string; returns rule findings."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Diagnostic(
            Severity.ERROR, "parse", artifact,
            f"line {error.lineno or 0}", f"syntax error: {error.msg}",
        )]
    lint = _Lint(source, artifact)
    lint.run(tree)
    lint.findings.sort(key=lambda d: (d.artifact, d.location, d.pass_name))
    return lint.findings


def lint_paths(paths: Iterable[Union[str, Path]]) -> list[Diagnostic]:
    """Lint ``*.py`` under each path (file or directory tree)."""
    findings: list[Diagnostic] = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(
                lint_source(
                    file.read_text(encoding="utf-8"), artifact=str(file)
                )
            )
    return findings
