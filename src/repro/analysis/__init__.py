"""Static analysis layer: IR verifier, determinism linter, diagnostics.

Two prongs over the compiled toolflow:

* :mod:`.ir_checks` + :mod:`.verify` — multi-pass invariant
  verification of compiled artifacts (circuit, DAG, placement,
  :class:`~repro.network.plan.BraidPlan`), exposed as ``python -m
  repro check`` and as opt-in ``verify=`` hooks on cached stages.
* :mod:`.lint` — an AST determinism/purity linter over the source
  tree (``python -m repro lint``), catching nondeterministic inputs to
  cache keys, stage parameters that never reach their key, and
  mutation of frozen shared plan state.

Both report through :class:`.diagnostics.Diagnostic`.  Only
:mod:`.diagnostics` is imported eagerly: IR modules depend on it for
their guard exceptions, while the checker passes depend on the IR
modules — the lazy submodule access below keeps that from becoming an
import cycle.
"""

from .diagnostics import (
    AnalysisError,
    Diagnostic,
    PlanMismatchError,
    Severity,
    max_severity,
    raise_on_errors,
)

__all__ = [
    "AnalysisError",
    "Diagnostic",
    "PlanMismatchError",
    "Severity",
    "max_severity",
    "raise_on_errors",
    "check_circuit",
    "check_dag",
    "check_placement",
    "check_plan",
    "check_sched",
    "check_point_artifacts",
    "check_grid",
    "stage_verifier",
    "lowered_payload_check",
    "lint_source",
    "lint_paths",
]

_LAZY = {
    "check_circuit": "ir_checks",
    "check_dag": "ir_checks",
    "check_placement": "ir_checks",
    "check_plan": "ir_checks",
    "check_sched": "ir_checks",
    "check_point_artifacts": "ir_checks",
    "CheckReport": "verify",
    "check_grid": "verify",
    "stage_verifier": "verify",
    "lowered_payload_check": "verify",
    "lint_source": "lint",
    "lint_paths": "lint",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None and name in ("ir_checks", "lint", "verify"):
        module_name = name
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        value = module if name == module_name else getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
