"""Multi-pass static verifier over compiled toolflow artifacts.

Each pass takes one artifact of the Circuit -> DAG -> placement ->
BraidPlan pipeline and re-derives its invariants *independently* of the
code that built it (masks are recomputed from paths, the critical path
is recomputed from task latencies, in-degrees are recounted from the
edge lists), so a defect introduced anywhere — a buggy rewrite, a
corrupt cache payload, a mutated shared array — surfaces as a
structured :class:`~repro.analysis.diagnostics.Diagnostic` instead of
a wrong simulation result.

Passes:

* :func:`check_circuit` — gate arity/operand validity against the
  :data:`~repro.qasm.gates.GATE_SPECS` declarations, dangling
  operands, fence sanity; ``lowered=True`` additionally rejects
  composite gates; ``strict=True`` adds use-before-init and
  unused-qubit warnings.
* :func:`check_dag` — node/op count agreement, edge bounds, forward
  (program-order) edges, successor/predecessor mirror consistency,
  in-degree agreement, acyclicity by an independent Kahn sweep.
* :func:`check_placement` — positions on-grid, no double-booked sites,
  every operand qubit placed.
* :func:`check_plan` — :class:`~repro.network.plan.BraidPlan` internal
  consistency: array lengths and read-only (tuple) types, per-segment
  route endpoints on-mesh, link masks recomputed from paths, segment
  holds matching the plan's code distance, minimal route lengths,
  factory binding for magic-state consumers, DAG array agreement, and
  the policy-independent critical path re-derived from scratch.
* :func:`check_vec_plan` — the vectorized engine's word-packed
  derived arrays (:mod:`repro.network.braidsim_vec`) repacked to
  big-int masks and compared against the plan they were derived
  from; a no-op returning ``[]`` when numpy is absent.
* :func:`check_sched` — the scheduler-family artifacts of
  :mod:`repro.network.policies_sched`: the reservation schedule is
  replayed against a fresh modulo table (no double-booked link-cycle
  slot, dependence-respecting reserved cycles, achieved initiation
  interval >= the recomputed ``ii()`` bound, makespan >= the critical
  path), and the scoreboard dependency matrix is rebuilt from the
  DAG's successor lists and compared row for row.

All passes return ``list[Diagnostic]`` (empty == verified) and never
raise on malformed input; :func:`check_point_artifacts` composes them
for one design point.
"""

from __future__ import annotations

from typing import Optional

from ..network.mesh import BraidMesh, manhattan
from ..network.plan import BraidPlan
from ..partition.layout import Placement
from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag
from ..qasm.gates import GATE_SPECS, GateKind, canonical_gate_name
from .diagnostics import Diagnostic, Severity

__all__ = [
    "check_circuit",
    "check_dag",
    "check_placement",
    "check_plan",
    "check_sched",
    "check_vec_plan",
    "check_point_artifacts",
]


def _diag(
    severity: Severity,
    pass_name: str,
    artifact: str,
    location: str,
    message: str,
) -> Diagnostic:
    return Diagnostic(severity, pass_name, artifact, location, message)


# ---------------------------------------------------------------------------
# Circuit pass


def check_circuit(
    circuit: Circuit,
    artifact: str = "circuit",
    lowered: bool = False,
    strict: bool = False,
) -> list[Diagnostic]:
    """Validate a circuit against the gate-set declarations.

    Args:
        circuit: The circuit to verify.
        artifact: Label used in diagnostics.
        lowered: Reject composite gates (mandatory post-decomposition).
        strict: Also emit warnings for qubits first used without a
            preparation and for registered-but-unused qubits (real
            lowered workloads legitimately contain both, so these are
            opt-in).
    """
    out: list[Diagnostic] = []
    registered = set(circuit.qubits)
    for name in registered:
        if not name or any(ch.isspace() for ch in name):
            out.append(_diag(
                Severity.ERROR, "circuit", artifact, "",
                f"invalid qubit name {name!r}",
            ))
    first_use: dict[str, int] = {}
    for index, op in enumerate(circuit):
        where = f"op {index}"
        gate = getattr(op, "gate", None)
        qubits = tuple(getattr(op, "qubits", ()) or ())
        spec = GATE_SPECS.get(canonical_gate_name(gate)) if gate else None
        if spec is None:
            out.append(_diag(
                Severity.ERROR, "circuit", artifact, where,
                f"unknown gate {gate!r}",
            ))
            continue
        if len(qubits) != spec.arity:
            out.append(_diag(
                Severity.ERROR, "circuit", artifact, where,
                f"{spec.name} declares arity {spec.arity}, "
                f"got {len(qubits)} operand(s) {qubits}",
            ))
        if len(qubits) > 1 and len(set(qubits)) != len(qubits):
            out.append(_diag(
                Severity.ERROR, "circuit", artifact, where,
                f"{spec.name} operands must be distinct, got {qubits}",
            ))
        param = getattr(op, "param", None)
        if spec.parametric and param is None:
            out.append(_diag(
                Severity.ERROR, "circuit", artifact, where,
                f"parametric gate {spec.name} is missing its parameter",
            ))
        if lowered and spec.is_composite:
            out.append(_diag(
                Severity.ERROR, "circuit", artifact, where,
                f"composite gate {spec.name} in a lowered circuit "
                "(must be decomposed before mapping)",
            ))
        for qubit in qubits:
            if qubit not in registered:
                out.append(_diag(
                    Severity.ERROR, "circuit", artifact, where,
                    f"dangling operand {qubit!r} (not a registered qubit)",
                ))
            if qubit not in first_use:
                first_use[qubit] = index
                if (
                    strict
                    and spec.kind is not GateKind.PREPARATION
                    and qubit in registered
                ):
                    out.append(_diag(
                        Severity.WARNING, "circuit", artifact, where,
                        f"qubit {qubit!r} first used by {spec.name} "
                        "without a preparation",
                    ))
    num_ops = len(circuit)
    for pos, fenced in circuit.fences:
        where = f"fence @{pos}"
        if not (0 <= pos <= num_ops):
            out.append(_diag(
                Severity.ERROR, "circuit", artifact, where,
                f"fence position {pos} outside [0, {num_ops}]",
            ))
        for qubit in fenced:
            if qubit not in registered:
                out.append(_diag(
                    Severity.ERROR, "circuit", artifact, where,
                    f"fence covers unregistered qubit {qubit!r}",
                ))
    if strict:
        for qubit in registered:
            if qubit not in first_use:
                out.append(_diag(
                    Severity.WARNING, "circuit", artifact, "",
                    f"registered qubit {qubit!r} is never used",
                ))
    return out


# ---------------------------------------------------------------------------
# DAG pass


def check_dag(
    dag: CircuitDag,
    artifact: str = "dag",
    circuit: Optional[Circuit] = None,
) -> list[Diagnostic]:
    """Verify DAG structural invariants with an independent traversal."""
    out: list[Diagnostic] = []
    n = dag.num_nodes
    if circuit is not None and n != len(circuit):
        out.append(_diag(
            Severity.ERROR, "dag", artifact, "",
            f"DAG has {n} nodes for a {len(circuit)}-op circuit",
        ))
    successors = [dag.successors(i) for i in range(n)]
    predecessors = [dag.predecessors(i) for i in range(n)]
    in_degrees = dag.in_degrees()
    if len(in_degrees) != n:
        out.append(_diag(
            Severity.ERROR, "dag", artifact, "",
            f"in_degrees() has {len(in_degrees)} entries for {n} nodes",
        ))
        in_degrees = in_degrees[:n] + [0] * (n - len(in_degrees))
    bounds_bad = False
    for index, succs in enumerate(successors):
        where = f"op {index}"
        for succ in succs:
            if not (0 <= succ < n):
                out.append(_diag(
                    Severity.ERROR, "dag", artifact, where,
                    f"edge {index} -> {succ} leaves the node range [0, {n})",
                ))
                bounds_bad = True
                continue
            if succ <= index:
                out.append(_diag(
                    Severity.ERROR, "dag", artifact, where,
                    f"edge {index} -> {succ} violates program order "
                    "(dependence edges must point forward)",
                ))
            if index not in predecessors[succ]:
                out.append(_diag(
                    Severity.ERROR, "dag", artifact, where,
                    f"edge {index} -> {succ} has no mirrored "
                    "predecessor entry",
                ))
    for index, preds in enumerate(predecessors):
        where = f"op {index}"
        for pred in preds:
            if not (0 <= pred < n):
                out.append(_diag(
                    Severity.ERROR, "dag", artifact, where,
                    f"predecessor {pred} of {index} leaves the node "
                    f"range [0, {n})",
                ))
                bounds_bad = True
                continue
            if index not in successors[pred]:
                out.append(_diag(
                    Severity.ERROR, "dag", artifact, where,
                    f"predecessor edge {pred} -> {index} has no mirrored "
                    "successor entry",
                ))
        if in_degrees[index] != len(preds):
            out.append(_diag(
                Severity.ERROR, "dag", artifact, where,
                f"in_degree {in_degrees[index]} != {len(preds)} "
                "recorded predecessors",
            ))
    if not bounds_bad:
        # Independent Kahn sweep over the successor lists; a shortfall
        # means a cycle (unreachable-from-sources nodes with nonzero
        # in-degree).
        remaining = [len(p) for p in predecessors]
        ready = [i for i, d in enumerate(remaining) if d == 0]
        visited = 0
        while ready:
            node = ready.pop()
            visited += 1
            for succ in successors[node]:
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    ready.append(succ)
        if visited != n:
            out.append(_diag(
                Severity.ERROR, "dag", artifact, "",
                f"dependence graph has a cycle ({n - visited} of {n} "
                "nodes unreachable by topological sweep)",
            ))
    return out


# ---------------------------------------------------------------------------
# Placement pass


def check_placement(
    placement: Placement,
    artifact: str = "placement",
    circuit: Optional[Circuit] = None,
) -> list[Diagnostic]:
    """Verify placement site validity and operand coverage."""
    out: list[Diagnostic] = []
    grid = placement.grid
    seen: dict[tuple[int, int], object] = {}
    for node, site in placement.positions.items():
        row, col = site
        if not (0 <= row < grid.rows and 0 <= col < grid.cols):
            out.append(_diag(
                Severity.ERROR, "placement", artifact, f"qubit {node!r}",
                f"placed off-grid at {site} "
                f"(grid is {grid.rows}x{grid.cols})",
            ))
        if site in seen:
            out.append(_diag(
                Severity.ERROR, "placement", artifact, f"qubit {node!r}",
                f"site {site} already assigned to {seen[site]!r}",
            ))
        else:
            seen[site] = node
    if circuit is not None:
        placed = set(placement.positions)
        missing: dict[str, int] = {}
        for index, op in enumerate(circuit):
            for qubit in op.qubits:
                if qubit not in placed and qubit not in missing:
                    missing[qubit] = index
        for qubit, index in missing.items():
            out.append(_diag(
                Severity.ERROR, "placement", artifact, f"op {index}",
                f"operand {qubit!r} has no placement",
            ))
    return out


# ---------------------------------------------------------------------------
# BraidPlan pass


_READONLY_FIELDS = (
    "tasks", "is_braid", "route_length", "segments",
    "in_degrees", "successors", "sources",
)


def check_plan(
    plan: BraidPlan,
    artifact: str = "plan",
    strict: bool = False,
) -> list[Diagnostic]:
    """Verify a :class:`BraidPlan`'s internal consistency.

    Re-derives every redundant structure (masks from paths, minimal
    lengths from endpoints, the critical path from task latencies and
    successor edges, in-degrees and sources from the DAG) and checks
    the plan's shared arrays are actually immutable tuples — the
    property simulators rely on when treating a plan as read-only.
    """
    out: list[Diagnostic] = []
    for field in _READONLY_FIELDS:
        value = getattr(plan, field)
        if not isinstance(value, tuple):
            out.append(_diag(
                Severity.ERROR, "plan", artifact, field,
                f"shared plan array {field!r} is a mutable "
                f"{type(value).__name__} (must be a tuple)",
            ))
    n = plan.num_ops
    circuit_ops = len(plan.circuit)
    if n != circuit_ops:
        out.append(_diag(
            Severity.ERROR, "plan", artifact, "",
            f"plan covers {n} ops but its circuit has {circuit_ops} "
            "(planned circuits must not be mutated)",
        ))
    for field in ("tasks", "is_braid", "route_length", "segments",
                  "in_degrees", "successors"):
        length = len(getattr(plan, field))
        if length != n:
            out.append(_diag(
                Severity.ERROR, "plan", artifact, field,
                f"array {field!r} has {length} entries for {n} ops",
            ))
    if any(d.severity is Severity.ERROR for d in out):
        # Structural damage: per-op cross-checks below would index
        # mismatched arrays.
        return out

    mesh = BraidMesh(plan.rows, plan.cols)
    try:
        endpoint = {
            q: mesh.tile_router(plan.placement.position(q))
            for q in plan.placement.positions
        }
    except ValueError as error:
        out.append(_diag(
            Severity.ERROR, "plan", artifact, "",
            f"placement does not fit the plan's mesh: {error}",
        ))
        endpoint = {}
    factories = set(plan.factory_routers)
    for router in plan.factory_routers:
        if not mesh.in_bounds(router):
            out.append(_diag(
                Severity.ERROR, "plan", artifact, f"factory {router}",
                f"factory router {router} is off-mesh "
                f"({mesh.router_rows}x{mesh.router_cols} routers)",
            ))
    t_count = plan.circuit.t_count
    if t_count and not factories:
        out.append(_diag(
            Severity.ERROR, "plan", artifact, "",
            f"circuit consumes {t_count} magic states but the plan "
            "has no factory routers",
        ))

    for index in range(n):
        task = plan.tasks[index]
        where = f"op {index}"
        op = plan.circuit[index]
        if task.index != index:
            out.append(_diag(
                Severity.ERROR, "plan", artifact, where,
                f"task records index {task.index}",
            ))
        if plan.is_braid[index] != bool(task.segments):
            out.append(_diag(
                Severity.ERROR, "plan", artifact, where,
                f"is_braid={plan.is_braid[index]} disagrees with "
                f"{len(task.segments)} segment(s)",
            ))
        expected_len = sum(s.min_length for s in task.segments)
        if plan.route_length[index] != (
            expected_len if task.segments else 0
        ):
            out.append(_diag(
                Severity.ERROR, "plan", artifact, where,
                f"route_length={plan.route_length[index]} != "
                f"{expected_len} (sum of minimal segment lengths)",
            ))
        if not task.segments and task.local_cycles < 1:
            out.append(_diag(
                Severity.ERROR, "plan", artifact, where,
                f"local task has non-positive duration "
                f"{task.local_cycles}",
            ))
        segment_infos = plan.segments[index]
        if len(segment_infos) != len(task.segments):
            out.append(_diag(
                Severity.ERROR, "plan", artifact, where,
                f"{len(segment_infos)} prebound segment(s) for "
                f"{len(task.segments)} task segment(s)",
            ))
            continue
        if op.consumes_magic_state and endpoint:
            if len(task.segments) != 1:
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, where,
                    f"magic-state consumer has {len(task.segments)} "
                    "segment(s), expected 1 (factory -> target)",
                ))
            elif factories:
                src = task.segments[0].src
                target = endpoint.get(op.qubits[0])
                if src not in factories:
                    out.append(_diag(
                        Severity.ERROR, "plan", artifact, where,
                        f"magic-state source {src} is not a factory "
                        "router",
                    ))
                elif target is not None:
                    nearest = min(
                        factories, key=lambda f: (manhattan(f, target), f)
                    )
                    if src != nearest:
                        out.append(_diag(
                            Severity.ERROR, "plan", artifact, where,
                            f"magic state braided from {src}, but the "
                            f"nearest factory to {target} is {nearest}",
                        ))
        for seg_idx, info in enumerate(segment_infos):
            seg_where = f"segment {seg_idx} of op {index}"
            src, dst, hold, min_len, dor_path, dor_mask = info
            if not mesh.in_bounds(src) or not mesh.in_bounds(dst):
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, seg_where,
                    f"route endpoint off-mesh: {src} -> {dst} on a "
                    f"{mesh.router_rows}x{mesh.router_cols} router grid",
                ))
                continue
            if hold != plan.distance:
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, seg_where,
                    f"stabilization hold {hold} != code distance "
                    f"{plan.distance}",
                ))
            expected_min = manhattan(src, dst)
            if min_len != expected_min:
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, seg_where,
                    f"minimal length {min_len} != Manhattan distance "
                    f"{expected_min}",
                ))
            if not dor_path or dor_path[0] != src or dor_path[-1] != dst:
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, seg_where,
                    f"dominant route {dor_path!r} does not connect "
                    f"{src} -> {dst}",
                ))
                continue
            if len(dor_path) != expected_min + 1:
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, seg_where,
                    f"dominant route visits {len(dor_path)} routers; a "
                    f"minimal route visits {expected_min + 1}",
                ))
            if any(not mesh.in_bounds(node) for node in dor_path):
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, seg_where,
                    "dominant route leaves the mesh",
                ))
                continue
            try:
                expected_mask = mesh.path_mask(dor_path)
            except ValueError as error:
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, seg_where,
                    f"dominant route is not a mesh path: {error}",
                ))
                continue
            if dor_mask >> mesh.num_links:
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, seg_where,
                    f"link mask claims bits beyond the mesh's "
                    f"{mesh.num_links} links",
                ))
            elif dor_mask != expected_mask:
                out.append(_diag(
                    Severity.ERROR, "plan", artifact, seg_where,
                    f"link mask {dor_mask:#x} does not match its route "
                    f"(expected {expected_mask:#x})",
                ))
        if endpoint and op.arity == 2 and len(task.segments) == 2:
            src = endpoint.get(op.qubits[0])
            dst = endpoint.get(op.qubits[1])
            for seg_idx, seg in enumerate(task.segments):
                if src is not None and dst is not None and (
                    (seg.src, seg.dst) != (src, dst)
                ):
                    out.append(_diag(
                        Severity.ERROR, "plan", artifact,
                        f"segment {seg_idx} of op {index}",
                        f"braid endpoints {seg.src} -> {seg.dst} do not "
                        f"match the operands' tiles {src} -> {dst}",
                    ))

    # DAG array agreement: the plan's scheduling arrays must be the
    # DAG's own view of the (unmutated) dependence structure.
    dag_in = plan.dag.in_degrees()[:n]
    if list(plan.in_degrees) != dag_in:
        out.append(_diag(
            Severity.ERROR, "plan", artifact, "in_degrees",
            "plan in_degrees do not match the dependence DAG "
            "(shared seed array was mutated or is stale)",
        ))
    dag_succ = plan.dag.successor_tuples()[:n]
    if tuple(plan.successors) != tuple(dag_succ):
        out.append(_diag(
            Severity.ERROR, "plan", artifact, "successors",
            "plan successor arrays do not match the dependence DAG",
        ))
    if list(plan.sources) != plan.dag.sources():
        out.append(_diag(
            Severity.ERROR, "plan", artifact, "sources",
            "plan source set does not match the dependence DAG",
        ))

    # Critical path re-derivation (same ASAP recurrence, fresh arrays).
    start = [0] * n
    critical = 0
    for index in range(n):
        finish = start[index] + plan.tasks[index].busy_cycles
        if finish > critical:
            critical = finish
        for succ in plan.successors[index]:
            if 0 <= succ < n and finish > start[succ]:
                start[succ] = finish
    if critical != plan.critical_path:
        out.append(_diag(
            Severity.ERROR, "plan", artifact, "critical_path",
            f"recorded critical path {plan.critical_path} != "
            f"{critical} re-derived from task latencies",
        ))

    if strict and factories:
        from ..arch.tiled import DATA_TILES_PER_FACTORY

        data_tiles = len(plan.placement.positions)
        ratio = data_tiles / len(factories)
        if ratio > 4 * DATA_TILES_PER_FACTORY:
            out.append(_diag(
                Severity.WARNING, "plan", artifact, "",
                f"{data_tiles} data tiles share {len(factories)} "
                f"factories ({ratio:.1f} tiles/factory; balance is "
                f"~{DATA_TILES_PER_FACTORY})",
            ))
    return out


# ---------------------------------------------------------------------------
# Vectorized-engine derived arrays


def check_vec_plan(
    plan: BraidPlan, artifact: str = "plan"
) -> list[Diagnostic]:
    """Verify the vectorized engine's word arrays against their plan.

    Builds (or revives) the per-plan
    :class:`~repro.network.braidsim_vec._VecPlanArrays` and repacks
    every derived structure back to the plan's own representation:
    segment rows to the segments' big-int DOR masks, the alternative
    bank to :meth:`~repro.network.routing.RouteTable.alternatives`
    masks in preference order, and the key arrays to the plan's
    ``route_length``/``criticality`` lists.  Also asserts the packed
    rows are non-writeable, the property that keeps the shared arrays
    safe across concurrent policy simulations.  Returns ``[]`` when
    numpy is not installed (the vectorized engine cannot run either).
    """
    from ..network import braidsim_vec

    if braidsim_vec.np is None:
        return []
    out: list[Diagnostic] = []
    vec = braidsim_vec.vec_plan_arrays(plan)
    expected_words = max(1, (BraidMesh(plan.rows, plan.cols).num_links + 63) // 64)
    if vec.words != expected_words:
        out.append(_diag(
            Severity.ERROR, "vec_plan", artifact, "words",
            f"mask width is {vec.words} words; the {plan.rows}x"
            f"{plan.cols} mesh needs {expected_words}",
        ))
        return out
    if len(vec.seg_rows) != plan.num_ops:
        out.append(_diag(
            Severity.ERROR, "vec_plan", artifact, "seg_rows",
            f"{len(vec.seg_rows)} row tuples for {plan.num_ops} ops",
        ))
        return out
    for op, segs in enumerate(plan.segments):
        rows = vec.seg_rows[op]
        if len(rows) != len(segs):
            out.append(_diag(
                Severity.ERROR, "vec_plan", artifact, f"op {op}",
                f"{len(rows)} word rows for {len(segs)} segments",
            ))
            continue
        for seg_index, (seg, row) in enumerate(zip(segs, rows)):
            where = f"op {op} segment {seg_index}"
            if row.flags.writeable:
                out.append(_diag(
                    Severity.ERROR, "vec_plan", artifact, where,
                    "packed DOR row is writeable (shared plan arrays "
                    "must be immutable)",
                ))
            repacked = braidsim_vec._words_mask(row)
            if repacked != seg[5]:
                out.append(_diag(
                    Severity.ERROR, "vec_plan", artifact, where,
                    f"DOR row repacks to {repacked:#x}, segment mask "
                    f"is {seg[5]:#x}",
                ))
    lengths = tuple(int(v) for v in vec.route_length.tolist())
    if lengths != tuple(plan.route_length):
        out.append(_diag(
            Severity.ERROR, "vec_plan", artifact, "route_length",
            "route-length array disagrees with the plan",
        ))
    crit = tuple(int(v) for v in vec.criticality().tolist())
    if crit != tuple(plan.criticality()):
        out.append(_diag(
            Severity.ERROR, "vec_plan", artifact, "criticality",
            "criticality array disagrees with the plan",
        ))
    # Bind every braid segment's pair into the bank, then audit the
    # whole bank against the route table's preference order.
    for op, segs in enumerate(plan.segments):
        for seg in segs:
            vec.pair_span(seg[0], seg[1])
    bank = vec.bank_matrix()
    for (src, dst), (start, count) in sorted(vec._pair_span.items()):
        alts = plan.routes.alternatives(src, dst)
        where = f"pair {src}->{dst}"
        if count != len(alts):
            out.append(_diag(
                Severity.ERROR, "vec_plan", artifact, where,
                f"bank block has {count} rows for {len(alts)} "
                "alternatives",
            ))
            continue
        for offset, (_, mask) in enumerate(alts):
            repacked = braidsim_vec._words_mask(bank[start + offset])
            if repacked != mask:
                out.append(_diag(
                    Severity.ERROR, "vec_plan", artifact,
                    f"{where} alt {offset}",
                    f"bank row repacks to {repacked:#x}, route mask "
                    f"is {mask:#x}",
                ))
    return out


# ---------------------------------------------------------------------------
# Scheduler-family pass (policies 7/8 artifacts)


def check_sched(
    plan: BraidPlan,
    artifact: str = "plan",
    schedule=None,
    matrix=None,
) -> list[Diagnostic]:
    """Verify the scheduler-family artifacts derived from ``plan``.

    By default validates exactly what the engines will use — the
    memoized :func:`~repro.network.policies_sched.reservation_schedule`
    and :func:`~repro.network.policies_sched.scoreboard_matrix` of this
    plan; pass ``schedule``/``matrix`` to audit externally revived or
    suspect artifacts instead.

    The reservation schedule is *replayed*: every reserved window is
    re-booked into a fresh :class:`~repro.network.policies_sched.
    ReservationTable` (any overlap on a link-cycle slot is a
    double-book), ready times are recomputed from the DAG with the
    simulator's exact latencies, and the achieved initiation interval
    and makespan are checked against the independently recomputed
    ``ii()`` bound and the plan's critical path.
    """
    from ..network.policies_sched import (
        ReservationTable,
        ii_lower_bound,
        reservation_schedule,
        scoreboard_matrix,
    )

    out: list[Diagnostic] = []
    n = plan.num_ops
    if schedule is None:
        schedule = reservation_schedule(plan)
    if matrix is None:
        matrix = scoreboard_matrix(plan)

    # -- reservation schedule -------------------------------------------
    structural = False
    if len(schedule.reserved) != n or len(schedule.finish) != n:
        out.append(_diag(
            Severity.ERROR, "sched", artifact, "reserved",
            f"schedule covers {len(schedule.reserved)} ops "
            f"(finish: {len(schedule.finish)}) for a {n}-op plan",
        ))
        structural = True
    if schedule.ii < 1:
        out.append(_diag(
            Severity.ERROR, "sched", artifact, "ii",
            f"initiation interval {schedule.ii} is not positive",
        ))
        structural = True
    if not structural:
        bound = ii_lower_bound(plan)
        if schedule.ii_lower != bound:
            out.append(_diag(
                Severity.ERROR, "sched", artifact, "ii",
                f"recorded ii lower bound {schedule.ii_lower} != "
                f"recomputed link-pressure bound {bound}",
            ))
        if schedule.ii < bound:
            out.append(_diag(
                Severity.ERROR, "sched", artifact, "ii",
                f"achieved initiation interval {schedule.ii} is below "
                f"the ii() lower bound {bound}",
            ))
        table = ReservationTable(schedule.ii)
        ready = [0] * n
        makespan = 0
        for op in range(n):
            where = f"op {op}"
            opens = schedule.reserved[op]
            if not plan.is_braid[op]:
                if opens:
                    out.append(_diag(
                        Severity.ERROR, "sched", artifact, where,
                        f"local op carries {len(opens)} reserved "
                        "cycles (must be none)",
                    ))
                end = ready[op] + plan.tasks[op].local_cycles
            else:
                segments = plan.segments[op]
                if len(opens) != len(segments):
                    out.append(_diag(
                        Severity.ERROR, "sched", artifact, where,
                        f"{len(opens)} reserved cycles for "
                        f"{len(segments)} braid segments",
                    ))
                    end = schedule.finish[op]  # keep the sweep going
                else:
                    cursor = ready[op]
                    for index, (seg, cycle) in enumerate(
                        zip(segments, opens)
                    ):
                        hold, mask = seg[2], seg[5]
                        if cycle < cursor:
                            out.append(_diag(
                                Severity.ERROR, "sched", artifact,
                                f"{where} segment {index}",
                                f"reserved at cycle {cycle} before its "
                                f"dependence-ready cycle {cursor}",
                            ))
                        try:
                            table.book(cycle, hold + 2, mask)
                        except ValueError as error:
                            out.append(_diag(
                                Severity.ERROR, "sched", artifact,
                                f"{where} segment {index}",
                                f"double-books the table: {error}",
                            ))
                        cursor = cycle + 1 + hold
                    end = cursor
            if end != schedule.finish[op]:
                out.append(_diag(
                    Severity.ERROR, "sched", artifact, where,
                    f"recorded finish {schedule.finish[op]} != replayed "
                    f"finish {end}",
                ))
            if end > makespan:
                makespan = end
            for succ in plan.successors[op]:
                if end > ready[succ]:
                    ready[succ] = end
        if makespan != schedule.makespan:
            out.append(_diag(
                Severity.ERROR, "sched", artifact, "makespan",
                f"recorded makespan {schedule.makespan} != replayed "
                f"makespan {makespan}",
            ))
        if schedule.makespan < plan.critical_path:
            out.append(_diag(
                Severity.ERROR, "sched", artifact, "makespan",
                f"makespan {schedule.makespan} is below the plan's "
                f"critical path {plan.critical_path}",
            ))

    # -- scoreboard dependency matrix -----------------------------------
    if len(matrix) != n:
        out.append(_diag(
            Severity.ERROR, "sched", artifact, "matrix",
            f"dependency matrix has {len(matrix)} rows for {n} ops",
        ))
        return out
    expected = [0] * n
    for op, succs in enumerate(plan.successors):
        bit = 1 << op
        for succ in succs:
            expected[succ] |= bit
    for op in range(n):
        row = matrix[op]
        where = f"op {op}"
        if row >> n:
            out.append(_diag(
                Severity.ERROR, "sched", artifact, where,
                "matrix row has dependency bits beyond the op range",
            ))
        if row & (1 << op):
            out.append(_diag(
                Severity.ERROR, "sched", artifact, where,
                "matrix row marks the op as its own predecessor",
            ))
        if row.bit_count() != plan.in_degrees[op]:
            out.append(_diag(
                Severity.ERROR, "sched", artifact, where,
                f"matrix row popcount {row.bit_count()} != plan "
                f"in-degree {plan.in_degrees[op]}",
            ))
        if row != expected[op]:
            out.append(_diag(
                Severity.ERROR, "sched", artifact, where,
                "matrix row disagrees with the DAG's successor lists",
            ))
    return out


# ---------------------------------------------------------------------------
# Composition


def check_point_artifacts(
    circuit: Circuit,
    dag: Optional[CircuitDag] = None,
    placement: Optional[Placement] = None,
    plan: Optional[BraidPlan] = None,
    artifact: str = "point",
    strict: bool = False,
) -> list[Diagnostic]:
    """Run every applicable pass over one design point's artifacts."""
    out = check_circuit(
        circuit, artifact=artifact, lowered=True, strict=strict
    )
    if dag is not None:
        out.extend(check_dag(dag, artifact=artifact, circuit=circuit))
    if placement is not None:
        out.extend(
            check_placement(placement, artifact=artifact, circuit=circuit)
        )
    if plan is not None:
        out.extend(check_plan(plan, artifact=artifact, strict=strict))
        out.extend(check_sched(plan, artifact=artifact))
    return out
