"""Structured diagnostics shared by the static verifier and runtime guards.

Every check in :mod:`repro.analysis` — the IR verifier passes, the
determinism linter, the cache payload validator — reports through one
:class:`Diagnostic` shape (severity, pass, artifact, location,
message), so ``python -m repro check`` output, linter findings, and the
runtime plan-mismatch guards all read identically and serialize to the
same JSON.

:class:`AnalysisError` carries a batch of diagnostics as an exception;
:class:`PlanMismatchError` is its runtime-guard specialization and
still *is a* ``ValueError``, so pre-existing callers (and tests)
catching ``ValueError`` around plan reuse keep working unchanged.

This module is dependency-free on purpose: IR modules
(:mod:`repro.network.plan`, :mod:`repro.arch.tiled`) import it for
their guard exceptions without pulling the checker passes — which
import those IR modules — into a cycle.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Optional, Sequence

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisError",
    "PlanMismatchError",
    "max_severity",
    "raise_on_errors",
]


class Severity(enum.Enum):
    """How bad a finding is; ordered for filtering and exit codes."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes:
        severity: :class:`Severity` of the finding.
        pass_name: Which pass produced it (``circuit``, ``dag``,
            ``placement``, ``plan``, a linter rule id, or
            ``runtime-guard``).
        artifact: What was checked (e.g. ``sha1[size=180]/d=5`` or a
            source path for linter findings).
        location: Where inside the artifact (``op 42``, ``segment 1 of
            op 7``, ``line 13``); empty when the finding is global.
        message: Human-readable description of the defect.
    """

    severity: Severity
    pass_name: str
    artifact: str
    location: str
    message: str

    def format(self) -> str:
        """One-line rendering: ``severity pass artifact location: msg``."""
        where = f"{self.artifact} {self.location}".strip()
        return f"{self.severity.value} [{self.pass_name}] {where}: {self.message}"

    def to_jsonable(self) -> dict:
        return {
            "severity": self.severity.value,
            "pass": self.pass_name,
            "artifact": self.artifact,
            "location": self.location,
            "message": self.message,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "Diagnostic":
        return cls(
            severity=Severity(payload["severity"]),
            pass_name=payload["pass"],
            artifact=payload.get("artifact", ""),
            location=payload.get("location", ""),
            message=payload["message"],
        )

    @classmethod
    def error(
        cls, pass_name: str, artifact: str, location: str, message: str
    ) -> "Diagnostic":
        return cls(Severity.ERROR, pass_name, artifact, location, message)

    @classmethod
    def warning(
        cls, pass_name: str, artifact: str, location: str, message: str
    ) -> "Diagnostic":
        return cls(Severity.WARNING, pass_name, artifact, location, message)


def max_severity(
    diagnostics: Iterable[Diagnostic],
) -> Optional[Severity]:
    """The worst severity present, or None for an empty batch."""
    worst: Optional[Severity] = None
    for diag in diagnostics:
        if worst is None or diag.severity.rank > worst.rank:
            worst = diag.severity
    return worst


class AnalysisError(Exception):
    """An exception carrying one or more :class:`Diagnostic` findings.

    Raised by verification hooks (``verify=`` on
    :meth:`repro.runner.cache.StageCache.get_or_compute`) and by
    :func:`raise_on_errors`; the message lists every finding, one per
    line, in :meth:`Diagnostic.format` form.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics: tuple[Diagnostic, ...] = tuple(diagnostics)
        super().__init__(
            "\n".join(diag.format() for diag in self.diagnostics)
            or "analysis failed with no diagnostics"
        )


class PlanMismatchError(AnalysisError, ValueError):
    """Runtime guard: a cached/shared artifact no longer matches its use.

    Unifies the previously ad-hoc ``ValueError``s raised when a planned
    circuit was mutated, a plan is simulated at the wrong distance, or
    a config disagrees with the plan's compiled detour radius.  Still a
    ``ValueError`` for backward compatibility; additionally carries the
    structured :class:`Diagnostic` so runtime guards and ``repro
    check`` report through the same shape.
    """

    def __init__(
        self,
        message: str,
        *,
        artifact: str = "",
        location: str = "",
        pass_name: str = "runtime-guard",
    ):
        diagnostic = Diagnostic(
            Severity.ERROR, pass_name, artifact, location, message
        )
        AnalysisError.__init__(self, (diagnostic,))
        # Present the plain guard message (tests match substrings of it).
        self.args = (message,)


def raise_on_errors(diagnostics: Sequence[Diagnostic]) -> None:
    """Raise :class:`AnalysisError` if any finding is an ERROR."""
    errors = [
        diag for diag in diagnostics if diag.severity is Severity.ERROR
    ]
    if errors:
        raise AnalysisError(errors)
