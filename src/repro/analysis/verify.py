"""Grid-level verification driver and cached-stage verify hooks.

Three entry points wire the IR passes of :mod:`.ir_checks` into the
toolflow:

* :func:`check_grid` — compile every unique (app, size, layout,
  distance) artifact of a sweep grid (Fig. 6 by default) and run all
  passes over the lowered circuit, DAG, placement, braid plan, the
  scheduler-family reservation/scoreboard artifacts, and (when numpy
  is installed) the vectorized engine's derived word arrays, returning
  a :class:`CheckReport` (this backs ``python -m repro check``).
* :func:`stage_verifier` — per-stage hooks for
  :meth:`StageCache.get_or_compute(verify=...)
  <repro.runner.cache.StageCache.get_or_compute>`: each checks the
  stage's artifact and raises
  :class:`~repro.analysis.diagnostics.AnalysisError` on any ERROR
  finding, so a defective artifact never enters the cache.
* :func:`lowered_payload_check` — round-trip validator for persisted
  ``lowered`` payloads, used by ``python -m repro cache verify``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..network.policies import POLICIES
from ..qasm.circuit import Circuit
from .diagnostics import Diagnostic, Severity, raise_on_errors
from .ir_checks import (
    check_circuit,
    check_dag,
    check_placement,
    check_plan,
    check_sched,
    check_vec_plan,
)

__all__ = [
    "CheckReport",
    "check_grid",
    "stage_verifier",
    "lowered_payload_check",
]


@dataclasses.dataclass(frozen=True)
class CheckReport:
    """Result of verifying every artifact of a sweep grid."""

    points_checked: int
    artifacts_checked: int
    diagnostics: tuple[Diagnostic, ...]

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_jsonable(self) -> dict:
        return {
            "points_checked": self.points_checked,
            "artifacts_checked": self.artifacts_checked,
            "ok": self.ok,
            "diagnostics": [d.to_jsonable() for d in self.diagnostics],
        }


def _resolved_layout(spec) -> bool:
    if spec.optimize_layout is not None:
        return spec.optimize_layout
    return POLICIES[spec.policy].optimized_layout


def check_grid(
    grid=None,
    cache=None,
    strict: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> CheckReport:
    """Verify every unique compiled artifact of a sweep grid.

    The grid's points collapse onto unique (app, size, inline depth,
    layout, distance) tuples — Fig. 6's 28 points share 8 artifact
    sets because the seven policies differ only in simulation-time
    scheduling — and each artifact set is compiled through the staged
    cache and handed to all four IR passes.
    """
    # Deferred: runner imports analysis for its verify hooks.
    from ..runner import stages
    from ..runner.cache import StageCache
    from ..runner.sweep import fig6_grid

    if grid is None:
        grid = fig6_grid()
    if cache is None:
        cache = StageCache()
    points = [spec.normalized() for spec in grid.expand()]
    unique: dict[tuple, object] = {}
    for spec in points:
        distance = spec.distance
        if distance is None:
            from ..qec.distance import choose_distance

            fe = stages.compute_frontend(
                cache, spec.app, spec.size, spec.inline_depth
            )
            distance = choose_distance(
                fe.logical.target_pl, spec.technology()
            )
        ident = (
            spec.app,
            spec.size,
            spec.inline_depth,
            _resolved_layout(spec),
            distance,
        )
        unique.setdefault(ident, spec)

    diagnostics: list[Diagnostic] = []
    for (app, size, inline_depth, layout, distance), _ in sorted(
        unique.items(), key=lambda item: repr(item[0])
    ):
        artifact = (
            f"{app}[size={size}]"
            f"/layout={'opt' if layout else 'base'}/d={distance}"
        )
        if progress is not None:
            progress(artifact)
        fe = stages.compute_frontend(cache, app, size, inline_depth)
        plan = stages.compute_braid_plan(
            cache, app, size, inline_depth, layout, distance
        )
        diagnostics.extend(check_circuit(
            fe.circuit, artifact=artifact, lowered=True, strict=strict
        ))
        diagnostics.extend(
            check_dag(fe.dag, artifact=artifact, circuit=fe.circuit)
        )
        diagnostics.extend(check_placement(
            plan.placement, artifact=artifact, circuit=plan.circuit
        ))
        diagnostics.extend(
            check_plan(plan, artifact=artifact, strict=strict)
        )
        diagnostics.extend(check_vec_plan(plan, artifact=artifact))
        diagnostics.extend(check_sched(plan, artifact=artifact))
    return CheckReport(
        points_checked=len(points),
        artifacts_checked=len(unique),
        diagnostics=tuple(diagnostics),
    )


def _verify_lowered(circuit) -> None:
    raise_on_errors(check_circuit(circuit, artifact="lowered", lowered=True))


def _verify_frontend(fe) -> None:
    diags = check_circuit(fe.circuit, artifact="frontend", lowered=True)
    diags.extend(check_dag(fe.dag, artifact="frontend", circuit=fe.circuit))
    raise_on_errors(diags)


def _verify_layout(machine) -> None:
    raise_on_errors(check_placement(
        machine.placement, artifact="layout", circuit=machine.circuit
    ))


def _verify_plan(plan) -> None:
    diags = check_plan(plan, artifact="braid_plan")
    diags.extend(check_vec_plan(plan, artifact="braid_plan"))
    raise_on_errors(diags)


_STAGE_VERIFIERS: dict[str, Callable[[object], None]] = {
    "lowered": _verify_lowered,
    "frontend": _verify_frontend,
    "layout": _verify_layout,
    "braid_plan": _verify_plan,
}


def stage_verifier(stage: str) -> Optional[Callable[[object], None]]:
    """The ``verify=`` hook for a cached stage (None when unchecked)."""
    return _STAGE_VERIFIERS.get(stage)


def lowered_payload_check(payload: object) -> None:
    """Round-trip-validate one persisted ``lowered`` cache payload.

    Revives the circuit, runs the circuit pass, and re-serializes;
    raises (``AnalysisError`` or the revival's own error) unless the
    payload is well-formed and byte-stable.
    """
    circuit = Circuit.from_jsonable(payload)
    raise_on_errors(
        check_circuit(circuit, artifact="lowered payload", lowered=True)
    )
    if circuit.to_jsonable() != payload:
        raise ValueError(
            "lowered payload does not round-trip through "
            "Circuit.from_jsonable/to_jsonable"
        )
