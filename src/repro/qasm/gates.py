"""Logical gate set for the circuit IR.

The paper's toolflow lowers applications to a "standard logical-level ISA
known as QASM" (Section 5.3).  We model the fault-tolerant gate set that
surface codes natively support, plus a handful of composite gates that the
frontend decomposes (``repro.frontend.decompose``):

* Clifford gates (H, X, Y, Z, S, Sdg, CNOT, CZ, SWAP) -- cheap transversal
  or braid-implementable operations.
* T / Tdg -- non-Clifford; each consumes one magic state from an ancilla
  factory, which is the dominant communication driver in the paper.
* PrepZ / PrepX / MeasZ / MeasX -- state preparation and measurement.
* Composite gates (Toffoli, Fredkin, RZ) that must be decomposed before
  backend mapping.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

__all__ = ["GateKind", "GateSpec", "GATE_SPECS", "gate_spec", "is_known_gate"]


class GateKind(enum.Enum):
    """Coarse classification used by scheduling and cost models."""

    CLIFFORD_1Q = "clifford_1q"
    CLIFFORD_2Q = "clifford_2q"
    NON_CLIFFORD = "non_clifford"
    PREPARATION = "preparation"
    MEASUREMENT = "measurement"
    COMPOSITE = "composite"


@dataclasses.dataclass(frozen=True)
class GateSpec:
    """Static properties of a gate name.

    Attributes:
        name: Canonical upper-case mnemonic (e.g. ``"CNOT"``).
        arity: Number of qubit operands.
        kind: Coarse class for cost models.
        consumes_magic_state: True for T-like gates that require a magic
            state ancilla delivered from a factory (Section 4.3).
        self_inverse: True when the gate is its own inverse.
        inverse_name: Canonical name of the inverse gate.
        parametric: True when the gate carries a classical parameter
            (e.g. ``RZ(theta)``).
    """

    name: str
    arity: int
    kind: GateKind
    consumes_magic_state: bool = False
    self_inverse: bool = False
    inverse_name: Optional[str] = None
    parametric: bool = False

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValueError(f"gate {self.name} must have arity >= 1")

    @property
    def is_two_qubit(self) -> bool:
        return self.arity == 2

    @property
    def is_composite(self) -> bool:
        return self.kind is GateKind.COMPOSITE

    @property
    def inverse(self) -> str:
        """Name of the inverse gate (self for self-inverse gates)."""
        if self.self_inverse:
            return self.name
        if self.inverse_name is None:
            raise ValueError(f"gate {self.name} has no declared inverse")
        return self.inverse_name


def _spec(*args, **kwargs) -> GateSpec:
    return GateSpec(*args, **kwargs)


GATE_SPECS: dict[str, GateSpec] = {
    spec.name: spec
    for spec in [
        # --- 1-qubit Cliffords -------------------------------------------
        _spec("H", 1, GateKind.CLIFFORD_1Q, self_inverse=True),
        _spec("X", 1, GateKind.CLIFFORD_1Q, self_inverse=True),
        _spec("Y", 1, GateKind.CLIFFORD_1Q, self_inverse=True),
        _spec("Z", 1, GateKind.CLIFFORD_1Q, self_inverse=True),
        _spec("S", 1, GateKind.CLIFFORD_1Q, inverse_name="SDG"),
        _spec("SDG", 1, GateKind.CLIFFORD_1Q, inverse_name="S"),
        # --- 2-qubit Cliffords -------------------------------------------
        _spec("CNOT", 2, GateKind.CLIFFORD_2Q, self_inverse=True),
        _spec("CZ", 2, GateKind.CLIFFORD_2Q, self_inverse=True),
        _spec("SWAP", 2, GateKind.CLIFFORD_2Q, self_inverse=True),
        # --- non-Clifford -------------------------------------------------
        _spec(
            "T",
            1,
            GateKind.NON_CLIFFORD,
            consumes_magic_state=True,
            inverse_name="TDG",
        ),
        _spec(
            "TDG",
            1,
            GateKind.NON_CLIFFORD,
            consumes_magic_state=True,
            inverse_name="T",
        ),
        # --- preparation / measurement ------------------------------------
        _spec("PREPZ", 1, GateKind.PREPARATION),
        _spec("PREPX", 1, GateKind.PREPARATION),
        _spec("MEASZ", 1, GateKind.MEASUREMENT),
        _spec("MEASX", 1, GateKind.MEASUREMENT),
        # --- composites (must be decomposed before mapping) ---------------
        _spec("TOFFOLI", 3, GateKind.COMPOSITE, self_inverse=True),
        _spec("FREDKIN", 3, GateKind.COMPOSITE, self_inverse=True),
        _spec("RZ", 1, GateKind.COMPOSITE, parametric=True),
    ]
}

_ALIASES = {
    "CX": "CNOT",
    "TDAG": "TDG",
    "SDAG": "SDG",
    "CCX": "TOFFOLI",
    "CCNOT": "TOFFOLI",
    "CSWAP": "FREDKIN",
    "MEASURE": "MEASZ",
    "PREP": "PREPZ",
}


_CANONICAL_CACHE: dict[str, str] = {}
_CANONICAL_CACHE_LIMIT = 4096  # bound growth under adversarial inputs


def canonical_gate_name(name: str) -> str:
    """Map a raw mnemonic (any case, aliases allowed) to canonical form."""
    cached = _CANONICAL_CACHE.get(name)
    if cached is not None:
        return cached
    upper = name.upper()
    canonical = _ALIASES.get(upper, upper)
    if len(_CANONICAL_CACHE) < _CANONICAL_CACHE_LIMIT:
        _CANONICAL_CACHE[name] = canonical
    return canonical


def gate_spec(name: str) -> GateSpec:
    """Look up the :class:`GateSpec` for a mnemonic.

    Raises:
        KeyError: If the gate name is not part of the supported ISA.
    """
    canonical = canonical_gate_name(name)
    try:
        return GATE_SPECS[canonical]
    except KeyError:
        raise KeyError(
            f"unknown gate {name!r}; supported gates: "
            f"{sorted(GATE_SPECS)}"
        ) from None


def is_known_gate(name: str) -> bool:
    """True when ``name`` (case-insensitive, aliases allowed) is in the ISA."""
    return canonical_gate_name(name) in GATE_SPECS
