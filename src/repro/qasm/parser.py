"""QASM text parser.

Two dialects are supported, auto-detected per file:

1. **Flat QASM** (the qasm-tools format cited by the paper [16, 17])::

       # comment
       qubit data0
       qubit data1
       H data0
       CNOT data0,data1
       T data1
       MeasZ data0

2. A practical subset of **OpenQASM 2.0**::

       OPENQASM 2.0;
       include "qelib1.inc";
       qreg q[3];
       creg c[3];
       h q[0];
       cx q[0],q[1];
       rz(0.25) q[2];
       measure q[0] -> c[0];

Unsupported OpenQASM features (gate definitions, conditionals, barriers)
raise :class:`QasmParseError` with line/column context rather than being
silently skipped, except ``barrier`` which is ignored by design (it has
no backend meaning in this toolflow).
"""

from __future__ import annotations

import math
import re

from .circuit import Circuit, Operation
from .gates import is_known_gate

__all__ = ["QasmParseError", "parse_qasm", "parse_flat_qasm", "parse_openqasm2"]


class QasmParseError(ValueError):
    """Raised on malformed QASM input, with 1-based line context."""

    def __init__(self, message: str, line_number: int, line: str = "") -> None:
        context = f" (line {line_number}: {line.strip()!r})" if line else (
            f" (line {line_number})"
        )
        super().__init__(message + context)
        self.line_number = line_number


_OPENQASM_GATE_MAP = {
    "h": "H",
    "x": "X",
    "y": "Y",
    "z": "Z",
    "s": "S",
    "sdg": "SDG",
    "t": "T",
    "tdg": "TDG",
    "cx": "CNOT",
    "cz": "CZ",
    "swap": "SWAP",
    "ccx": "TOFFOLI",
    "cswap": "FREDKIN",
    "rz": "RZ",
}

_EXPR_TOKEN = re.compile(r"^[\d\.\+\-\*/\(\)epi\s]+$", re.IGNORECASE)


def parse_qasm(text: str, name: str = "qasm") -> Circuit:
    """Parse QASM text in either supported dialect."""
    stripped = text.lstrip()
    if stripped.upper().startswith("OPENQASM"):
        return parse_openqasm2(text, name=name)
    return parse_flat_qasm(text, name=name)


# --------------------------------------------------------------------------
# Flat QASM
# --------------------------------------------------------------------------


def parse_flat_qasm(text: str, name: str = "qasm") -> Circuit:
    """Parse the flat one-instruction-per-line dialect."""
    circuit = Circuit(name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split(None, 1)
        mnemonic = tokens[0]
        rest = tokens[1] if len(tokens) > 1 else ""
        if mnemonic.lower() in ("qubit", "cbit"):
            if not rest:
                raise QasmParseError("missing qubit name", line_number, raw)
            if mnemonic.lower() == "qubit":
                circuit.add_qubit(rest.strip())
            continue
        _append_flat_instruction(circuit, mnemonic, rest, line_number, raw)
    return circuit


def _append_flat_instruction(
    circuit: Circuit, mnemonic: str, rest: str, line_number: int, raw: str
) -> None:
    param = None
    match = re.match(r"^([A-Za-z]+)\(([^)]*)\)$", mnemonic)
    if match:
        mnemonic = match.group(1)
        param = _evaluate_param(match.group(2), line_number, raw)
    if not is_known_gate(mnemonic):
        raise QasmParseError(f"unknown gate {mnemonic!r}", line_number, raw)
    operands = tuple(q.strip() for q in rest.split(",") if q.strip())
    if not operands:
        raise QasmParseError(
            f"gate {mnemonic!r} has no operands", line_number, raw
        )
    try:
        circuit.append(Operation(mnemonic, operands, param))
    except (ValueError, KeyError) as exc:
        raise QasmParseError(str(exc), line_number, raw) from exc


# --------------------------------------------------------------------------
# OpenQASM 2.0 subset
# --------------------------------------------------------------------------


def parse_openqasm2(text: str, name: str = "qasm") -> Circuit:
    """Parse the OpenQASM 2.0 subset described in the module docstring."""
    circuit = Circuit(name)
    registers: dict[str, int] = {}
    # Statements are semicolon-terminated; keep line numbers by scanning
    # line-by-line and joining continuations.
    pending = ""
    pending_start = 1
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].strip()
        if not line:
            continue
        if not pending:
            pending_start = line_number
        pending += " " + line
        while ";" in pending:
            statement, pending = pending.split(";", 1)
            statement = statement.strip()
            if statement:
                _parse_openqasm_statement(
                    circuit, registers, statement, pending_start
                )
            pending_start = line_number
        pending = pending.strip()
    if pending:
        raise QasmParseError(
            f"unterminated statement {pending!r}", pending_start
        )
    return circuit


def _parse_openqasm_statement(
    circuit: Circuit,
    registers: dict[str, int],
    statement: str,
    line_number: int,
) -> None:
    lowered = statement.lower()
    if lowered.startswith("openqasm") or lowered.startswith("include"):
        return
    if lowered.startswith("creg") or lowered.startswith("barrier"):
        return
    if lowered.startswith("qreg"):
        match = re.match(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]", statement, re.I)
        if not match:
            raise QasmParseError("malformed qreg", line_number, statement)
        reg, size = match.group(1), int(match.group(2))
        registers[reg] = size
        for i in range(size):
            circuit.add_qubit(f"{reg}{i}")
        return
    if lowered.startswith("measure"):
        match = re.match(
            r"measure\s+(\w+)\s*(?:\[\s*(\d+)\s*\])?\s*(?:->.*)?$",
            statement,
            re.I,
        )
        if not match:
            raise QasmParseError("malformed measure", line_number, statement)
        for qubit in _expand_operand(
            match.group(1), match.group(2), registers, line_number, statement
        ):
            circuit.apply("MEASZ", qubit)
        return
    if lowered.startswith("reset"):
        match = re.match(
            r"reset\s+(\w+)\s*(?:\[\s*(\d+)\s*\])?$", statement, re.I
        )
        if not match:
            raise QasmParseError("malformed reset", line_number, statement)
        for qubit in _expand_operand(
            match.group(1), match.group(2), registers, line_number, statement
        ):
            circuit.apply("PREPZ", qubit)
        return
    _parse_openqasm_gate(circuit, registers, statement, line_number)


def _parse_openqasm_gate(
    circuit: Circuit,
    registers: dict[str, int],
    statement: str,
    line_number: int,
) -> None:
    match = re.match(
        r"^(\w+)\s*(?:\(([^)]*)\))?\s+(.+)$", statement
    )
    if not match:
        raise QasmParseError("malformed gate statement", line_number, statement)
    mnemonic, param_text, operand_text = match.groups()
    gate = _OPENQASM_GATE_MAP.get(mnemonic.lower())
    if gate is None:
        raise QasmParseError(
            f"unsupported OpenQASM gate {mnemonic!r}", line_number, statement
        )
    param = None
    if param_text is not None:
        param = _evaluate_param(param_text, line_number, statement)
    operand_specs = [o.strip() for o in operand_text.split(",")]
    expanded: list[list[str]] = []
    for operand in operand_specs:
        op_match = re.match(r"^(\w+)\s*(?:\[\s*(\d+)\s*\])?$", operand)
        if not op_match:
            raise QasmParseError(
                f"malformed operand {operand!r}", line_number, statement
            )
        expanded.append(
            _expand_operand(
                op_match.group(1),
                op_match.group(2),
                registers,
                line_number,
                statement,
            )
        )
    # Broadcast whole-register operands (e.g. ``h q;``) like OpenQASM does.
    lengths = {len(group) for group in expanded if len(group) > 1}
    if len(lengths) > 1:
        raise QasmParseError(
            "mismatched register broadcast lengths", line_number, statement
        )
    width = lengths.pop() if lengths else 1
    for i in range(width):
        qubits = tuple(
            group[i] if len(group) > 1 else group[0] for group in expanded
        )
        try:
            circuit.append(Operation(gate, qubits, param))
        except (ValueError, KeyError) as exc:
            raise QasmParseError(str(exc), line_number, statement) from exc


def _expand_operand(
    register: str,
    index: str | None,
    registers: dict[str, int],
    line_number: int,
    statement: str,
) -> list[str]:
    if register not in registers:
        raise QasmParseError(
            f"unknown register {register!r}", line_number, statement
        )
    if index is not None:
        i = int(index)
        if i >= registers[register]:
            raise QasmParseError(
                f"index {i} out of range for {register}[{registers[register]}]",
                line_number,
                statement,
            )
        return [f"{register}{i}"]
    return [f"{register}{i}" for i in range(registers[register])]


def _evaluate_param(expr: str, line_number: int, raw: str) -> float:
    """Evaluate a restricted arithmetic parameter expression (pi allowed)."""
    text = expr.strip()
    if not text:
        raise QasmParseError("empty parameter", line_number, raw)
    if not _EXPR_TOKEN.match(text):
        raise QasmParseError(
            f"unsupported parameter expression {expr!r}", line_number, raw
        )
    try:
        return float(
            eval(  # noqa: S307 -- input restricted to arithmetic by regex
                text.replace("pi", repr(math.pi)),
                {"__builtins__": {}},
                {"e": math.e},
            )
        )
    except Exception as exc:
        raise QasmParseError(
            f"cannot evaluate parameter {expr!r}", line_number, raw
        ) from exc
