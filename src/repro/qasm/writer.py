"""QASM serialization: the inverse of :mod:`repro.qasm.parser`.

``write_flat_qasm`` emits the flat dialect such that
``parse_qasm(write_flat_qasm(c))`` reproduces the circuit exactly
(qubit order, operation order, parameters).  This round-trip property is
enforced by property-based tests.
"""

from __future__ import annotations

import re

from .circuit import Circuit

__all__ = ["write_flat_qasm", "write_openqasm2"]

_OPENQASM_NAMES = {
    "H": "h",
    "X": "x",
    "Y": "y",
    "Z": "z",
    "S": "s",
    "SDG": "sdg",
    "T": "t",
    "TDG": "tdg",
    "CNOT": "cx",
    "CZ": "cz",
    "SWAP": "swap",
    "TOFFOLI": "ccx",
    "FREDKIN": "cswap",
    "RZ": "rz",
}


def write_flat_qasm(circuit: Circuit) -> str:
    """Serialize to the flat dialect (one declaration/instruction per line)."""
    lines = [f"# {circuit.name}"]
    for qubit in circuit.qubits:
        lines.append(f"qubit {qubit}")
    for op in circuit:
        if op.param is not None:
            lines.append(f"{op.gate}({op.param!r}) {','.join(op.qubits)}")
        else:
            lines.append(f"{op.gate} {','.join(op.qubits)}")
    return "\n".join(lines) + "\n"


def write_openqasm2(circuit: Circuit) -> str:
    """Serialize to OpenQASM 2.0.

    Qubit names are mapped to a single register ``q[i]`` indexed by
    registration order; a comment records the original names.  PrepX and
    MeasX have no direct OpenQASM 2 primitive, so they are lowered to an
    H-conjugated reset/measure.
    """
    index = {name: i for i, name in enumerate(circuit.qubits)}
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"// circuit: {circuit.name}",
    ]
    for name, i in index.items():
        if not re.fullmatch(r"q\d+", name):
            lines.append(f"// q[{i}] was {name}")
    lines.append(f"qreg q[{max(len(index), 1)}];")
    lines.append(f"creg c[{max(len(index), 1)}];")
    for op in circuit:
        operands = ", ".join(f"q[{index[q]}]" for q in op.qubits)
        if op.gate == "MEASZ":
            lines.append(f"measure {operands} -> c[{index[op.qubits[0]]}];")
        elif op.gate == "MEASX":
            lines.append(f"h {operands};")
            lines.append(f"measure {operands} -> c[{index[op.qubits[0]]}];")
        elif op.gate == "PREPZ":
            lines.append(f"reset {operands};")
        elif op.gate == "PREPX":
            lines.append(f"reset {operands};")
            lines.append(f"h {operands};")
        elif op.param is not None:
            lines.append(
                f"{_OPENQASM_NAMES[op.gate]}({op.param!r}) {operands};"
            )
        else:
            lines.append(f"{_OPENQASM_NAMES[op.gate]} {operands};")
    return "\n".join(lines) + "\n"
