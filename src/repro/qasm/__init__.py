"""Circuit IR substrate: gates, circuits, QASM parsing/writing, DAG analysis."""

from .circuit import Circuit, Operation
from .dag import CircuitDag
from .gates import GATE_SPECS, GateKind, GateSpec, gate_spec, is_known_gate
from .parser import QasmParseError, parse_flat_qasm, parse_openqasm2, parse_qasm
from .writer import write_flat_qasm, write_openqasm2

__all__ = [
    "Circuit",
    "Operation",
    "CircuitDag",
    "GateKind",
    "GateSpec",
    "GATE_SPECS",
    "gate_spec",
    "is_known_gate",
    "parse_qasm",
    "parse_flat_qasm",
    "parse_openqasm2",
    "QasmParseError",
    "write_flat_qasm",
    "write_openqasm2",
]
