"""Circuit container: the flat logical-level program representation.

A :class:`Circuit` is an ordered list of :class:`Operation` objects over
named logical qubits.  This is the common currency of the toolflow: the
frontend produces circuits, the mapper and network simulators consume
them.  Program order is significant -- braid Policy 0 replays it verbatim
(Section 6.3).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Iterable, Iterator, Optional, Sequence

from .gates import (
    GATE_SPECS,
    GateKind,
    GateSpec,
    canonical_gate_name,
    gate_spec,
)

__all__ = ["Operation", "Circuit"]


@dataclasses.dataclass(frozen=True)
class Operation:
    """One logical gate application.

    Attributes:
        gate: Canonical gate mnemonic.
        qubits: Operand qubit names, in gate order (control(s) first).
        param: Optional classical parameter (e.g. RZ angle).
    """

    gate: str
    qubits: tuple[str, ...]
    param: Optional[float] = None

    def __post_init__(self) -> None:
        # Fast path: the mnemonic is already canonical (true for every
        # operation the frontend itself constructs).
        spec = GATE_SPECS.get(self.gate)
        if spec is None:
            canonical = canonical_gate_name(self.gate)
            if canonical != self.gate:
                object.__setattr__(self, "gate", canonical)
            spec = gate_spec(self.gate)
        num_qubits = len(self.qubits)
        if num_qubits != spec.arity:
            raise ValueError(
                f"{self.gate} expects {spec.arity} qubits, got "
                f"{len(self.qubits)}: {self.qubits}"
            )
        if num_qubits > 1 and len(set(self.qubits)) != num_qubits:
            raise ValueError(
                f"{self.gate} operands must be distinct, got {self.qubits}"
            )
        if spec.parametric and self.param is None:
            raise ValueError(f"{self.gate} requires a parameter")

    @property
    def spec(self) -> GateSpec:
        # self.gate is canonical after __post_init__.
        try:
            return GATE_SPECS[self.gate]
        except KeyError:  # pragma: no cover - unreachable post-validation
            return gate_spec(self.gate)

    @property
    def arity(self) -> int:
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        return self.arity == 2

    @property
    def consumes_magic_state(self) -> bool:
        return self.spec.consumes_magic_state

    def renamed(self, mapping: dict[str, str]) -> "Operation":
        """Return a copy with qubit names substituted through ``mapping``."""
        return Operation(
            self.gate,
            tuple(mapping.get(q, q) for q in self.qubits),
            self.param,
        )

    def __str__(self) -> str:
        operands = ",".join(self.qubits)
        if self.param is not None:
            return f"{self.gate}({self.param:g}) {operands}"
        return f"{self.gate} {operands}"


class Circuit:
    """An ordered quantum program over named logical qubits.

    Qubits are registered explicitly (mirroring QASM ``qubit`` decls) or
    implicitly on first use.  Iteration yields operations in program
    order.
    """

    def __init__(
        self,
        name: str = "circuit",
        qubits: Iterable[str] = (),
        operations: Iterable[Operation] = (),
    ) -> None:
        self.name = name
        self._qubits: dict[str, None] = {}  # insertion-ordered set
        self._operations: list[Operation] = []
        # Fences serialize program regions without emitting gates: every
        # operation before position p that touches a fenced qubit must
        # precede every such operation at or after p.  The frontend uses
        # fences to model non-inlined module boundaries (Section 7.3's
        # semi- vs fully-inlined IM variants).
        self._fences: list[tuple[int, tuple[str, ...]]] = []
        for q in qubits:
            self.add_qubit(q)
        for op in operations:
            self.append(op)

    # -- construction -----------------------------------------------------

    def add_qubit(self, name: str) -> str:
        """Register a qubit name (idempotent). Returns the name."""
        if name in self._qubits:  # fast path: already validated
            return name
        if not name or any(ch.isspace() for ch in name):
            raise ValueError(f"invalid qubit name {name!r}")
        self._qubits[name] = None
        return name

    def add_qubits(self, names: Iterable[str]) -> list[str]:
        return [self.add_qubit(n) for n in names]

    def add_register(self, prefix: str, size: int) -> list[str]:
        """Register ``size`` qubits named ``prefix0 .. prefix{size-1}``."""
        if size < 1:
            raise ValueError(f"register size must be >= 1, got {size}")
        return [self.add_qubit(f"{prefix}{i}") for i in range(size)]

    def append(self, op: Operation) -> None:
        """Append an operation, implicitly registering its qubits."""
        for q in op.qubits:
            self.add_qubit(q)
        self._operations.append(op)

    def apply(self, gate: str, *qubits: str, param: Optional[float] = None) -> None:
        """Convenience: build and append an :class:`Operation`."""
        self.append(Operation(gate, tuple(qubits), param))

    def extend(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.append(op)

    def add_fence(self, qubits: Optional[Iterable[str]] = None) -> None:
        """Insert a serialization fence at the current program position.

        Args:
            qubits: Qubits the fence covers.  ``None`` fences all qubits
                registered so far (a full barrier).
        """
        if qubits is None:
            covered = tuple(self._qubits)
        else:
            covered = tuple(dict.fromkeys(qubits))
            for q in covered:
                self.add_qubit(q)
        self._fences.append((len(self._operations), covered))

    @property
    def fences(self) -> list[tuple[int, tuple[str, ...]]]:
        """Fences as (position, qubits) pairs; position is an op index."""
        return list(self._fences)

    @classmethod
    def from_operations(
        cls,
        name: str,
        qubits: Iterable[str],
        operations: Iterable[Operation],
        fences: Iterable[tuple[int, tuple[str, ...]]] = (),
    ) -> "Circuit":
        """Trusted bulk constructor: adopt prebuilt operations directly.

        Skips the per-operation implicit qubit registration of
        :meth:`append`, so ``operations`` must only touch qubits listed
        in ``qubits`` and ``fences`` must already be (position, deduped
        qubit tuple) pairs in output-index space.  Used by passes that
        transform whole circuits (lowering, cache revival), where the
        invariants hold by construction.
        """
        out = cls(name, qubits=qubits)
        out._operations = list(operations)
        out._fences = [(pos, tuple(qs)) for pos, qs in fences]
        return out

    # -- inspection ---------------------------------------------------------

    @property
    def qubits(self) -> list[str]:
        """Qubit names in registration order."""
        return list(self._qubits)

    @property
    def num_qubits(self) -> int:
        return len(self._qubits)

    @property
    def operations(self) -> list[Operation]:
        """Operations in program order (a copy; the circuit is the owner)."""
        return list(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __getitem__(self, index: int) -> Operation:
        return self._operations[index]

    def gate_counts(self) -> Counter:
        """Histogram of gate mnemonics."""
        return Counter(op.gate for op in self._operations)

    def count_kind(self, kind: GateKind) -> int:
        return sum(1 for op in self._operations if op.spec.kind is kind)

    @property
    def t_count(self) -> int:
        """Number of magic-state-consuming operations."""
        return sum(1 for op in self._operations if op.consumes_magic_state)

    @property
    def two_qubit_count(self) -> int:
        return sum(1 for op in self._operations if op.is_two_qubit)

    def has_composites(self) -> bool:
        """True if any operation still needs decomposition."""
        return any(op.spec.is_composite for op in self._operations)

    def interaction_pairs(self) -> Counter:
        """Histogram of unordered qubit pairs touched by multi-qubit ops.

        This is the weighted interaction graph input to the layout
        optimizer (Section 6.2).
        """
        pairs: Counter = Counter()
        for op in self._operations:
            if op.arity >= 2:
                qs = sorted(op.qubits)
                for i in range(len(qs)):
                    for j in range(i + 1, len(qs)):
                        pairs[(qs[i], qs[j])] += 1
        return pairs

    # -- transformation -------------------------------------------------------

    def renamed(self, mapping: dict[str, str], name: Optional[str] = None) -> "Circuit":
        """Return a copy with qubits renamed through ``mapping``."""
        out = Circuit(name or self.name)
        for q in self._qubits:
            out.add_qubit(mapping.get(q, q))
        for op in self._operations:
            out.append(op.renamed(mapping))
        out._fences = [
            (pos, tuple(mapping.get(q, q) for q in qs))
            for pos, qs in self._fences
        ]
        return out

    def copy(self, name: Optional[str] = None) -> "Circuit":
        out = Circuit(name or self.name, self._qubits, self._operations)
        out._fences = list(self._fences)
        return out

    def subcircuit(self, indices: Sequence[int], name: str = "sub") -> "Circuit":
        """Extract the operations at ``indices`` (in the given order)."""
        out = Circuit(name)
        for i in indices:
            out.append(self._operations[i])
        return out

    # -- persistence ----------------------------------------------------------

    def to_jsonable(self) -> dict:
        """Compact JSON payload (see :meth:`from_jsonable`).

        Operations are packed into one newline-separated string —
        ``GATE q...`` or ``GATE@param q...`` per line — rather than
        per-op JSON structures: qubit names cannot contain whitespace
        and gate mnemonics cannot contain ``@``, so the encoding is
        unambiguous, and a multi-hundred-thousand-op lowered circuit
        stays one (large) JSON string instead of a million-line array
        under indented serializers.  Float parameters round-trip
        exactly via ``repr``.
        """
        lines = []
        for op in self._operations:
            head = (
                op.gate if op.param is None else f"{op.gate}@{op.param!r}"
            )
            lines.append(head + " " + " ".join(op.qubits))
        return {
            "name": self.name,
            "qubits": list(self._qubits),
            "ops": "\n".join(lines),
            "fences": [[pos, list(qs)] for pos, qs in self._fences],
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "Circuit":
        """Revive a circuit persisted with :meth:`to_jsonable`.

        Operations are re-validated on construction (the payload may
        come from an on-disk cache), but qubit registration is bulk:
        the stored qubit list preserves registration order, which
        layout passes depend on.
        """
        text = payload["ops"]
        operations = []
        if text:
            append = operations.append
            for line in text.split("\n"):
                head, *qs = line.split(" ")
                gate, sep, param = head.partition("@")
                append(
                    Operation(
                        gate, tuple(qs), float(param) if sep else None
                    )
                )
        return cls.from_operations(
            payload["name"],
            payload["qubits"],
            operations,
            ((int(pos), tuple(qs)) for pos, qs in payload["fences"]),
        )

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"ops={len(self._operations)})"
        )
