"""Dependency DAG over circuit operations.

The braid scheduler (Section 6.1) "maintains a ready queue of operations
whose dependencies have been met"; the priority policies (Section 6.3)
rank ready operations by *criticality* (how many future operations depend
on a braid).  Both need the data-dependence DAG, which this module builds
from program order: operation ``j`` depends on operation ``i`` when ``i``
is the most recent earlier operation touching one of ``j``'s qubits.

The DAG also yields the paper's logical-level analyses (Figure 4, left):
critical-path length and the *parallelism factor* -- "average number of
logical operations that can be concurrently executed, were hardware
resources not a constraint" (Table 2), i.e. total ops / ASAP depth.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Callable, Iterable, Iterator, Optional, Sequence

from .circuit import Circuit, Operation

__all__ = ["CircuitDag"]

LatencyFn = Callable[[Operation], int]


def _unit_latency(op: Operation) -> int:
    return 1


class CircuitDag:
    """Data-dependence DAG of a circuit.

    Nodes are operation indices (program order).  Edges run from producer
    to consumer.  All derived quantities (levels, criticality, slack) are
    computed once, eagerly, because every consumer in the toolflow needs
    them and the circuits are static.

    Args:
        circuit: The circuit to analyze.
        latency: Optional per-operation latency for weighted critical
            paths.  Defaults to unit latency, matching the paper's
            logical-cycle accounting.
    """

    def __init__(
        self, circuit: Circuit, latency: Optional[LatencyFn] = None
    ) -> None:
        self.circuit = circuit
        self.latency: LatencyFn = latency or _unit_latency
        self.num_nodes = len(circuit)
        self._successors: list[list[int]] = [[] for _ in range(self.num_nodes)]
        self._predecessors: list[list[int]] = [[] for _ in range(self.num_nodes)]
        self._build_edges()
        self._asap = self._compute_asap()
        self._depth = (
            max(
                (self._asap[i] + self.latency(circuit[i]) for i in range(self.num_nodes)),
                default=0,
            )
        )
        self._alap = self._compute_alap()
        self._descendant_counts: Optional[list[int]] = None  # lazy
        self._successor_tuples: Optional[tuple[tuple[int, ...], ...]] = None

    # -- construction ---------------------------------------------------------

    def _build_edges(self) -> None:
        last_writer: dict[str, int] = {}
        # Cross-qubit dependencies injected by fences: qubit -> frozenset
        # of producer indices the next op on that qubit must wait for.
        fence_deps: dict[str, frozenset[int]] = {}
        fences = sorted(self.circuit.fences)
        fence_cursor = 0
        seen = set()
        for index, op in enumerate(self.circuit):
            while fence_cursor < len(fences) and fences[fence_cursor][0] <= index:
                _, fenced_qubits = fences[fence_cursor]
                producers = frozenset(
                    last_writer[q] for q in fenced_qubits if q in last_writer
                )
                for q in fenced_qubits:
                    fence_deps[q] = producers | fence_deps.get(q, frozenset())
                fence_cursor += 1
            deps = set()
            for qubit in op.qubits:
                if qubit in last_writer:
                    deps.add(last_writer[qubit])
                if qubit in fence_deps:
                    deps.update(fence_deps.pop(qubit))
            deps.discard(index)
            for dep in sorted(deps):
                edge = (dep, index)
                if edge not in seen:
                    seen.add(edge)
                    self._successors[dep].append(index)
                    self._predecessors[index].append(dep)
            for qubit in op.qubits:
                last_writer[qubit] = index

    def _compute_asap(self) -> list[int]:
        asap = [0] * self.num_nodes
        for index in range(self.num_nodes):  # program order is topological
            preds = self._predecessors[index]
            if preds:
                asap[index] = max(
                    asap[p] + self.latency(self.circuit[p]) for p in preds
                )
        return asap

    def _compute_alap(self) -> list[int]:
        alap = [0] * self.num_nodes
        for index in range(self.num_nodes - 1, -1, -1):
            duration = self.latency(self.circuit[index])
            succs = self._successors[index]
            if succs:
                alap[index] = min(alap[s] for s in succs) - duration
            else:
                alap[index] = self._depth - duration
        return alap

    EXACT_CRITICALITY_LIMIT = 20_000
    """Above this node count, criticality falls back to DAG height.

    Exact transitive descendant counting with reachability bitsets costs
    O(V^2/64) time and memory; for the multi-hundred-thousand-op SHA-1
    instances that is minutes and gigabytes.  Height (longest path to a
    sink) is the classic O(V+E) criticality surrogate, preserves the
    antitone-along-edges property the schedulers rely on, and ranks ops
    nearly identically on these circuits.
    """

    def _compute_descendant_counts(self) -> list[int]:
        """Criticality per node: exact descendant counts when affordable.

        The paper's criticality is "how many future operations depend on
        it" (Section 6.3); reachability bitsets make this exact for
        small/medium circuits, with the height fallback above
        :data:`EXACT_CRITICALITY_LIMIT`.
        """
        if self.num_nodes > self.EXACT_CRITICALITY_LIMIT:
            heights = [0] * self.num_nodes
            for index in range(self.num_nodes - 1, -1, -1):
                succs = self._successors[index]
                if succs:
                    heights[index] = 1 + max(heights[s] for s in succs)
            return heights
        masks: list[int] = [0] * self.num_nodes
        counts = [0] * self.num_nodes
        for index in range(self.num_nodes - 1, -1, -1):
            mask = 0
            for succ in self._successors[index]:
                mask |= masks[succ] | (1 << succ)
            masks[index] = mask
            counts[index] = mask.bit_count()
        return counts

    # -- structure accessors ----------------------------------------------------

    def successors(self, index: int) -> list[int]:
        return list(self._successors[index])

    def predecessors(self, index: int) -> list[int]:
        return list(self._predecessors[index])

    def in_degree(self, index: int) -> int:
        return len(self._predecessors[index])

    def in_degrees(self) -> list[int]:
        """Fresh per-node in-degree list (callers may mutate their copy)."""
        return [len(p) for p in self._predecessors]

    def edges(self) -> Iterator[tuple[int, int]]:
        """All dependence edges as ``(op, successor)`` pairs.

        Program-order construction makes every edge point forward
        (``op < successor``) — the invariant the static verifier
        re-checks per edge.
        """
        for index, succs in enumerate(self._successors):
            for succ in succs:
                yield (index, succ)

    def successor_tuples(self) -> tuple[tuple[int, ...], ...]:
        """Immutable successor adjacency, built once and shared.

        Consumers that only *read* edges (e.g. braid simulation plans)
        index this directly instead of copying per-node lists through
        :meth:`successors`.
        """
        if self._successor_tuples is None:
            self._successor_tuples = tuple(
                tuple(s) for s in self._successors
            )
        return self._successor_tuples

    def criticality_array(self) -> list[int]:
        """The full criticality vector, lazily computed and shared.

        Treat the returned list as read-only: it is the DAG's own
        cache, handed out so simulation plans can share one
        materialization across every policy that ranks by criticality.
        """
        if self._descendant_counts is None:
            self._descendant_counts = self._compute_descendant_counts()
        return self._descendant_counts

    def sources(self) -> list[int]:
        """Operations with no dependencies (initially ready)."""
        return [i for i in range(self.num_nodes) if not self._predecessors[i]]

    def topological_order(self) -> list[int]:
        """Kahn topological order (== program order for valid circuits)."""
        in_deg = [len(p) for p in self._predecessors]
        ready: deque[int] = deque(i for i, d in enumerate(in_deg) if d == 0)
        order: list[int] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for succ in self._successors[node]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
        if len(order) != self.num_nodes:
            raise RuntimeError("dependence graph has a cycle (corrupt circuit)")
        return order

    # -- schedule metrics ------------------------------------------------------

    @property
    def critical_path_length(self) -> int:
        """Weighted longest path through the DAG (== ASAP depth)."""
        return self._depth

    def asap_level(self, index: int) -> int:
        return self._asap[index]

    def alap_level(self, index: int) -> int:
        return self._alap[index]

    def slack(self, index: int) -> int:
        """Scheduling freedom: ALAP minus ASAP start time."""
        return self._alap[index] - self._asap[index]

    def criticality(self, index: int) -> int:
        """Number of transitive descendants (the paper's criticality).

        Computed lazily on first use; see
        :data:`EXACT_CRITICALITY_LIMIT` for the large-circuit fallback.
        """
        if self._descendant_counts is None:
            self._descendant_counts = self._compute_descendant_counts()
        return self._descendant_counts[index]

    def asap_levels(self) -> list[list[int]]:
        """Operations grouped by ASAP start level, for unit latency views."""
        levels: dict[int, list[int]] = {}
        for index in range(self.num_nodes):
            levels.setdefault(self._asap[index], []).append(index)
        return [levels[key] for key in sorted(levels)]

    def parallelism_profile(self) -> list[int]:
        """Ops issued per ASAP level (the ideal concurrency timeline)."""
        profile = Counter(self._asap[i] for i in range(self.num_nodes))
        return [profile[level] for level in sorted(profile)]

    @property
    def parallelism_factor(self) -> float:
        """Table 2's metric: mean concurrently-executable operations."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_nodes / max(self.critical_path_length, 1)

    def critical_operations(self) -> list[int]:
        """Indices of zero-slack operations (on some critical path)."""
        return [i for i in range(self.num_nodes) if self.slack(i) == 0]

    def __repr__(self) -> str:
        return (
            f"CircuitDag(ops={self.num_nodes}, "
            f"critical_path={self.critical_path_length}, "
            f"parallelism={self.parallelism_factor:.2f})"
        )
