"""repro: reproduction of "Optimized Surface Code Communication in
Superconducting Quantum Computers" (Javadi-Abhari et al., MICRO-50, 2017).

The package is organized bottom-up:

* :mod:`repro.tech` -- physical technology models.
* :mod:`repro.qasm` -- circuit IR, QASM parsing, dependence DAGs.
* :mod:`repro.frontend` -- compilation frontend (decompose/flatten/schedule).
* :mod:`repro.apps` -- the paper's four workloads (Table 2).
* :mod:`repro.partition` -- multilevel graph partitioner (METIS substitute).
* :mod:`repro.qec` -- planar and double-defect surface code models.
* :mod:`repro.network` -- braid simulator, teleportation, EPR pipelining.
* :mod:`repro.arch` -- Multi-SIMD and tiled microarchitectures.
* :mod:`repro.core` -- end-to-end toolflow and design-space exploration.
"""

from .tech import CURRENT, INTERMEDIATE, OPTIMISTIC, Technology

__version__ = "1.0.0"

__all__ = ["Technology", "CURRENT", "INTERMEDIATE", "OPTIMISTIC", "__version__"]
