"""Render the paper's figures/tables from cached sweep results.

Figure 6 and Table 2 re-render directly from persisted grid-point
results.  Figures 7-9 are analytic sweeps whose simulator-derived
inputs (braid congestion, EPR stall overhead) come from the same stage
cache, so a populated cache re-renders everything without simulating.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..apps.registry import get_app
from ..core.report import (
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9,
    format_table1,
    format_table2_rows,
)
from ..core.sensitivity import FIGURE9_VARIANTS, boundary_for_app
from ..network.braidsim import BraidSimResult
from ..tech import OPTIMISTIC, technology_for_error_rate
from .cache import StageCache
from .stages import PointResult

__all__ = [
    "load_points",
    "measure_table1",
    "render_failures",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_table1",
    "render_table2",
]


def render_failures(failures: Sequence) -> str:
    """One line per :class:`~repro.runner.faults.PointFailure`.

    Used by the CLI to summarize a partially failed sweep next to the
    figures rendered from its surviving points.
    """
    lines = []
    for failure in failures:
        spec = failure.spec
        lines.append(
            f"FAILED {spec.app}[{spec.size}] policy={spec.policy} "
            f"engine={spec.engine}: {failure.error_type} in stage "
            f"{failure.stage!r} after {failure.attempts} attempt(s): "
            f"{failure.error}"
        )
    return "\n".join(lines)


def load_points(cache: StageCache) -> list[PointResult]:
    """Revive every persisted grid-point result from the disk cache."""
    points = []
    for record in cache.iter_payloads("point"):
        points.append(PointResult.from_jsonable(record["value"]))
    return points


def _by_app_policy(
    points: Iterable[PointResult],
) -> dict[str, dict[int, BraidSimResult]]:
    """Group braid results as ``{row label: {policy: result}}``.

    Rows are keyed by the full non-policy spec, so a cache holding
    several sweeps (different sizes, distances, technologies) renders
    as separate rows instead of silently overwriting policies.
    """
    import dataclasses

    groups: dict[object, dict[int, BraidSimResult]] = {}
    for point in points:
        identity = dataclasses.replace(
            point.spec, policy=0, optimize_layout=None
        )
        groups.setdefault(identity, {})[point.spec.policy] = point.braid

    short = [f"{spec.app}[{spec.size}]" for spec in groups]
    ordered: dict[str, dict[int, BraidSimResult]] = {}
    for spec, by_policy in groups.items():
        label = f"{spec.app}[{spec.size}]"
        if short.count(label) > 1:
            label += f" d={spec.distance} {spec.tech_name}"
        while label in ordered:  # still colliding: keep rows distinct
            label += "'"
        ordered[label] = by_policy
    return ordered


def render_fig6(points: Iterable[PointResult]) -> str:
    """Figure 6 table (policy sweep) from grid-point results."""
    results = _by_app_policy(points)
    if not results:
        raise ValueError("no grid-point results to render Figure 6 from")
    return format_fig6(results)


def render_table2(points: Iterable[PointResult]) -> str:
    """Table 2 (parallelism factors) from grid-point results."""
    best: dict[str, PointResult] = {}
    for point in points:
        app = point.spec.app
        if (
            app not in best
            or point.logical.total_operations
            > best[app].logical.total_operations
        ):
            best[app] = point
    if not best:
        raise ValueError("no grid-point results to render Table 2 from")
    rows = []
    for app in sorted(best, key=lambda a: best[a].logical.parallelism_factor):
        spec = get_app(app)
        rows.append(
            (
                spec.title,
                spec.purpose,
                spec.paper_parallelism,
                best[app].logical.parallelism_factor,
            )
        )
    return format_table2_rows(rows)


def _calibration(app: str, inline_depth: Optional[int], cache: StageCache):
    from ..core.calibration import calibrate_app

    return calibrate_app(app, inline_depth, cache=cache)


def render_fig7(cache: StageCache, app: str = "sq") -> str:
    """Figure 7 (absolute resources vs size) at pP = 1e-8."""
    from ..core.resources import estimate_double_defect, estimate_planar

    cal = _calibration(app, None, cache)
    rows = []
    for exponent in range(0, 25, 2):
        size = 10.0**exponent
        planar = estimate_planar(cal.scaling, size, OPTIMISTIC)
        dd = estimate_double_defect(
            cal.scaling, size, OPTIMISTIC, congestion=cal.braid_congestion
        )
        rows.append(
            (
                size,
                planar.seconds,
                dd.seconds,
                planar.physical_qubits,
                dd.physical_qubits,
            )
        )
    return format_fig7(rows)


def render_fig8(
    cache: StageCache,
    apps: Sequence[str] = ("sq", "im"),
    error_rate: float = 1e-8,
) -> str:
    """Figure 8 (favorability crossover) for one or more applications."""
    from ..core.crossover import analyze_crossover

    tech = technology_for_error_rate(error_rate)
    sections = []
    for app in apps:
        analysis = analyze_crossover(
            app, tech, calibration=_calibration(app, None, cache)
        )
        sections.append(format_fig8(analysis))
    return "\n\n".join(sections)


def render_fig9(
    cache: StageCache,
    variants: Sequence[tuple[str, Optional[int]]] = FIGURE9_VARIANTS,
) -> str:
    """Figure 9 (crossover boundary vs physical error rate)."""
    lines = [
        boundary_for_app(
            app,
            inline_depth,
            calibration=_calibration(app, inline_depth, cache),
        )
        for app, inline_depth in variants
    ]
    return format_fig9(lines)


def measure_table1(
    distance: int = 9, mesh_side: int = 8
) -> tuple[float, float, float, float]:
    """Measure Table 1's communication costs on a common microbenchmark
    (one corner-to-corner communication across a ``mesh_side`` mesh).

    Returns ``(teleport_qubits, teleport_latency, braid_qubits,
    braid_latency)``.
    """
    from ..network import (
        DEFAULT_TELEPORT_MODEL,
        dor_path,
        path_links,
    )
    from ..qec import DOUBLE_DEFECT, PLANAR

    src, dst = (0, 0), (mesh_side - 1, mesh_side - 1)
    # Braiding claims its whole route for ~2 cycles of open/close
    # (distance-independent latency); space = the route's channel qubits.
    braid_latency = 2.0
    route_links = len(path_links(dor_path(src, dst)))
    braid_qubits = route_links * DOUBLE_DEFECT.tile_qubits(distance) // 4
    # Teleportation: swap-chain distribution latency unless prefetched;
    # space = one EPR pair in flight.
    teleport_latency = DEFAULT_TELEPORT_MODEL.communication_cycles(
        (0, 0), src, dst, distance, prefetched=False
    )
    teleport_qubits = 2 * PLANAR.tile_qubits(distance)
    return teleport_qubits, teleport_latency, braid_qubits, braid_latency


def render_table1() -> str:
    """Table 1 (communication tradeoffs), measured."""
    tq, tl, bq, bl = measure_table1()
    return format_table1(tq, tl, bq, bl)
