"""Fault tolerance for sweep execution: isolation, retry, injection.

Production sweeps must survive partial failure: one point that raises,
one worker OOM-killed mid-chunk, or one hung simulation must not lose
the whole sweep.  This module provides the primitives the
:class:`~repro.runner.sweep.SweepRunner` builds on:

* :class:`RetryPolicy` -- bounded attempts with deterministic
  exponential backoff (jitter derived from a seed, never from
  wall-clock entropy) and an optional per-point deadline.
* :class:`PointFailure` -- the structured record a failed grid point
  leaves behind (spec, failing stage, exception repr, attempts,
  elapsed), JSON round-trippable so sweep reports carry it.
* :func:`execute_point` -- run one grid point under a policy: catch,
  retry with backoff, enforce the deadline, and degrade ``vec`` points
  to the ``flat`` engine (tagging the result ``degraded_from``) before
  giving up.
* :exc:`SweepAborted` -- raised by the runner when failures exceed its
  ``max_failures`` budget (``0`` keeps the historical fail-fast
  behavior).
* :class:`FaultPlan` -- a seeded, deterministic fault-injection plan
  (raise on the nth stage call, sleep past the deadline, kill the
  worker process, corrupt the just-written disk entry, stall a chunk)
  wired into :class:`~repro.runner.cache.StageCache` behind
  :func:`set_fault_plan` / the ``REPRO_FAULT_PLAN`` environment
  variable, so every failure mode above is reproducibly testable.

Fault injection is **off** unless a plan is installed; the hooks cost
one module-attribute read per stage miss.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stages
    # imports cache, cache hooks into this module)
    from .keys import StageKey
    from .stages import PointResult, PointSpec

__all__ = [
    "InjectedFault",
    "PointTimeout",
    "SweepAborted",
    "RetryPolicy",
    "PointFailure",
    "FaultAction",
    "FaultPlan",
    "FAULT_PLAN_ENV",
    "set_fault_plan",
    "active_plan",
    "call_with_deadline",
    "execute_point",
    "failure_stage",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
"""Environment variable carrying a serialized :class:`FaultPlan` into
worker processes (set by :func:`set_fault_plan`)."""


class InjectedFault(RuntimeError):
    """Deterministic failure raised by an active :class:`FaultPlan`."""


class PointTimeout(RuntimeError):
    """A grid point exceeded its :attr:`RetryPolicy.timeout_s` deadline."""


class SweepAborted(RuntimeError):
    """Failure count exceeded the sweep's ``max_failures`` budget.

    Attributes:
        failures: Every :class:`PointFailure` collected before the
            abort, including the one that crossed the budget.
    """

    def __init__(self, message: str, failures: list["PointFailure"]):
        super().__init__(message)
        self.failures = failures


def failure_stage(error: BaseException) -> str:
    """The pipeline stage an exception escaped from.

    :class:`~repro.runner.cache.StageCache` tags exceptions raised
    inside stage computations with the innermost stage's name; untagged
    exceptions (raised outside any stage) report as ``"point"``.
    """
    if isinstance(error, PointTimeout):
        return "timeout"
    return getattr(error, "_repro_stage", "point")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    Attributes:
        max_attempts: Attempts per point (1 = no retry).
        base_delay: Backoff before attempt 2 in seconds; attempt ``n``
            waits ``base_delay * backoff**(n-2)`` (capped by
            ``max_delay``) plus deterministic jitter.
        backoff: Exponential growth factor between attempts.
        max_delay: Upper bound on any single backoff sleep.
        jitter_seed: Seed for the deterministic jitter fraction (the
            jitter is a hash of seed, point identity, and attempt --
            never wall-clock entropy, so schedules replay exactly).
        timeout_s: Per-point deadline in seconds (None = unbounded).
    """

    max_attempts: int = 1
    base_delay: float = 0.0
    backoff: float = 2.0
    max_delay: float = 30.0
    jitter_seed: int = 0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.backoff < 1:
            raise ValueError("base_delay must be >= 0 and backoff >= 1")

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before ``attempt`` (2-based; attempt 1 never waits).

        The jitter fraction in ``[0, 1)`` is derived from
        ``(jitter_seed, token, attempt)`` so two processes retrying the
        same point desynchronize identically on every replay.
        """
        if attempt <= 1 or self.base_delay <= 0:
            return 0.0
        raw = self.base_delay * self.backoff ** (attempt - 2)
        seed = f"{self.jitter_seed}:{token}:{attempt}".encode("utf-8")
        word = int.from_bytes(hashlib.sha256(seed).digest()[:8], "big")
        jitter = word / 2**64  # deterministic fraction in [0, 1)
        return min(raw * (1.0 + jitter), self.max_delay)

    def to_jsonable(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, payload: dict) -> "RetryPolicy":
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class PointFailure:
    """Structured record of one grid point that exhausted its policy.

    Attributes:
        spec: The failed point's spec (JSON round-trippable).
        stage: Innermost pipeline stage the final error escaped from
            (``"timeout"`` for deadline misses, ``"pool"`` for worker
            crashes the pool could not recover from).
        error: ``repr`` of the final exception.
        error_type: Final exception class name.
        attempts: How many executions were tried (degradation retries
            included).
        elapsed_seconds: Wall-clock spent across every attempt.
    """

    spec: "PointSpec"
    stage: str
    error: str
    error_type: str
    attempts: int
    elapsed_seconds: float

    def to_jsonable(self) -> dict:
        return {
            "spec": self.spec.to_jsonable(),
            "stage": self.stage,
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "PointFailure":
        from .stages import PointSpec

        return cls(
            spec=PointSpec.from_jsonable(payload["spec"]),
            stage=payload["stage"],
            error=payload["error"],
            error_type=payload.get("error_type", "Exception"),
            attempts=payload.get("attempts", 1),
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
        )


# ---------------------------------------------------------------------------
# Deterministic fault injection


_ACTION_OPS = (
    "raise",
    "sleep",
    "kill",
    "corrupt",
    "stall",
    "torn",
    "flip",
    "remote_error",
    "remote_timeout",
    "remote_hang",
)

_ACTION_SITES = {
    "raise": "compute",
    "sleep": "compute",
    "kill": "compute",
    "corrupt": "store",
    "stall": "chunk",
    "torn": "store",
    "flip": "store",
    "remote_error": "remote",
    "remote_timeout": "remote",
    "remote_hang": "remote",
}


@dataclasses.dataclass(frozen=True)
class FaultAction:
    """One injected fault.

    Attributes:
        op: ``raise`` (exception inside a stage computation), ``sleep``
            (delay a stage past its deadline), ``kill`` (hard-exit the
            worker process, producing ``BrokenProcessPool``),
            ``corrupt`` (overwrite the just-persisted disk entry with
            garbage), ``stall`` (non-cooperative delay at the start of
            a parallel chunk, simulating a wedged worker), ``torn``
            (truncate the just-persisted entry mid-write, simulating a
            crash between write and rename durability), ``flip``
            (rewrite the entry with a wrong sha256, simulating bit
            rot), ``remote_error`` / ``remote_timeout`` /
            ``remote_hang`` (make the next remote cache call fail with
            a 5xx-style error, time out, or block for ``seconds``).
        stage: Stage name the action targets (ignored for ``stall``).
        nth: Fire on the nth *matching* call seen by the process
            (1-based; counters are per process).
        seconds: Sleep/stall duration.
        match: Optional substring that must appear in the stage key's
            canonical description (e.g. ``'"engine": "vec"'`` to hit
            only vec-engine simulations).
        once: Fire at most once.  With a plan ``state_dir`` the marker
            is a file, so the "once" holds across worker processes --
            a killed-and-restarted worker does not re-fire.
    """

    op: str
    stage: Optional[str] = None
    nth: int = 1
    seconds: float = 0.0
    match: Optional[str] = None
    once: bool = True

    def __post_init__(self) -> None:
        if self.op not in _ACTION_OPS:
            raise ValueError(
                f"unknown fault op {self.op!r}; available: {_ACTION_OPS}"
            )
        if self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")

    @property
    def site(self) -> str:
        return _ACTION_SITES[self.op]

    def to_jsonable(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, payload: dict) -> "FaultAction":
        return cls(**payload)


class FaultPlan:
    """A seeded, replayable set of injected faults.

    The plan is consulted by :class:`~repro.runner.cache.StageCache` on
    every stage miss (``compute`` site) and disk write (``store``
    site), by the remote cache tier on every fetch/push (``remote``
    site), and by the parallel chunk runner (``chunk`` site).  Install
    with :func:`set_fault_plan`; worker processes inherit it through
    the :data:`FAULT_PLAN_ENV` environment variable.

    Args:
        actions: The faults to inject.
        seed: Recorded for report provenance (jitter and ordering are
            derived from action definitions, not from this seed).
        state_dir: Directory for cross-process once-markers.  Without
            it, ``once`` is tracked per process only -- a ``kill``
            action would then re-fire in every replacement worker.
    """

    def __init__(
        self,
        actions: list[FaultAction],
        seed: int = 0,
        state_dir: Optional[Union[str, os.PathLike]] = None,
        installer_pid: Optional[int] = None,
    ):
        self.actions = list(actions)
        self.seed = seed
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.installer_pid = installer_pid
        self._counts = [0] * len(self.actions)
        self._fired = [False] * len(self.actions)
        self._lock = threading.Lock()

    # -- serialization (environment transport to workers) ----------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "state_dir": (
                    str(self.state_dir) if self.state_dir else None
                ),
                "installer_pid": self.installer_pid,
                "actions": [a.to_jsonable() for a in self.actions],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(
            actions=[
                FaultAction.from_jsonable(a) for a in payload["actions"]
            ],
            seed=payload.get("seed", 0),
            state_dir=payload.get("state_dir"),
            installer_pid=payload.get("installer_pid"),
        )

    # -- firing -----------------------------------------------------------

    def _acquire_once(self, index: int) -> bool:
        """True if this process may fire action ``index`` right now."""
        action = self.actions[index]
        if not action.once:
            return True
        if self._fired[index]:
            return False
        if self.state_dir is not None:
            marker = self.state_dir / f"action-{index}.fired"
            try:
                marker.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(
                    marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                self._fired[index] = True
                return False
            os.close(fd)
        self._fired[index] = True
        return True

    def _matching(self, site: str, key: Optional["StageKey"]):
        description = (
            json.dumps(key.describe(), sort_keys=True)
            if key is not None
            else ""
        )
        for index, action in enumerate(self.actions):
            if action.site != site:
                continue
            if action.stage is not None and (
                key is None or key.stage != action.stage
            ):
                continue
            if action.match is not None and action.match not in description:
                continue
            yield index, action

    def check(
        self, site: str, key: Optional["StageKey"] = None
    ) -> list[FaultAction]:
        """Count one call at ``site`` and fire any due actions.

        ``raise``/``kill`` actions raise (or exit) from here; ``sleep``,
        ``stall``, and ``remote_hang`` block here; fired ``corrupt`` /
        ``torn`` / ``flip`` / ``remote_*`` actions are *returned* so
        the caller (the cache's disk writer or the remote backend) can
        apply the damage itself.
        """
        due: list[tuple[int, FaultAction]] = []
        with self._lock:
            for index, action in self._matching(site, key):
                self._counts[index] += 1
                if self._counts[index] >= action.nth and self._acquire_once(
                    index
                ):
                    due.append((index, action))
        fired: list[FaultAction] = []
        for index, action in due:
            label = key.stage if key is not None else site
            if action.op == "raise":
                raise InjectedFault(
                    f"injected raise at {label} "
                    f"(action {index}, call {action.nth})"
                )
            if action.op == "kill":
                if (
                    self.installer_pid is not None
                    and os.getpid() == self.installer_pid
                ):
                    # Never hard-exit the installing (main) process:
                    # degrade to an exception the runner can isolate.
                    raise InjectedFault(
                        f"injected kill at {label} refused in main "
                        "process; raising instead"
                    )
                os._exit(73)
            if action.op in ("sleep", "stall", "remote_hang"):
                time.sleep(action.seconds)
            fired.append(action)
        return fired


_PLAN: Optional[FaultPlan] = None
_PLAN_LOADED = False


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install (or clear, with None) the process-wide fault plan.

    The plan is also exported through :data:`FAULT_PLAN_ENV` so worker
    processes spawned afterwards inherit it.  Returns the previous
    plan.
    """
    global _PLAN, _PLAN_LOADED
    previous = _PLAN
    if plan is not None and plan.installer_pid is None:
        plan.installer_pid = os.getpid()
    _PLAN = plan
    _PLAN_LOADED = True
    if plan is None:
        os.environ.pop(FAULT_PLAN_ENV, None)
    else:
        os.environ[FAULT_PLAN_ENV] = plan.to_json()
    return previous


def active_plan() -> Optional[FaultPlan]:
    """The installed fault plan, loading from the environment once.

    Worker processes never call :func:`set_fault_plan` themselves;
    their first injection check materializes the parent's plan from
    :data:`FAULT_PLAN_ENV`.
    """
    global _PLAN, _PLAN_LOADED
    if not _PLAN_LOADED:
        _PLAN_LOADED = True
        text = os.environ.get(FAULT_PLAN_ENV)
        if text:
            try:
                _PLAN = FaultPlan.from_json(text)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                _PLAN = None
    return _PLAN


# ---------------------------------------------------------------------------
# Deadlines and isolated execution


def call_with_deadline(
    fn: Callable[[], Any],
    timeout_s: Optional[float],
    label: str = "point",
) -> Any:
    """Run ``fn`` with a cooperative wall-clock deadline.

    The computation runs on a daemon worker thread; exceeding the
    deadline raises :exc:`PointTimeout` and abandons the thread (pure
    stage computations write idempotent values into the cache, so a
    straggler finishing late is harmless).  ``timeout_s=None`` calls
    ``fn`` inline with no thread.
    """
    if timeout_s is None:
        return fn()
    outcome: dict[str, Any] = {}

    def target() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            outcome["error"] = error

    thread = threading.Thread(
        target=target, name=f"deadline-{label}", daemon=True
    )
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise PointTimeout(
            f"{label} exceeded its {timeout_s:g}s deadline"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


def execute_point(
    spec: "PointSpec",
    cache,
    retry: Optional[RetryPolicy] = None,
    degrade: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> Union["PointResult", "PointFailure"]:
    """Run one grid point under a retry policy; never raises.

    The point is attempted up to ``retry.max_attempts`` times with
    deterministic backoff between attempts and the per-point deadline
    enforced on each.  A non-``flat`` engine point whose attempts are
    exhausted -- or that fails immediately with :exc:`ImportError`
    (missing optional dependency, unfixable by retrying) -- is retried
    once on the ``flat`` engine; that result is tagged
    ``degraded_from`` and is **not** written back under the original
    engine's point key, so caches never mix engines.  Exhausted points
    return a :class:`PointFailure` instead of raising.
    """
    from .stages import run_point

    retry = retry if retry is not None else RetryPolicy()
    spec = spec.normalized()
    token = spec.key().digest
    start = time.perf_counter()
    attempts = 0
    last_error: Optional[BaseException] = None
    for attempt in range(1, retry.max_attempts + 1):
        attempts = attempt
        pause = retry.delay(attempt, token)
        if pause:
            sleep(pause)
        try:
            return call_with_deadline(
                lambda: run_point(spec, cache),
                retry.timeout_s,
                label=f"point {spec.app}[{spec.size}] p{spec.policy}",
            )
        except ImportError as error:
            # Optional-dependency miss (e.g. engine="vec" without
            # numpy): retrying the same engine cannot succeed.
            last_error = error
            break
        except Exception as error:  # noqa: BLE001 - isolation boundary
            last_error = error
    if degrade and spec.engine != "flat":
        fallback = dataclasses.replace(spec, engine="flat")
        attempts += 1
        try:
            result = call_with_deadline(
                lambda: run_point(fallback, cache),
                retry.timeout_s,
                label=(
                    f"point {spec.app}[{spec.size}] p{spec.policy} "
                    "(degraded)"
                ),
            )
            # Re-home the result on the original spec and tag it; the
            # flat computation stayed cached under flat-engine keys.
            return dataclasses.replace(
                result, spec=spec, degraded_from=spec.engine
            )
        except Exception as error:  # noqa: BLE001 - isolation boundary
            last_error = error
    assert last_error is not None
    return PointFailure(
        spec=spec,
        stage=failure_stage(last_error),
        error=repr(last_error),
        error_type=type(last_error).__name__,
        attempts=attempts,
        elapsed_seconds=time.perf_counter() - start,
    )
