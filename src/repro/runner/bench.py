"""Benchmark-trajectory harness for the staged pipeline.

``python -m repro bench`` runs a cold-cache sweep (single process by
default), records per-stage wall-clock from the stage cache's timing
counters into a ``BENCH_<n>.json``-style report, and optionally:

* re-runs every braid point through the *reference* simulator
  (:mod:`repro.network._braidsim_reference`) on the same machine,
  asserting bit-identical results and measuring the optimized core's
  speedup; and
* compares against a committed baseline report, failing on regression.

Because absolute seconds are machine-dependent, the regression gate
defaults to *relative* metrics measured within one run:

* the optimized-vs-reference braid speedup (the headline ratio); and
* every stage's self time normalized by the reference simulator's
  time on the same machine (``stage_seconds[stage] /
  reference_braid_seconds``), which gates the whole pipeline —
  frontend, layout, braid, SIMD/EPR, scaling, accounting — not just
  the braid stage.

A committed baseline records the ratios this codebase achieved when
the baseline was captured; CI fails when the current tree loses more
than ``tolerance`` of any of them (plus a small additive slack so
millisecond-scale stages don't flake).  Absolute stage seconds are
also recorded (and comparable with ``absolute=True``) for same-machine
trajectories like the repo-root ``BENCH_*.json`` series.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from pathlib import Path
from typing import Optional, Union

from ..network import BraidMesh, simulate_braids_reference
from ..network.policies import POLICIES
from ..qec.distance import choose_distance
from .cache import StageCache
from .stages import compute_braid, compute_frontend, compute_layout
from .sweep import GridSpec, SweepRunner, fig6_grid

__all__ = [
    "BenchReport",
    "BENCH_GRIDS",
    "bench_grid",
    "run_bench",
    "compare_reports",
    "compare_engines",
]

BENCH_FORMAT_VERSION = 1

BENCH_GRIDS: dict[str, str] = {
    "fig6": "the Figure 6 sweep (4 apps x 7 policies, sim sizes, d=5)",
    "tiny": "a minutes-budget CI grid (3 apps x 7 policies, tiny sizes)",
}


def bench_grid(name: str) -> GridSpec:
    """Resolve a bench grid preset."""
    if name == "fig6":
        return fig6_grid()
    if name == "tiny":
        return GridSpec(
            apps=("gse", "sq", "im"),
            sizes={"gse": 3, "sq": 2, "im": 8},
            policies=tuple(range(7)),
            distance=3,
        )
    raise KeyError(
        f"unknown bench grid {name!r}; available: {sorted(BENCH_GRIDS)}"
    )


@dataclasses.dataclass
class BenchReport:
    """One benchmark measurement (JSON round-trippable).

    Attributes:
        grid: Bench grid preset name.
        points: Grid points executed.
        workers: Process count of the measured sweep.
        stage_seconds: Per-stage wall-clock self time (cold cache).
        total_seconds: Whole-sweep wall-clock.
        reference_braid_seconds: Reference-simulator time over the same
            braid points (None when the reference pass was skipped).
        braid_speedup: ``reference_braid_seconds / braid_seconds``
            where :attr:`braid_seconds` sums the shared ``braid_plan``
            builds with the ``braid_sim`` simulations (None without a
            reference pass).
        equivalence_checked: Braid points verified bit-identical
            against the reference simulator.
        environment: Python/platform fingerprint of the machine, plus
            the run configuration (``workers``) and the installed
            numpy version (None when numpy is absent), so reports are
            self-describing across engines and machines.
        engine: Braid engine the sweep simulated with (reports
            recorded before the engine axis existed load as "flat").
        cache_health: Backend-tier health snapshot
            (:meth:`~repro.runner.cache.StageCache.backend_health`)
            when the bench ran against a persistent cache — records a
            degraded remote tier next to the timings it may have
            influenced.  None for the default in-memory cache (and in
            reports recorded before backends existed).
    """

    grid: str
    points: int
    workers: int
    stage_seconds: dict[str, float]
    total_seconds: float
    reference_braid_seconds: Optional[float] = None
    braid_speedup: Optional[float] = None
    equivalence_checked: int = 0
    environment: dict = dataclasses.field(default_factory=dict)
    engine: str = "flat"
    cache_health: Optional[dict] = None

    @property
    def braid_seconds(self) -> float:
        """Optimized braid cost: shared plan builds plus simulation.

        ``braid_plan`` self time (task building, route binding, DAG
        arrays — amortized across the policies of a design point) is
        counted together with ``braid_sim`` so the speedup stays
        apples-to-apples with the reference simulator, which pays its
        full per-run setup inside the timed pass.
        """
        return self.stage_seconds.get("braid_sim", 0.0) + (
            self.stage_seconds.get("braid_plan", 0.0)
        )

    def stage_ratio(self, stage: str) -> Optional[float]:
        """One stage's self time normalized by the reference braid time.

        The reference simulator runs in the same process on the same
        inputs, so the ratio cancels machine speed out of cross-machine
        comparisons the same way ``braid_speedup`` does.  None when the
        reference pass was skipped.
        """
        if not self.reference_braid_seconds:
            return None
        return (
            self.stage_seconds.get(stage, 0.0)
            / self.reference_braid_seconds
        )

    def to_jsonable(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["format"] = BENCH_FORMAT_VERSION
        return payload

    @classmethod
    def from_jsonable(cls, payload: dict) -> "BenchReport":
        payload = dict(payload)
        version = payload.pop("format", None)
        if version != BENCH_FORMAT_VERSION:
            raise ValueError(
                f"bench report format {version!r} is not the supported "
                f"version {BENCH_FORMAT_VERSION}; re-record the report"
            )
        return cls(**payload)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_jsonable(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BenchReport":
        return cls.from_jsonable(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def _environment(workers: int) -> dict:
    import os

    try:
        import numpy
    except ImportError:
        numpy_version = None
    else:
        numpy_version = numpy.__version__
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": os.cpu_count(),
        "workers": workers,
        "numpy": numpy_version,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def _reference_pass(
    cache: StageCache, grid: GridSpec
) -> tuple[float, int]:
    """Time the reference simulator over the grid's unique braid points.

    The sweep that just ran left every frontend, layout, and optimized
    braid result in ``cache``; each point is re-simulated with the seed
    event loop and must match bit-identically.

    Raises:
        RuntimeError: If any point diverges from the optimized result.
    """
    seen: set[tuple] = set()
    elapsed = 0.0
    checked = 0
    for spec in grid.expand():
        spec = spec.normalized()
        policy = POLICIES[spec.policy]
        if policy.family != "reactive":
            # The seed simulator predates the scheduler-family policies
            # (reservation table, matrix scoreboard); those points are
            # covered by the flat/vec differential harness instead.
            continue
        optimize_layout = (
            spec.optimize_layout
            if spec.optimize_layout is not None
            else policy.optimized_layout
        )
        fe = compute_frontend(cache, spec.app, spec.size, spec.inline_depth)
        distance = (
            spec.distance
            if spec.distance is not None
            else choose_distance(fe.logical.target_pl, spec.technology())
        )
        ident = (
            spec.app, spec.size, spec.inline_depth, spec.policy,
            distance, optimize_layout,
        )
        if ident in seen:
            continue
        seen.add(ident)
        machine = compute_layout(
            cache, spec.app, spec.size, spec.inline_depth, optimize_layout
        )
        optimized = compute_braid(
            cache,
            spec.app,
            spec.size,
            spec.inline_depth,
            policy=spec.policy,
            distance=distance,
            optimize_layout=optimize_layout,
            engine=spec.engine,
        )
        mesh = BraidMesh(machine.grid.rows, machine.grid.cols)
        start = time.perf_counter()
        reference = simulate_braids_reference(
            machine.circuit,
            machine.placement,
            mesh,
            spec.policy,
            distance,
            code=machine.code,
            factory_routers=machine.factory_routers,
            dag=fe.dag,
        )
        elapsed += time.perf_counter() - start
        checked += 1
        if reference != optimized:
            raise RuntimeError(
                "optimized braid simulator diverged from the reference "
                f"at {ident}: {optimized} != {reference}"
            )
    return elapsed, checked


def run_bench(
    grid: Union[str, GridSpec] = "fig6",
    reference: bool = False,
    workers: int = 1,
    engine: Optional[str] = None,
    cache: Optional[StageCache] = None,
) -> BenchReport:
    """Run one cold-cache benchmark measurement.

    Args:
        grid: Bench grid preset name (see :data:`BENCH_GRIDS`) or an
            explicit :class:`GridSpec` (reported as ``"custom"``).
        reference: Also time the reference simulator over the same
            braid points and verify bit-identical results.
        workers: Sweep process count (stage timing is only meaningful
            per process; keep 1 for trajectory comparisons).
        engine: Braid engine for every point (None keeps the grid's
            own engine — "flat" for the presets).
        cache: Explicit stage cache (default: a fresh in-memory one,
            so the measurement is genuinely cold).  When the cache has
            a disk or remote backend, its health snapshot is recorded
            in :attr:`BenchReport.cache_health`.
    """
    if isinstance(grid, str):
        spec = bench_grid(grid)
    else:
        spec, grid = grid, "custom"
    if engine is not None and engine != spec.engine:
        spec = dataclasses.replace(spec, engine=engine)
    if cache is None:
        cache = StageCache()
    runner = SweepRunner(cache=cache, workers=workers)
    start = time.perf_counter()
    result = runner.run(spec)
    total = time.perf_counter() - start
    report = BenchReport(
        grid=grid,
        points=len(result.points),
        workers=result.workers,
        stage_seconds={
            stage: round(seconds, 4)
            for stage, seconds in sorted(result.stats.seconds.items())
        },
        total_seconds=round(total, 4),
        environment=_environment(result.workers),
        engine=spec.engine,
    )
    if cache.backend is not None or cache.remote is not None:
        report.cache_health = cache.backend_health()
    if reference:
        # After a parallel sweep the stage artifacts live in worker
        # processes; _reference_pass recomputes any missing prefix
        # through the local cache before timing the reference loop.
        ref_seconds, checked = _reference_pass(cache, spec)
        report.reference_braid_seconds = round(ref_seconds, 4)
        report.equivalence_checked = checked
        braid = report.braid_seconds
        if braid > 0:
            report.braid_speedup = round(ref_seconds / braid, 4)
    return report


ABSOLUTE_SLACK_SECONDS = 0.1
"""Additive slack for the absolute gate (protects millisecond stages)."""

RATIO_SLACK = 0.02
"""Additive slack on the normalized scale (~2% of the reference braid
time) so tiny stages aren't gated on scheduler noise."""


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    tolerance: float = 0.25,
    absolute: bool = False,
    ratio_slack: float = RATIO_SLACK,
) -> list[str]:
    """Regression check; returns a list of failure descriptions.

    Relative mode (default) gates the optimized-vs-reference braid
    speedup *and* every baseline stage's reference-normalized self
    time, which cancels machine speed out of the gate.  Absolute mode
    compares raw per-stage seconds and is only sound on the machine
    that recorded the baseline.  Stages present in the current report
    but absent from the baseline are not gated (re-record the baseline
    to start gating a new stage).
    """
    failures: list[str] = []
    if current.grid != baseline.grid:
        failures.append(
            f"grid mismatch: current {current.grid!r} vs baseline "
            f"{baseline.grid!r}"
        )
        return failures
    if absolute:
        for stage, base_seconds in sorted(baseline.stage_seconds.items()):
            cur_seconds = current.stage_seconds.get(stage)
            if cur_seconds is None:
                failures.append(
                    f"{stage} missing from the current report "
                    "(stage removed or renamed?)"
                )
                continue
            ceiling = (
                base_seconds * (1.0 + tolerance) + ABSOLUTE_SLACK_SECONDS
            )
            if cur_seconds > ceiling:
                failures.append(
                    f"{stage} regressed: {cur_seconds:.2f}s > "
                    f"{base_seconds:.2f}s * (1 + {tolerance:.2f})"
                )
        return failures
    if current.braid_speedup is None:
        failures.append(
            "current report has no braid_speedup (run with reference=True)"
        )
        return failures
    if baseline.braid_speedup is None:
        failures.append("baseline report has no braid_speedup")
        return failures
    floor = baseline.braid_speedup * (1.0 - tolerance)
    if current.braid_speedup < floor:
        failures.append(
            f"braid_sim speedup regressed: {current.braid_speedup:.2f}x "
            f"< {baseline.braid_speedup:.2f}x * (1 - {tolerance:.2f})"
        )
    for stage, base_seconds in sorted(baseline.stage_seconds.items()):
        if stage in ("braid_sim", "braid_plan"):
            continue  # gated together by the speedup check above
        base_ratio = baseline.stage_ratio(stage)
        cur_ratio = current.stage_ratio(stage)
        if base_ratio is None or cur_ratio is None:
            continue  # unreachable with braid_speedup set; be safe
        if stage not in current.stage_seconds:
            failures.append(
                f"{stage} missing from the current report "
                "(stage removed or renamed?)"
            )
            continue
        ceiling = base_ratio * (1.0 + tolerance) + ratio_slack
        if cur_ratio > ceiling:
            failures.append(
                f"{stage} regressed: {cur_ratio:.3f}x reference braid "
                f"time > {base_ratio:.3f}x * (1 + {tolerance:.2f}) + "
                f"{ratio_slack:.2f} slack"
            )
    return failures


def compare_engines(
    current: BenchReport,
    other: BenchReport,
    tolerance: float = 0.25,
) -> list[str]:
    """Same-machine engine race; returns failure descriptions.

    Gates ``current``'s braid speedup against ``other``'s on the same
    grid — e.g. "the vectorized engine must not regress below the flat
    engine".  Both reports need a reference pass: the speedup is
    normalized by the reference simulator's time on each report's own
    machine/run, so two reports from the same CI job compare cleanly
    even across cache-warmth noise.
    """
    failures: list[str] = []
    if current.grid != other.grid:
        failures.append(
            f"grid mismatch: {current.grid!r} vs {other.grid!r}"
        )
        return failures
    if current.braid_speedup is None or other.braid_speedup is None:
        failures.append(
            "engine comparison needs reference passes on both reports "
            "(run with reference=True / --reference)"
        )
        return failures
    floor = other.braid_speedup * (1.0 - tolerance)
    if current.braid_speedup < floor:
        failures.append(
            f"engine {current.engine!r} ({current.braid_speedup:.2f}x "
            f"vs reference) regressed below engine {other.engine!r} "
            f"({other.braid_speedup:.2f}x) * (1 - {tolerance:.2f})"
        )
    return failures
