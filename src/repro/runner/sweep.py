"""Declarative grid sweeps with dedup, fan-out, and fault tolerance.

A :class:`GridSpec` expands into :class:`PointSpec` grid points (the
cross product the paper's figures sweep: application x size x policy x
technology).  :class:`SweepRunner` deduplicates identical points,
groups the rest by their shared frontend compilation, and executes the
groups either serially through one :class:`StageCache` (every shared
prefix computed exactly once) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Parallel execution splits each frontend group into *work-stealing
chunks over the policy axis*: when there are more workers than frontend
groups, a group's braid simulations -- the sweep's hot stage -- are
striped across several chunk jobs, and idle workers pull the next chunk
from the pool queue.  Each chunk compiles its frontend at most once in
its worker process, so a group split into ``k`` chunks compiles its
frontend at most ``k`` times; with ``workers <= groups`` the split
degenerates to one chunk per group and every frontend is compiled
exactly once across the pool, as before.

Execution is fault tolerant (see :mod:`repro.runner.faults`):

* every point runs isolated -- an exception becomes a structured
  :class:`~repro.runner.faults.PointFailure` inside the
  :class:`SweepResult` instead of losing the sweep, up to the runner's
  ``max_failures`` budget (0, the default, keeps fail-fast semantics
  by raising :exc:`~repro.runner.faults.SweepAborted` on the first
  failure);
* points retry with deterministic exponential backoff and a per-point
  deadline under a :class:`~repro.runner.faults.RetryPolicy`;
* a crashed worker (``BrokenProcessPool``) or a wedged chunk only
  costs its unfinished chunks, which are re-queued on a rebuilt pool;
* completed points are journaled to ``<out>.partial.jsonl`` as they
  land, so an interrupted sweep resumes (``python -m repro sweep
  --resume``) without recomputing journaled points.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..apps.registry import SIM_SIZES
from .cache import CacheStats, StageCache
from .faults import (
    PointFailure,
    RetryPolicy,
    SweepAborted,
    active_plan,
    execute_point,
)
from .stages import PointResult, PointSpec, frontend_key

__all__ = [
    "GridSpec",
    "SweepResult",
    "SweepRunner",
    "fig6_grid",
    "fig6x_grid",
    "journal_path",
    "load_journal",
    "SMALL_SIM_SIZES",
    "SWEEP_SCHEMA_VERSION",
]

DEFAULT_APPS: tuple[str, ...] = ("gse", "sq", "sha1", "im")

SWEEP_SCHEMA_VERSION = 2
"""Schema of persisted sweep reports.  v1 (pre-fault-tolerance) had no
``schema`` field and no ``failures``; the loader accepts both."""

SMALL_SIM_SIZES: dict[str, int] = dict(SIM_SIZES)
"""Per-app "small" instance sizes (a copy of the registry's
:data:`~repro.apps.registry.SIM_SIZES`, shared with the calibration
layer)."""


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A declarative sweep grid.

    Attributes:
        apps: Applications to sweep.
        sizes: Per-app size knob; None uses each app's default size.  A
            value may be a single size or a *sequence* of sizes, so a
            Figure 9-style size sweep is one grid.
        policies: Braid policies to sweep.
        inline_depths: Flattening variants (None = fully inlined).
        regions: SIMD region count.
        tech_name: Technology preset.
        error_rate: Explicit error rate overriding the preset.
        error_rates: Error-rate *list* sweeping the technology axis
            (None entries fall back to ``tech_name``); overrides
            ``error_rate`` when given.
        distance: Code distance override for simulations.
        window: EPR look-ahead window.
        engine: Braid engine for every point
            (:data:`repro.network.braidsim.ENGINES`).
    """

    apps: tuple[str, ...] = DEFAULT_APPS
    sizes: Optional[Mapping[str, Union[int, Sequence[int]]]] = None
    policies: tuple[int, ...] = (6,)
    inline_depths: tuple[Optional[int], ...] = (None,)
    regions: int = 4
    tech_name: str = "intermediate"
    error_rate: Optional[float] = None
    error_rates: Optional[tuple[Optional[float], ...]] = None
    distance: Optional[int] = None
    window: int = 64
    engine: str = "flat"

    def _app_sizes(self, app: str) -> tuple[Optional[int], ...]:
        if self.sizes is None:
            return (None,)
        value = self.sizes.get(app)
        if value is None:
            return (None,)
        if isinstance(value, int):
            return (value,)
        return tuple(value)

    def _error_rates(self) -> tuple[Optional[float], ...]:
        if self.error_rates is not None:
            return tuple(self.error_rates)
        return (self.error_rate,)

    def expand(self) -> list[PointSpec]:
        """Cross product as normalized, deduplicated grid points."""
        specs: list[PointSpec] = []
        seen: set[str] = set()
        for app in self.apps:
            for size in self._app_sizes(app):
                for inline_depth in self.inline_depths:
                    for error_rate in self._error_rates():
                        for policy in self.policies:
                            spec = PointSpec(
                                app=app,
                                size=size,
                                inline_depth=inline_depth,
                                policy=policy,
                                regions=self.regions,
                                tech_name=self.tech_name,
                                error_rate=error_rate,
                                distance=self.distance,
                                window=self.window,
                                engine=self.engine,
                            ).normalized()
                            digest = spec.key().digest
                            if digest not in seen:
                                seen.add(digest)
                                specs.append(spec)
        return specs


def fig6_grid(sizes: Optional[Mapping[str, int]] = None) -> GridSpec:
    """The Figure 6 sweep: four applications x seven braid policies."""
    return GridSpec(
        apps=DEFAULT_APPS,
        sizes=dict(sizes) if sizes is not None else dict(SMALL_SIM_SIZES),
        policies=tuple(range(7)),
        distance=5,
    )


def fig6x_grid(sizes: Optional[Mapping[str, int]] = None) -> GridSpec:
    """The extended Fig. 6 plane: the paper's seven reactive policies
    plus the two classical-scheduler families (7 reservation-table,
    8 matrix-scoreboard) over the same four applications."""
    return GridSpec(
        apps=DEFAULT_APPS,
        sizes=dict(sizes) if sizes is not None else dict(SMALL_SIM_SIZES),
        policies=tuple(range(9)),
        distance=5,
    )


@dataclasses.dataclass
class SweepResult:
    """Outcome of one sweep.

    Attributes:
        points: One result per *completed* deduplicated grid point, in
            grid order (failed points are absent here).
        stats: Cache hit/miss counters for this sweep (all workers).
        elapsed_seconds: Wall-clock time of the sweep.
        workers: Process count used (1 = in-process serial).
        failures: Structured records of every point that exhausted its
            retry policy (empty on a fully successful sweep).
    """

    points: list[PointResult]
    stats: CacheStats
    elapsed_seconds: float
    workers: int
    failures: list[PointFailure] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every grid point completed."""
        return not self.failures

    @property
    def degraded(self) -> list[PointResult]:
        """Points that fell back to the ``flat`` engine."""
        return [p for p in self.points if p.degraded_from is not None]

    @property
    def cache_degraded(self) -> bool:
        """True when the shared cache tier fell back to local-only."""
        return bool(self.stats.remote.get("degraded"))

    def to_jsonable(self) -> dict:
        return {
            "schema": SWEEP_SCHEMA_VERSION,
            "points": [p.to_jsonable() for p in self.points],
            "failures": [f.to_jsonable() for f in self.failures],
            "stats": self.stats.as_dict(),
            "elapsed_seconds": self.elapsed_seconds,
            "workers": self.workers,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "SweepResult":
        schema = payload.get("schema", 1)
        if not isinstance(schema, int) or schema < 1:
            raise ValueError(f"invalid sweep report schema {schema!r}")
        if schema > SWEEP_SCHEMA_VERSION:
            raise ValueError(
                f"sweep report schema {schema} is newer than this "
                f"codebase understands (<= {SWEEP_SCHEMA_VERSION})"
            )
        # v1 reports predate fault tolerance: no failures were
        # recordable, so an empty list is exact, not a guess.
        failures = [
            PointFailure.from_jsonable(f)
            for f in payload.get("failures", [])
        ]
        return cls(
            points=[
                PointResult.from_jsonable(p) for p in payload["points"]
            ],
            stats=CacheStats.from_dict(payload.get("stats", {})),
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            workers=payload.get("workers", 1),
            failures=failures,
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_jsonable(), indent=1), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepResult":
        return cls.from_jsonable(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


# ---------------------------------------------------------------------------
# Checkpoint journal


def journal_path(out: Union[str, Path]) -> Path:
    """The checkpoint journal companion of a sweep output file."""
    return Path(f"{out}.partial.jsonl")


def _journal_append(path: Path, point: PointResult) -> None:
    """Durably append one finished point to the journal.

    One JSON object per line, flushed and fsynced, so a sweep killed
    mid-run loses at most the point being written (a torn final line
    is skipped by :func:`load_journal`).  A resumed sweep may append
    after such a torn line, so the write re-establishes the line
    boundary first -- otherwise the new record would fuse with the
    fragment and both would be lost.
    """
    line = json.dumps(
        {
            "schema": SWEEP_SCHEMA_VERSION,
            "digest": point.spec.key().digest,
            "point": point.to_jsonable(),
        },
        separators=(",", ":"),
    )
    prefix = ""
    try:
        with open(path, "rb") as tail:
            tail.seek(-1, os.SEEK_END)
            if tail.read(1) != b"\n":
                prefix = "\n"
    except OSError:  # absent or empty journal: already at a boundary
        pass
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(prefix + line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def load_journal(path: Union[str, Path]) -> dict[str, PointResult]:
    """Revive journaled points as ``{spec digest: result}``.

    Torn or corrupt lines (a SIGKILL mid-append) and entries whose
    recomputed spec digest disagrees with the recorded one are
    silently skipped: the sweep recomputes those points.
    """
    path = Path(path)
    revived: dict[str, PointResult] = {}
    if not path.exists():
        return revived
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                point = PointResult.from_jsonable(record["point"])
            except (
                json.JSONDecodeError,
                KeyError,
                TypeError,
                ValueError,
            ):
                continue
            digest = point.spec.key().digest
            if record.get("digest") not in (None, digest):
                continue
            revived[digest] = point
    return revived


# ---------------------------------------------------------------------------
# Worker entry point


def _run_chunk(
    spec_payloads: list[dict],
    cache_dir: Optional[str],
    retry_payload: Optional[dict],
    remote_endpoint: Optional[str] = None,
) -> dict:
    """Worker entry point: run one chunk of points, isolated per point."""
    plan = active_plan()
    if plan is not None:
        # "stall" injection point: a wedged worker the pool-level
        # watchdog must recycle (cooperative deadlines can't see it).
        plan.check("chunk")
    cache = StageCache(cache_dir, remote=remote_endpoint)
    retry = (
        RetryPolicy.from_jsonable(retry_payload)
        if retry_payload is not None
        else RetryPolicy()
    )
    points: list[dict] = []
    failures: list[dict] = []
    for payload in spec_payloads:
        outcome = execute_point(
            PointSpec.from_jsonable(payload), cache, retry
        )
        if isinstance(outcome, PointFailure):
            failures.append(outcome.to_jsonable())
        else:
            points.append(outcome.to_jsonable())
    return {
        "points": points,
        "failures": failures,
        "stats": cache.stats.as_dict(),
    }


class SweepRunner:
    """Expands grids, dedups shared work, and executes stage jobs.

    Args:
        cache: Stage cache to run through (made fresh if omitted).
        cache_dir: On-disk cache directory for the default cache; with
            ``workers > 1`` this is also how workers persist results.
        workers: Process count.  ``1`` (default) runs in-process and
            shares every stage through one memory cache; ``> 1`` fans
            work-stealing chunks of frontend-sharing groups out to a
            process pool (splitting the braid stage inside a group
            when workers outnumber groups).
        retry: Per-point retry/backoff/deadline policy (default: one
            attempt, no deadline).
        max_failures: Failure budget.  The sweep aborts with
            :exc:`~repro.runner.faults.SweepAborted` once *more* than
            this many points have failed; ``0`` (default) is the
            historical fail-fast behavior, ``None`` never aborts.
        pool_retries: How many times a chunk lost to a crashed or
            wedged worker is re-queued on a rebuilt pool before its
            points are recorded as failures.
        pool_grace: Additive slack (seconds) on the pool watchdog
            budget derived from ``retry.timeout_s``; only meaningful
            when a per-point deadline is set.
        remote: Optional shared cache endpoint (directory, ``file://``
            path, or ``http(s)://`` URL) for the default cache's
            remote tier; worker processes get their own connection to
            the same endpoint.  Best-effort only — an outage degrades
            to local caching (``stats.remote["degraded"]``), it never
            fails the sweep.
    """

    def __init__(
        self,
        cache: Optional[StageCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        max_failures: Optional[int] = 0,
        pool_retries: int = 2,
        pool_grace: float = 30.0,
        remote: Optional[str] = None,
    ):
        if cache is None:
            cache = StageCache(cache_dir, remote=remote)
        self.cache = cache
        self.workers = max(1, workers)
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_failures = max_failures
        self.pool_retries = max(0, pool_retries)
        self.pool_grace = pool_grace

    def run(
        self,
        grid: Union[GridSpec, Iterable[PointSpec]],
        journal: Optional[Union[str, Path]] = None,
        resume: bool = False,
    ) -> SweepResult:
        """Execute every grid point, computing shared prefixes once.

        Args:
            grid: Grid (or explicit point list) to sweep.
            journal: Checkpoint file; every finished point is appended
                as it lands, and a fresh (non-resume) run truncates any
                stale journal first.
            resume: Revive journaled points instead of recomputing
                them; only the remainder of the grid executes.
        """
        if isinstance(grid, GridSpec):
            specs = grid.expand()
        else:
            specs = _dedup(grid)
        start = time.perf_counter()
        done: dict[str, PointResult] = {}
        if journal is not None:
            journal = Path(journal)
            if resume:
                revived = load_journal(journal)
                wanted = {s.key().digest for s in specs}
                done = {
                    digest: point
                    for digest, point in revived.items()
                    if digest in wanted
                }
            elif journal.exists():
                journal.unlink()
            journal.parent.mkdir(parents=True, exist_ok=True)
        todo = [s for s in specs if s.key().digest not in done]
        failures: list[PointFailure] = []
        before = CacheStats.from_dict(self.cache.stats.as_dict())
        if self.workers == 1 or len(todo) <= 1:
            for spec in todo:
                outcome = execute_point(spec, self.cache, self.retry)
                if isinstance(outcome, PointFailure):
                    failures.append(outcome)
                    self._maybe_abort(failures)
                else:
                    done[outcome.spec.key().digest] = outcome
                    if journal is not None:
                        _journal_append(journal, outcome)
            stats = _diff(self.cache.stats, before)
            workers = 1
        else:
            stats = self._run_parallel(todo, done, failures, journal)
            workers = self.workers
        order = {s.key().digest: i for i, s in enumerate(specs)}
        failures.sort(
            key=lambda f: order.get(f.spec.key().digest, len(order))
        )
        return SweepResult(
            points=[
                done[s.key().digest]
                for s in specs
                if s.key().digest in done
            ],
            stats=stats,
            elapsed_seconds=time.perf_counter() - start,
            workers=workers,
            failures=failures,
        )

    def _maybe_abort(self, failures: list[PointFailure]) -> None:
        if self.max_failures is None:
            return
        if len(failures) <= self.max_failures:
            return
        last = failures[-1]
        raise SweepAborted(
            f"sweep aborted: {len(failures)} point failure(s) exceeded "
            f"max_failures={self.max_failures} "
            f"(last: {last.error_type} in stage {last.stage!r}: "
            f"{last.error})",
            failures=list(failures),
        )

    def _pool_budget(
        self, batch: Sequence[tuple], max_workers: int
    ) -> Optional[float]:
        """Watchdog budget for one pool round (None = no deadline).

        The cooperative per-point deadline inside each worker is the
        precise mechanism; this budget is the backstop that catches a
        worker wedged *outside* it (e.g. stuck before the point even
        starts).  A worker serializes at most ``ceil(chunks /
        workers)`` chunks, each point of which gets its full retry
        schedule plus one degradation attempt; ``pool_grace`` covers
        process startup and backoff sleeps on top.
        """
        timeout_s = self.retry.timeout_s
        if timeout_s is None:
            return None
        per_point = timeout_s * (self.retry.max_attempts + 1)
        longest = max(len(chunk) for _, chunk, _ in batch)
        waves = math.ceil(len(batch) / max(1, max_workers))
        return per_point * longest * waves + self.pool_grace

    def _fail_chunk(
        self,
        failures: list[PointFailure],
        chunk: Sequence[PointSpec],
        tries: int,
        error: str,
        error_type: str,
        stage: str,
    ) -> None:
        for spec in chunk:
            failures.append(
                PointFailure(
                    spec=spec,
                    stage=stage,
                    error=error,
                    error_type=error_type,
                    attempts=tries + 1,
                    elapsed_seconds=0.0,
                )
            )

    def _run_parallel(
        self,
        specs: Sequence[PointSpec],
        done: dict[str, PointResult],
        failures: list[PointFailure],
        journal: Optional[Path],
    ) -> CacheStats:
        """Fan work-stealing chunks of frontend groups out to a pool.

        With more workers than frontend groups, each group's points --
        dominated by the per-policy braid simulations -- are striped
        across ``workers // groups`` chunk jobs, so the braid stage
        itself parallelizes instead of serializing behind one worker
        per group.  The pool queue is the steal queue: idle workers
        take whichever chunk is next.

        The pool is *recyclable*: a chunk lost to a crashed worker
        (``BrokenProcessPool``) or to a wedged worker (the watchdog
        budget expiring) is re-queued up to ``pool_retries`` times on
        a freshly built pool; only the unfinished chunks are re-run,
        results that already landed are kept.
        """
        groups: dict[str, list[PointSpec]] = {}
        for spec in specs:
            digest = frontend_key(
                spec.app, spec.size, spec.inline_depth
            ).digest
            groups.setdefault(digest, []).append(spec)

        chunks: list[list[PointSpec]] = []
        splits = max(1, self.workers // max(1, len(groups)))
        for group in groups.values():
            stripes = min(splits, len(group))
            # Round-robin striping balances the per-policy cost skew
            # (policy 0/1 simulate far longer on contended apps).
            chunks.extend(
                group[offset::stripes] for offset in range(stripes)
            )

        cache_dir = (
            str(self.cache.disk_dir)
            if self.cache.disk_dir is not None
            else None
        )
        retry_payload = self.retry.to_jsonable()
        remote_endpoint = (
            self.cache.remote.endpoint
            if self.cache.remote is not None
            else None
        )
        stats = CacheStats()
        queue: deque[tuple[int, list[PointSpec], int]] = deque(
            (cid, chunk, 0) for cid, chunk in enumerate(chunks)
        )
        while queue:
            batch = list(queue)
            queue.clear()
            max_workers = min(self.workers, len(batch))
            budget = self._pool_budget(batch, max_workers)
            pool = ProcessPoolExecutor(max_workers=max_workers)
            futures = {
                pool.submit(
                    _run_chunk,
                    [spec.to_jsonable() for spec in chunk],
                    cache_dir,
                    retry_payload,
                    remote_endpoint,
                ): (cid, chunk, tries)
                for cid, chunk, tries in batch
            }
            hung = False
            try:
                for future in as_completed(
                    list(futures), timeout=budget
                ):
                    cid, chunk, tries = futures.pop(future)
                    try:
                        payload = future.result()
                    except (BrokenProcessPool, OSError) as error:
                        # Worker crashed (OOM-kill, segfault): rebuild
                        # the pool and re-queue only this chunk.
                        self._recycle_chunk(
                            queue, failures, cid, chunk, tries,
                            repr(error), type(error).__name__, "pool",
                        )
                        continue
                    except Exception as error:
                        # The chunk runner itself failed before any
                        # per-point isolation could engage.
                        self._recycle_chunk(
                            queue, failures, cid, chunk, tries,
                            repr(error), type(error).__name__, "pool",
                        )
                        continue
                    stats.merge(CacheStats.from_dict(payload["stats"]))
                    for failure_payload in payload["failures"]:
                        failures.append(
                            PointFailure.from_jsonable(failure_payload)
                        )
                    for point_payload in payload["points"]:
                        point = PointResult.from_jsonable(point_payload)
                        done[point.spec.key().digest] = point
                        if journal is not None:
                            _journal_append(journal, point)
            except FuturesTimeout:
                hung = True
            for future, (cid, chunk, tries) in futures.items():
                self._recycle_chunk(
                    queue,
                    failures,
                    cid,
                    chunk,
                    tries,
                    f"chunk {cid} unfinished after the pool "
                    f"{'watchdog budget expired' if hung else 'broke'}",
                    "PointTimeout" if hung else "BrokenProcessPool",
                    "timeout" if hung else "pool",
                )
            # A wedged worker never drains its queue: don't block on
            # it -- abandon the pool and let the process reap at exit.
            pool.shutdown(wait=not hung, cancel_futures=True)
            self._maybe_abort(failures)
        return stats

    def _recycle_chunk(
        self,
        queue: deque,
        failures: list[PointFailure],
        cid: int,
        chunk: list[PointSpec],
        tries: int,
        error: str,
        error_type: str,
        stage: str,
    ) -> None:
        if tries < self.pool_retries:
            queue.append((cid, chunk, tries + 1))
        else:
            self._fail_chunk(
                failures, chunk, tries, error, error_type, stage
            )


def _dedup(specs: Iterable[PointSpec]) -> list[PointSpec]:
    out: list[PointSpec] = []
    seen: set[str] = set()
    for spec in specs:
        spec = spec.normalized()
        digest = spec.key().digest
        if digest not in seen:
            seen.add(digest)
            out.append(spec)
    return out


def _diff(after: CacheStats, before: CacheStats) -> CacheStats:
    """Counters accumulated between two snapshots of the same cache."""
    result = CacheStats()
    for name in ("hits", "disk_hits", "misses", "seconds", "waits", "remote"):
        now, then, out = (
            getattr(after, name),
            getattr(before, name),
            getattr(result, name),
        )
        for stage, count in now.items():
            delta = count - then.get(stage, 0)
            if delta:
                out[stage] = delta
    # ``degraded`` is a sticky state flag, not an event counter: a
    # cache already degraded before the sweep stays visibly degraded.
    if after.remote.get("degraded"):
        result.remote["degraded"] = 1
    return result
