"""Declarative grid sweeps with shared-work dedup and process fan-out.

A :class:`GridSpec` expands into :class:`PointSpec` grid points (the
cross product the paper's figures sweep: application x size x policy x
technology).  :class:`SweepRunner` deduplicates identical points,
groups the rest by their shared frontend compilation, and executes the
groups either serially through one :class:`StageCache` (every shared
prefix computed exactly once) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Parallel execution splits each frontend group into *work-stealing
chunks over the policy axis*: when there are more workers than frontend
groups, a group's braid simulations -- the sweep's hot stage -- are
striped across several chunk jobs, and idle workers pull the next chunk
from the pool queue.  Each chunk compiles its frontend at most once in
its worker process, so a group split into ``k`` chunks compiles its
frontend at most ``k`` times; with ``workers <= groups`` the split
degenerates to one chunk per group and every frontend is compiled
exactly once across the pool, as before.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..apps.registry import SIM_SIZES
from .cache import CacheStats, StageCache
from .stages import PointResult, PointSpec, frontend_key, run_point

__all__ = [
    "GridSpec",
    "SweepResult",
    "SweepRunner",
    "fig6_grid",
    "SMALL_SIM_SIZES",
]

DEFAULT_APPS: tuple[str, ...] = ("gse", "sq", "sha1", "im")

SMALL_SIM_SIZES: dict[str, int] = dict(SIM_SIZES)
"""Per-app "small" instance sizes (a copy of the registry's
:data:`~repro.apps.registry.SIM_SIZES`, shared with the calibration
layer)."""


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A declarative sweep grid.

    Attributes:
        apps: Applications to sweep.
        sizes: Per-app size knob; None uses each app's default size.  A
            value may be a single size or a *sequence* of sizes, so a
            Figure 9-style size sweep is one grid.
        policies: Braid policies to sweep.
        inline_depths: Flattening variants (None = fully inlined).
        regions: SIMD region count.
        tech_name: Technology preset.
        error_rate: Explicit error rate overriding the preset.
        error_rates: Error-rate *list* sweeping the technology axis
            (None entries fall back to ``tech_name``); overrides
            ``error_rate`` when given.
        distance: Code distance override for simulations.
        window: EPR look-ahead window.
        engine: Braid engine for every point
            (:data:`repro.network.braidsim.ENGINES`).
    """

    apps: tuple[str, ...] = DEFAULT_APPS
    sizes: Optional[Mapping[str, Union[int, Sequence[int]]]] = None
    policies: tuple[int, ...] = (6,)
    inline_depths: tuple[Optional[int], ...] = (None,)
    regions: int = 4
    tech_name: str = "intermediate"
    error_rate: Optional[float] = None
    error_rates: Optional[tuple[Optional[float], ...]] = None
    distance: Optional[int] = None
    window: int = 64
    engine: str = "flat"

    def _app_sizes(self, app: str) -> tuple[Optional[int], ...]:
        if self.sizes is None:
            return (None,)
        value = self.sizes.get(app)
        if value is None:
            return (None,)
        if isinstance(value, int):
            return (value,)
        return tuple(value)

    def _error_rates(self) -> tuple[Optional[float], ...]:
        if self.error_rates is not None:
            return tuple(self.error_rates)
        return (self.error_rate,)

    def expand(self) -> list[PointSpec]:
        """Cross product as normalized, deduplicated grid points."""
        specs: list[PointSpec] = []
        seen: set[str] = set()
        for app in self.apps:
            for size in self._app_sizes(app):
                for inline_depth in self.inline_depths:
                    for error_rate in self._error_rates():
                        for policy in self.policies:
                            spec = PointSpec(
                                app=app,
                                size=size,
                                inline_depth=inline_depth,
                                policy=policy,
                                regions=self.regions,
                                tech_name=self.tech_name,
                                error_rate=error_rate,
                                distance=self.distance,
                                window=self.window,
                                engine=self.engine,
                            ).normalized()
                            digest = spec.key().digest
                            if digest not in seen:
                                seen.add(digest)
                                specs.append(spec)
        return specs


def fig6_grid(sizes: Optional[Mapping[str, int]] = None) -> GridSpec:
    """The Figure 6 sweep: four applications x seven braid policies."""
    return GridSpec(
        apps=DEFAULT_APPS,
        sizes=dict(sizes) if sizes is not None else dict(SMALL_SIM_SIZES),
        policies=tuple(range(7)),
        distance=5,
    )


@dataclasses.dataclass
class SweepResult:
    """Outcome of one sweep.

    Attributes:
        points: One result per deduplicated grid point, in grid order.
        stats: Cache hit/miss counters for this sweep (all workers).
        elapsed_seconds: Wall-clock time of the sweep.
        workers: Process count used (1 = in-process serial).
    """

    points: list[PointResult]
    stats: CacheStats
    elapsed_seconds: float
    workers: int

    def to_jsonable(self) -> dict:
        return {
            "points": [p.to_jsonable() for p in self.points],
            "stats": self.stats.as_dict(),
            "elapsed_seconds": self.elapsed_seconds,
            "workers": self.workers,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "SweepResult":
        return cls(
            points=[
                PointResult.from_jsonable(p) for p in payload["points"]
            ],
            stats=CacheStats.from_dict(payload.get("stats", {})),
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            workers=payload.get("workers", 1),
        )

    def save(self, path: Union[str, Path]) -> None:
        import json

        Path(path).write_text(
            json.dumps(self.to_jsonable(), indent=1), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepResult":
        import json

        return cls.from_jsonable(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def _run_group(
    spec_payloads: list[dict], cache_dir: Optional[str]
) -> dict:
    """Worker entry point: run one frontend-sharing group of points."""
    cache = StageCache(cache_dir)
    points = [
        run_point(PointSpec.from_jsonable(payload), cache).to_jsonable()
        for payload in spec_payloads
    ]
    return {"points": points, "stats": cache.stats.as_dict()}


class SweepRunner:
    """Expands grids, dedups shared work, and executes stage jobs.

    Args:
        cache: Stage cache to run through (made fresh if omitted).
        cache_dir: On-disk cache directory for the default cache; with
            ``workers > 1`` this is also how workers persist results.
        workers: Process count.  ``1`` (default) runs in-process and
            shares every stage through one memory cache; ``> 1`` fans
            work-stealing chunks of frontend-sharing groups out to a
            process pool (splitting the braid stage inside a group
            when workers outnumber groups).
    """

    def __init__(
        self,
        cache: Optional[StageCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        workers: int = 1,
    ):
        if cache is None:
            cache = StageCache(cache_dir)
        self.cache = cache
        self.workers = max(1, workers)

    def run(
        self, grid: Union[GridSpec, Iterable[PointSpec]]
    ) -> SweepResult:
        """Execute every grid point, computing shared prefixes once."""
        if isinstance(grid, GridSpec):
            specs = grid.expand()
        else:
            specs = _dedup(grid)
        start = time.perf_counter()
        before = CacheStats.from_dict(self.cache.stats.as_dict())
        if self.workers == 1 or len(specs) <= 1:
            points = [run_point(spec, self.cache) for spec in specs]
            stats = _diff(self.cache.stats, before)
            workers = 1
        else:
            points, stats = self._run_parallel(specs)
            workers = self.workers
        return SweepResult(
            points=points,
            stats=stats,
            elapsed_seconds=time.perf_counter() - start,
            workers=workers,
        )

    def _run_parallel(
        self, specs: Sequence[PointSpec]
    ) -> tuple[list[PointResult], CacheStats]:
        """Fan work-stealing chunks of frontend groups out to a pool.

        With more workers than frontend groups, each group's points --
        dominated by the per-policy braid simulations -- are striped
        across ``workers // groups`` chunk jobs, so the braid stage
        itself parallelizes instead of serializing behind one worker
        per group.  The pool queue is the steal queue: idle workers
        take whichever chunk is next.
        """
        groups: dict[str, list[PointSpec]] = {}
        for spec in specs:
            digest = frontend_key(
                spec.app, spec.size, spec.inline_depth
            ).digest
            groups.setdefault(digest, []).append(spec)

        chunks: list[list[PointSpec]] = []
        splits = max(1, self.workers // max(1, len(groups)))
        for group in groups.values():
            stripes = min(splits, len(group))
            # Round-robin striping balances the per-policy cost skew
            # (policy 0/1 simulate far longer on contended apps).
            chunks.extend(
                group[offset::stripes] for offset in range(stripes)
            )

        cache_dir = (
            str(self.cache.disk_dir)
            if self.cache.disk_dir is not None
            else None
        )
        stats = CacheStats()
        by_digest: dict[str, PointResult] = {}
        max_workers = min(self.workers, len(chunks))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(
                    _run_group,
                    [spec.to_jsonable() for spec in chunk],
                    cache_dir,
                )
                for chunk in chunks
            ]
            for future in as_completed(futures):
                payload = future.result()
                stats.merge(CacheStats.from_dict(payload["stats"]))
                for point_payload in payload["points"]:
                    point = PointResult.from_jsonable(point_payload)
                    by_digest[point.spec.key().digest] = point
        # Preserve grid order regardless of completion order.
        return [by_digest[s.key().digest] for s in specs], stats


def _dedup(specs: Iterable[PointSpec]) -> list[PointSpec]:
    out: list[PointSpec] = []
    seen: set[str] = set()
    for spec in specs:
        spec = spec.normalized()
        digest = spec.key().digest
        if digest not in seen:
            seen.add(digest)
            out.append(spec)
    return out


def _diff(after: CacheStats, before: CacheStats) -> CacheStats:
    """Counters accumulated between two snapshots of the same cache."""
    result = CacheStats()
    for name in ("hits", "disk_hits", "misses", "seconds"):
        now, then, out = (
            getattr(after, name),
            getattr(before, name),
            getattr(result, name),
        )
        for stage, count in now.items():
            delta = count - then.get(stage, 0)
            if delta:
                out[stage] = delta
    return result
