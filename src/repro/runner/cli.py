"""``python -m repro``: run, sweep, report, bench, and cache admin.

Subcommands:

* ``run APP`` -- one grid point through the staged pipeline; prints the
  result as JSON (and caches it if ``--cache-dir`` is given).
* ``sweep`` -- a declarative grid (or the ``fig6`` preset) through the
  :class:`~repro.runner.sweep.SweepRunner`, with shared-work dedup,
  optional process parallelism, and fault tolerance (per-point
  isolation, ``--max-failures``/``--fail-fast``, retries with
  ``--max-attempts``/``--retry-delay``, per-point ``--timeout``,
  checkpoint ``--resume``); persists results as JSON.  Exit codes:
  0 = every point completed, 3 = completed with isolated failures
  (listed in the report), 1 = aborted past the failure budget.
* ``report`` -- re-render Figures 6-9 and Tables 1-2 from cached
  results (``--cache-dir``) or a saved sweep file (``--results``).
* ``bench`` -- cold-cache stage-timing measurement through
  :mod:`repro.runner.bench`, with optional reference-simulator
  verification and a baseline regression gate.
* ``cache`` -- stats / prune / verify / migrate for an on-disk stage
  cache (``verify`` audits payload checksums and round-trip-validates
  persisted ``lowered`` circuits; ``migrate`` re-encodes legacy
  entries with checksums and the gzip write policy; ``stats`` reports
  raw vs. stored bytes and backend health).
* ``check`` -- static IR verification of every compiled artifact of a
  sweep grid through :mod:`repro.analysis` (zero diagnostics on a
  healthy build).
* ``lint`` -- AST determinism/purity lint over source trees
  (:mod:`repro.analysis.lint`); nonzero exit on any finding.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, Sequence

from ..network.braidsim import ENGINES
from .bench import (
    BENCH_GRIDS,
    RATIO_SLACK,
    BenchReport,
    compare_engines,
    compare_reports,
    run_bench,
)
from .cache import StageCache
from .faults import RetryPolicy, SweepAborted
from .report import render_failures
from .stages import TECH_PRESETS, PointSpec, run_point
from .sweep import (
    DEFAULT_APPS,
    SMALL_SIM_SIZES,
    GridSpec,
    SweepResult,
    SweepRunner,
    fig6_grid,
    fig6x_grid,
    journal_path,
)

__all__ = ["main", "build_parser"]


def _validate_names(
    apps: Sequence[str], policies: Sequence[int]
) -> Optional[str]:
    """Return an error message for unknown app/policy names, else None."""
    from ..apps.registry import get_app
    from ..network.policies import POLICIES

    try:
        for app in apps:
            get_app(app)
    except KeyError as error:
        return str(error.args[0])
    for policy in policies:
        if policy not in POLICIES:
            return (
                f"unknown braid policy {policy!r}; "
                f"available: {sorted(POLICIES)}"
            )
    return None


def _parse_size(value: str, app: str) -> Optional[int]:
    if value == "default":
        return None
    if value == "small":
        # Resolve aliases ("ising", "SHA-1") to canonical registry names.
        from ..apps.registry import get_app

        return SMALL_SIM_SIZES[get_app(app).name]
    return int(value)


def _parse_policies(value: str) -> tuple[int, ...]:
    """Parse ``"6"``, ``"0,3,6"``, or ``"0-6"`` into policy numbers."""
    policies: list[int] = []
    for part in value.split(","):
        part = part.strip()
        if "-" in part:
            low, high = part.split("-", 1)
            policies.extend(range(int(low), int(high) + 1))
        else:
            policies.append(int(part))
    return tuple(dict.fromkeys(policies))


def _add_point_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tech",
        default="intermediate",
        choices=sorted(TECH_PRESETS),
        help="technology preset",
    )
    parser.add_argument(
        "--error-rate",
        type=float,
        default=None,
        help="physical error rate overriding the preset",
    )
    parser.add_argument(
        "--distance",
        type=int,
        default=None,
        help="code distance override (default: derived from error budget)",
    )
    parser.add_argument(
        "--regions", type=int, default=4, help="SIMD region count"
    )
    parser.add_argument(
        "--inline-depth",
        type=int,
        default=None,
        help="flattening depth (default: fully inlined)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=64,
        help="EPR look-ahead window (logical cycles)",
    )
    parser.add_argument(
        "--engine",
        default="flat",
        choices=sorted(ENGINES),
        help=(
            "braid engine (bit-identical results; vec needs the numpy "
            "extra: pip install repro[vec])"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk JSON stage cache directory",
    )
    parser.add_argument(
        "--remote-cache",
        default=None,
        metavar="ENDPOINT",
        help=(
            "shared cache tier: a directory, file:// path, or "
            "http(s):// URL; best-effort — an outage degrades to "
            "local-only caching, never fails the run"
        ),
    )
    parser.add_argument(
        "--verify-stages",
        action="store_true",
        help=(
            "run the repro.analysis IR verifier over every compiled "
            "stage artifact before it enters the cache"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Staged, cached pipeline runner for the MICRO-50 surface-code "
            "communication reproduction."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one grid point, print JSON")
    run.add_argument("app", help="application (gse, sq, sha1, im)")
    run.add_argument(
        "--size",
        default="default",
        help='size knob: an integer, "small", or "default"',
    )
    run.add_argument(
        "--policy", type=int, default=6, help="braid policy (0-8)"
    )
    _add_point_options(run)
    run.add_argument("--out", default=None, help="also write JSON here")
    run.add_argument(
        "--compact", action="store_true", help="single-line JSON output"
    )

    sweep = sub.add_parser(
        "sweep", help="run a grid sweep with dedup and parallelism"
    )
    sweep.add_argument(
        "--preset",
        choices=["fig6", "fig6x"],
        default=None,
        help=(
            "predefined grid (fig6: 4 apps x 7 policies, d=5; fig6x "
            "adds the two scheduler-family policies for a 9-policy "
            "plane)"
        ),
    )
    sweep.add_argument(
        "--apps",
        default=",".join(DEFAULT_APPS),
        help="comma-separated application list",
    )
    sweep.add_argument(
        "--size",
        default="small",
        help='size knob for every app: an integer, "small", or "default"',
    )
    sweep.add_argument(
        "--policies", default="6", help='policies: "6", "0,3,6", or "0-8"'
    )
    _add_point_options(sweep)
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count (1 = serial through one shared cache)",
    )
    sweep.add_argument(
        "--out", default=None, help="write the sweep results JSON here"
    )
    sweep.add_argument(
        "--max-failures",
        type=int,
        default=0,
        metavar="N",
        help=(
            "abort once more than N points have failed (0 = fail fast, "
            "the default; negative = never abort, isolate everything)"
        ),
    )
    sweep.add_argument(
        "--fail-fast",
        action="store_true",
        help="explicit spelling of --max-failures 0",
    )
    sweep.add_argument(
        "--max-attempts",
        type=int,
        default=1,
        metavar="N",
        help="attempts per point before it is recorded as failed",
    )
    sweep.add_argument(
        "--retry-delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "base exponential-backoff delay between attempts "
            "(deterministically jittered; see --jitter-seed)"
        ),
    )
    sweep.add_argument(
        "--jitter-seed",
        type=int,
        default=0,
        help="seed for the deterministic backoff jitter",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-point deadline; a point past it counts as failed "
            "(and wedged workers are recycled)"
        ),
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help=(
            "revive finished points from <out>.partial.jsonl and run "
            "only the remainder (requires --out)"
        ),
    )
    sweep.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help=(
            "JSON fault-injection plan (testing: see "
            "repro.runner.faults.FaultPlan)"
        ),
    )

    bench = sub.add_parser(
        "bench", help="measure cold-cache stage timings, gate regressions"
    )
    bench.add_argument(
        "--grid",
        choices=sorted(BENCH_GRIDS),
        default="fig6",
        help="bench grid preset",
    )
    bench.add_argument(
        "--reference",
        action="store_true",
        help=(
            "also time the pre-optimization reference simulator and "
            "verify bit-identical results (enables the relative gate)"
        ),
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sweep process count (keep 1 for comparable stage timings)",
    )
    bench.add_argument(
        "--engine",
        default="flat",
        choices=sorted(ENGINES),
        help=(
            "braid engine to measure (bit-identical results; vec needs "
            "the numpy extra: pip install repro[vec])"
        ),
    )
    bench.add_argument(
        "--out", default=None, help="write the bench report JSON here"
    )
    bench.add_argument(
        "--not-slower-than",
        default=None,
        metavar="REPORT",
        help=(
            "saved bench report of another engine on the same grid; "
            "fail if this run's braid speedup regresses below it by "
            "more than --tolerance (both runs need --reference)"
        ),
    )
    bench.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline report to compare against (fail on regression; "
            "gates every stage the baseline records, not just braid_sim)"
        ),
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression against the baseline",
    )
    bench.add_argument(
        "--ratio-slack",
        type=float,
        default=RATIO_SLACK,
        help=(
            "additive slack on reference-normalized stage ratios "
            "(protects millisecond-scale stages from timer noise)"
        ),
    )
    bench.add_argument(
        "--absolute",
        action="store_true",
        help=(
            "gate on absolute per-stage seconds instead of the "
            "machine-independent reference-normalized ratios"
        ),
    )

    cache_cmd = sub.add_parser(
        "cache", help="inspect or maintain an on-disk stage cache"
    )
    cache_cmd.add_argument(
        "action", choices=["stats", "prune", "verify", "migrate"]
    )
    cache_cmd.add_argument(
        "--cache-dir", required=True, help="stage cache directory"
    )
    cache_cmd.add_argument(
        "--older-than-days",
        type=float,
        default=None,
        help="prune: only remove entries at least this old",
    )
    cache_cmd.add_argument(
        "--stage",
        default=None,
        help="prune/migrate: restrict to one stage directory",
    )
    cache_cmd.add_argument(
        "--remote-cache",
        default=None,
        metavar="ENDPOINT",
        help="stats: include this remote tier's health in the report",
    )

    check = sub.add_parser(
        "check",
        help="statically verify compiled IR artifacts (repro.analysis)",
    )
    check.add_argument(
        "--grid",
        choices=["fig6", "fig6x", "tiny"],
        default="fig6",
        help=(
            "artifact grid: fig6 (4 apps, both layouts, d=5), fig6x "
            "(fig6 plus the scheduler-family policies), or tiny "
            "(3 small apps, CI-sized)"
        ),
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help=(
            "also emit advisory warnings (use-before-init, unused "
            "qubits, factory balance)"
        ),
    )
    check.add_argument(
        "--cache-dir",
        default=None,
        help="stage cache to compile artifacts through",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON instead of one line per finding",
    )

    lint = sub.add_parser(
        "lint",
        help="determinism/purity lint over Python sources (AST-based)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )

    report = sub.add_parser(
        "report", help="re-render a figure/table from cached results"
    )
    report.add_argument(
        "figure",
        choices=["fig6", "fig7", "fig8", "fig9", "table1", "table2"],
    )
    report.add_argument(
        "--cache-dir",
        default=None,
        help="stage cache to render from (and to fill as needed)",
    )
    report.add_argument(
        "--results",
        default=None,
        help="saved sweep JSON to render from (fig6/table2)",
    )
    report.add_argument(
        "--apps",
        default=None,
        help="comma-separated apps (fig8: default sq,im)",
    )
    return parser


def _apply_stage_verification(args: argparse.Namespace) -> None:
    if getattr(args, "verify_stages", False):
        from .stages import set_stage_verification

        set_stage_verification(True)


def _cmd_run(args: argparse.Namespace) -> int:
    error = _validate_names([args.app], [args.policy])
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _apply_stage_verification(args)
    spec = PointSpec(
        app=args.app,
        size=_parse_size(args.size, args.app),
        inline_depth=args.inline_depth,
        policy=args.policy,
        regions=args.regions,
        tech_name=args.tech,
        error_rate=args.error_rate,
        distance=args.distance,
        window=args.window,
        engine=args.engine,
    )
    if args.remote_cache and not args.cache_dir:
        print(
            "--remote-cache needs --cache-dir (the local tier); "
            "ignoring it",
            file=sys.stderr,
        )
    cache = StageCache(
        args.cache_dir,
        remote=args.remote_cache if args.cache_dir else None,
    )
    result = run_point(spec, cache)
    payload = result.to_jsonable()
    text = json.dumps(payload, indent=None if args.compact else 1)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(f"cache: {cache.stats.summary()}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    apps = tuple(a.strip() for a in args.apps.split(",") if a.strip())
    policies = _parse_policies(args.policies)
    error = _validate_names(apps, policies)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _apply_stage_verification(args)
    if args.preset in ("fig6", "fig6x"):
        # The preset defines the grid *shape*; point-level options
        # (--tech, --error-rate, --distance, ...) still apply.
        ignored = [
            flag
            for flag, is_default in (
                ("--apps", args.apps == ",".join(DEFAULT_APPS)),
                ("--size", args.size == "small"),
                ("--policies", args.policies == "6"),
            )
            if not is_default
        ]
        if ignored:
            print(
                f"preset {args.preset} defines the grid shape; ignoring "
                + ", ".join(ignored),
                file=sys.stderr,
            )
        grid = fig6_grid() if args.preset == "fig6" else fig6x_grid()
        grid = dataclasses.replace(
            grid,
            tech_name=args.tech,
            error_rate=args.error_rate,
            regions=args.regions,
            inline_depths=(args.inline_depth,),
            window=args.window,
            distance=(
                args.distance if args.distance is not None else grid.distance
            ),
            engine=args.engine,
        )
    else:
        grid = GridSpec(
            apps=apps,
            sizes={app: _parse_size(args.size, app) for app in apps}
            if args.size != "default"
            else None,
            policies=policies,
            inline_depths=(args.inline_depth,),
            regions=args.regions,
            tech_name=args.tech,
            error_rate=args.error_rate,
            distance=args.distance,
            window=args.window,
            engine=args.engine,
        )
    max_failures: Optional[int] = args.max_failures
    if args.fail_fast:
        if max_failures != 0:
            print(
                "error: --fail-fast conflicts with a nonzero "
                "--max-failures",
                file=sys.stderr,
            )
            return 2
        max_failures = 0
    elif max_failures is not None and max_failures < 0:
        max_failures = None
    if args.resume and not args.out:
        print(
            "error: --resume needs --out (the journal lives at "
            "<out>.partial.jsonl)",
            file=sys.stderr,
        )
        return 2
    if args.fault_plan:
        from pathlib import Path

        from .faults import FaultPlan, set_fault_plan

        try:
            plan = FaultPlan.from_json(
                Path(args.fault_plan).read_text(encoding="utf-8")
            )
        except (OSError, ValueError, KeyError, TypeError) as err:
            print(
                f"error: unreadable fault plan {args.fault_plan}: {err}",
                file=sys.stderr,
            )
            return 2
        set_fault_plan(plan)
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        base_delay=args.retry_delay,
        jitter_seed=args.jitter_seed,
        timeout_s=args.timeout,
    )
    journal = journal_path(args.out) if args.out else None
    if args.remote_cache and not args.cache_dir:
        print(
            "--remote-cache needs --cache-dir (the local tier); "
            "ignoring it",
            file=sys.stderr,
        )
    runner = SweepRunner(
        cache_dir=args.cache_dir,
        workers=args.workers,
        retry=retry,
        max_failures=max_failures,
        remote=args.remote_cache if args.cache_dir else None,
    )
    try:
        result = runner.run(grid, journal=journal, resume=args.resume)
    except SweepAborted as error:
        print(f"error: {error}", file=sys.stderr)
        print(render_failures(error.failures), file=sys.stderr)
        if journal is not None and journal.exists():
            print(
                f"journal kept at {journal}; rerun with --resume to "
                "continue from the finished points",
                file=sys.stderr,
            )
        return 1
    print(
        f"swept {len(result.points)} points in "
        f"{result.elapsed_seconds:.2f}s with {result.workers} worker(s)",
        file=sys.stderr,
    )
    print(f"cache: {result.stats.summary()}", file=sys.stderr)
    if result.degraded:
        print(
            f"{len(result.degraded)} point(s) degraded to the flat "
            "engine",
            file=sys.stderr,
        )
    if result.cache_degraded:
        print(
            "remote cache tier degraded to local-only (circuit "
            "breaker open; results are unaffected)",
            file=sys.stderr,
        )
    if not result.ok:
        print(render_failures(result.failures), file=sys.stderr)
    if args.out:
        result.save(args.out)
        print(f"results written to {args.out}", file=sys.stderr)
        if journal is not None and journal.exists():
            if result.ok:
                # Everything landed in the final report: the
                # checkpoint has served its purpose.
                journal.unlink()
            else:
                print(
                    f"journal kept at {journal}; rerun with --resume "
                    "to retry only the failed points",
                    file=sys.stderr,
                )
    else:
        print(json.dumps(result.to_jsonable(), indent=1))
    return 0 if result.ok else 3


def _cmd_bench(args: argparse.Namespace) -> int:
    reference = args.reference
    if args.baseline and not args.absolute and not reference:
        print(
            "relative baseline gate needs the reference pass; "
            "enabling --reference",
            file=sys.stderr,
        )
        reference = True
    if args.not_slower_than and not reference:
        print(
            "--not-slower-than compares braid speedups; "
            "enabling --reference",
            file=sys.stderr,
        )
        reference = True
    report = run_bench(
        grid=args.grid,
        reference=reference,
        workers=args.workers,
        engine=args.engine,
    )
    print(json.dumps(report.to_jsonable(), indent=1, sort_keys=True))
    if report.equivalence_checked:
        print(
            f"verified {report.equivalence_checked} braid points "
            "bit-identical to the reference simulator",
            file=sys.stderr,
        )
    if report.braid_speedup is not None:
        print(
            f"braid plan+sim: {report.braid_seconds:.2f}s optimized vs "
            f"{report.reference_braid_seconds:.2f}s reference "
            f"({report.braid_speedup:.2f}x)",
            file=sys.stderr,
        )
    if args.out:
        report.save(args.out)
        print(f"bench report written to {args.out}", file=sys.stderr)
    if args.baseline:
        baseline = BenchReport.load(args.baseline)
        failures = compare_reports(
            report,
            baseline,
            tolerance=args.tolerance,
            absolute=args.absolute,
            ratio_slack=args.ratio_slack,
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        gated = sorted(baseline.stage_seconds)
        print(
            f"no regression against {args.baseline} "
            f"(tolerance {args.tolerance:.0%}; gated stages: "
            f"{', '.join(gated)})",
            file=sys.stderr,
        )
    if args.not_slower_than:
        other = BenchReport.load(args.not_slower_than)
        failures = compare_engines(
            report, other, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"engine {report.engine!r} ({report.braid_speedup:.2f}x) "
            f"holds against {other.engine!r} "
            f"({other.braid_speedup:.2f}x) from {args.not_slower_than}",
            file=sys.stderr,
        )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.older_than_days is not None and args.action != "prune":
        print(
            "--older-than-days only applies to the prune action",
            file=sys.stderr,
        )
        return 2
    if args.stage is not None and args.action not in ("prune", "migrate"):
        print(
            "--stage only applies to the prune and migrate actions",
            file=sys.stderr,
        )
        return 2
    cache = StageCache(args.cache_dir, remote=args.remote_cache)
    if args.action == "stats":
        print(json.dumps(cache.disk_stats(), indent=1))
        return 0
    if args.action == "prune":
        seconds = (
            args.older_than_days * 86400.0
            if args.older_than_days is not None
            else None
        )
        removed = cache.prune(older_than_seconds=seconds, stage=args.stage)
        print(f"pruned {removed} cache entries", file=sys.stderr)
        return 0
    if args.action == "migrate":
        result = cache.migrate(stage=args.stage)
        print(json.dumps(result, indent=1))
        print(
            f"migrated {result['migrated']} entries "
            f"({result['unchanged']} already current, "
            f"{result['stale']} stale, "
            f"{len(result['failed'])} failed)",
            file=sys.stderr,
        )
        return 1 if result["failed"] else 0
    from ..analysis.verify import lowered_payload_check

    result = cache.verify(
        payload_checks={"lowered": lowered_payload_check}
    )
    print(json.dumps(result, indent=1))
    bad = (
        len(result["corrupt"])
        + len(result["checksum"])
        + len(result["stale_format"])
        + len(result["mismatched"])
        + len(result["invalid_payload"])
    )
    if bad:
        print(f"{bad} problematic cache entries", file=sys.stderr)
        return 1
    print(f"all {result['ok']} entries verified", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from ..analysis.verify import check_grid
    from .bench import bench_grid

    if args.grid == "fig6":
        grid = fig6_grid()
    elif args.grid == "fig6x":
        grid = fig6x_grid()
    else:
        grid = bench_grid(args.grid)
    cache = StageCache(args.cache_dir)
    report = check_grid(
        grid,
        cache=cache,
        strict=args.strict,
        progress=lambda artifact: print(
            f"checking {artifact}", file=sys.stderr
        ),
    )
    if args.json:
        print(json.dumps(report.to_jsonable(), indent=1))
    else:
        for diag in report.diagnostics:
            print(diag.format())
    print(
        f"checked {report.artifacts_checked} artifact set(s) covering "
        f"{report.points_checked} grid point(s): "
        f"{len(report.diagnostics)} finding(s), "
        f"{len(report.errors)} error(s)",
        file=sys.stderr,
    )
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from ..analysis.lint import lint_paths

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        import repro

        paths = [Path(repro.__file__).parent]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(paths)
    if args.json:
        print(json.dumps([f.to_jsonable() for f in findings], indent=1))
    else:
        for finding in findings:
            print(finding.format())
    print(
        f"linted {', '.join(str(p) for p in paths)}: "
        f"{len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from . import report as renderers

    cache = StageCache(args.cache_dir)
    if args.figure in ("fig6", "table2"):
        if args.results:
            result = SweepResult.load(args.results)
            points = result.points
            if not result.ok:
                # A schema-2 report may be partial: say which points
                # are missing instead of rendering silently short.
                print(
                    f"warning: {len(result.failures)} failed point(s) "
                    "absent from this report",
                    file=sys.stderr,
                )
                print(render_failures(result.failures), file=sys.stderr)
        elif args.cache_dir:
            points = renderers.load_points(cache)
        else:
            print(
                f"{args.figure} needs --results or --cache-dir with "
                "persisted sweep points",
                file=sys.stderr,
            )
            return 2
        render = (
            renderers.render_fig6
            if args.figure == "fig6"
            else renderers.render_table2
        )
        try:
            print(render(points))
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        return 0
    if args.figure == "table1":
        print(renderers.render_table1())
        return 0
    if args.figure == "fig7":
        print(renderers.render_fig7(cache))
        return 0
    if args.figure == "fig8":
        apps = (
            tuple(a.strip() for a in args.apps.split(","))
            if args.apps
            else ("sq", "im")
        )
        error = _validate_names(apps, [])
        if error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(renderers.render_fig8(cache, apps=apps))
        return 0
    print(renderers.render_fig9(cache))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "lint":
            return _cmd_lint(args)
        return _cmd_report(args)
    except BrokenPipeError:
        # Downstream reader (e.g. `| head`) closed stdout early.
        return 0
    except ImportError as error:
        # Optional-dependency miss (e.g. --engine vec without numpy):
        # surface the install hint instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
