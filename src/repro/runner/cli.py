"""``python -m repro``: run, sweep, and report from the command line.

Subcommands:

* ``run APP`` -- one grid point through the staged pipeline; prints the
  result as JSON (and caches it if ``--cache-dir`` is given).
* ``sweep`` -- a declarative grid (or the ``fig6`` preset) through the
  :class:`~repro.runner.sweep.SweepRunner`, with shared-work dedup and
  optional process parallelism; persists results as JSON.
* ``report`` -- re-render Figures 6-9 and Tables 1-2 from cached
  results (``--cache-dir``) or a saved sweep file (``--results``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, Sequence

from .cache import StageCache
from .stages import TECH_PRESETS, PointSpec, run_point
from .sweep import (
    DEFAULT_APPS,
    SMALL_SIM_SIZES,
    GridSpec,
    SweepResult,
    SweepRunner,
    fig6_grid,
)

__all__ = ["main", "build_parser"]


def _validate_names(
    apps: Sequence[str], policies: Sequence[int]
) -> Optional[str]:
    """Return an error message for unknown app/policy names, else None."""
    from ..apps.registry import get_app
    from ..network.policies import POLICIES

    try:
        for app in apps:
            get_app(app)
    except KeyError as error:
        return str(error.args[0])
    for policy in policies:
        if policy not in POLICIES:
            return (
                f"unknown braid policy {policy!r}; "
                f"available: {sorted(POLICIES)}"
            )
    return None


def _parse_size(value: str, app: str) -> Optional[int]:
    if value == "default":
        return None
    if value == "small":
        # Resolve aliases ("ising", "SHA-1") to canonical registry names.
        from ..apps.registry import get_app

        return SMALL_SIM_SIZES[get_app(app).name]
    return int(value)


def _parse_policies(value: str) -> tuple[int, ...]:
    """Parse ``"6"``, ``"0,3,6"``, or ``"0-6"`` into policy numbers."""
    policies: list[int] = []
    for part in value.split(","):
        part = part.strip()
        if "-" in part:
            low, high = part.split("-", 1)
            policies.extend(range(int(low), int(high) + 1))
        else:
            policies.append(int(part))
    return tuple(dict.fromkeys(policies))


def _add_point_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tech",
        default="intermediate",
        choices=sorted(TECH_PRESETS),
        help="technology preset",
    )
    parser.add_argument(
        "--error-rate",
        type=float,
        default=None,
        help="physical error rate overriding the preset",
    )
    parser.add_argument(
        "--distance",
        type=int,
        default=None,
        help="code distance override (default: derived from error budget)",
    )
    parser.add_argument(
        "--regions", type=int, default=4, help="SIMD region count"
    )
    parser.add_argument(
        "--inline-depth",
        type=int,
        default=None,
        help="flattening depth (default: fully inlined)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=64,
        help="EPR look-ahead window (logical cycles)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk JSON stage cache directory",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Staged, cached pipeline runner for the MICRO-50 surface-code "
            "communication reproduction."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one grid point, print JSON")
    run.add_argument("app", help="application (gse, sq, sha1, im)")
    run.add_argument(
        "--size",
        default="default",
        help='size knob: an integer, "small", or "default"',
    )
    run.add_argument(
        "--policy", type=int, default=6, help="braid policy (0-6)"
    )
    _add_point_options(run)
    run.add_argument("--out", default=None, help="also write JSON here")
    run.add_argument(
        "--compact", action="store_true", help="single-line JSON output"
    )

    sweep = sub.add_parser(
        "sweep", help="run a grid sweep with dedup and parallelism"
    )
    sweep.add_argument(
        "--preset",
        choices=["fig6"],
        default=None,
        help="predefined grid (fig6: 4 apps x 7 policies, d=5)",
    )
    sweep.add_argument(
        "--apps",
        default=",".join(DEFAULT_APPS),
        help="comma-separated application list",
    )
    sweep.add_argument(
        "--size",
        default="small",
        help='size knob for every app: an integer, "small", or "default"',
    )
    sweep.add_argument(
        "--policies", default="6", help='policies: "6", "0,3,6", or "0-6"'
    )
    _add_point_options(sweep)
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count (1 = serial through one shared cache)",
    )
    sweep.add_argument(
        "--out", default=None, help="write the sweep results JSON here"
    )

    report = sub.add_parser(
        "report", help="re-render a figure/table from cached results"
    )
    report.add_argument(
        "figure",
        choices=["fig6", "fig7", "fig8", "fig9", "table1", "table2"],
    )
    report.add_argument(
        "--cache-dir",
        default=None,
        help="stage cache to render from (and to fill as needed)",
    )
    report.add_argument(
        "--results",
        default=None,
        help="saved sweep JSON to render from (fig6/table2)",
    )
    report.add_argument(
        "--apps",
        default=None,
        help="comma-separated apps (fig8: default sq,im)",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    error = _validate_names([args.app], [args.policy])
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    spec = PointSpec(
        app=args.app,
        size=_parse_size(args.size, args.app),
        inline_depth=args.inline_depth,
        policy=args.policy,
        regions=args.regions,
        tech_name=args.tech,
        error_rate=args.error_rate,
        distance=args.distance,
        window=args.window,
    )
    cache = StageCache(args.cache_dir)
    result = run_point(spec, cache)
    payload = result.to_jsonable()
    text = json.dumps(payload, indent=None if args.compact else 1)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(f"cache: {cache.stats.summary()}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    apps = tuple(a.strip() for a in args.apps.split(",") if a.strip())
    policies = _parse_policies(args.policies)
    error = _validate_names(apps, policies)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.preset == "fig6":
        # The preset defines the grid *shape*; point-level options
        # (--tech, --error-rate, --distance, ...) still apply.
        ignored = [
            flag
            for flag, is_default in (
                ("--apps", args.apps == ",".join(DEFAULT_APPS)),
                ("--size", args.size == "small"),
                ("--policies", args.policies == "6"),
            )
            if not is_default
        ]
        if ignored:
            print(
                "preset fig6 defines the grid shape; ignoring "
                + ", ".join(ignored),
                file=sys.stderr,
            )
        grid = fig6_grid()
        grid = dataclasses.replace(
            grid,
            tech_name=args.tech,
            error_rate=args.error_rate,
            regions=args.regions,
            inline_depths=(args.inline_depth,),
            window=args.window,
            distance=(
                args.distance if args.distance is not None else grid.distance
            ),
        )
    else:
        grid = GridSpec(
            apps=apps,
            sizes={app: _parse_size(args.size, app) for app in apps}
            if args.size != "default"
            else None,
            policies=policies,
            inline_depths=(args.inline_depth,),
            regions=args.regions,
            tech_name=args.tech,
            error_rate=args.error_rate,
            distance=args.distance,
            window=args.window,
        )
    runner = SweepRunner(cache_dir=args.cache_dir, workers=args.workers)
    result = runner.run(grid)
    print(
        f"swept {len(result.points)} points in "
        f"{result.elapsed_seconds:.2f}s with {result.workers} worker(s)",
        file=sys.stderr,
    )
    print(f"cache: {result.stats.summary()}", file=sys.stderr)
    if args.out:
        result.save(args.out)
        print(f"results written to {args.out}", file=sys.stderr)
    else:
        print(json.dumps(result.to_jsonable(), indent=1))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from . import report as renderers

    cache = StageCache(args.cache_dir)
    if args.figure in ("fig6", "table2"):
        if args.results:
            points = SweepResult.load(args.results).points
        elif args.cache_dir:
            points = renderers.load_points(cache)
        else:
            print(
                f"{args.figure} needs --results or --cache-dir with "
                "persisted sweep points",
                file=sys.stderr,
            )
            return 2
        render = (
            renderers.render_fig6
            if args.figure == "fig6"
            else renderers.render_table2
        )
        try:
            print(render(points))
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        return 0
    if args.figure == "table1":
        print(renderers.render_table1())
        return 0
    if args.figure == "fig7":
        print(renderers.render_fig7(cache))
        return 0
    if args.figure == "fig8":
        apps = (
            tuple(a.strip() for a in args.apps.split(","))
            if args.apps
            else ("sq", "im")
        )
        error = _validate_names(apps, [])
        if error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(renderers.render_fig8(cache, apps=apps))
        return 0
    print(renderers.render_fig9(cache))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        return _cmd_report(args)
    except BrokenPipeError:
        # Downstream reader (e.g. `| head`) closed stdout early.
        return 0
