"""Stable, hashable identities for pipeline stage invocations.

A :class:`StageKey` names one stage invocation by its stage name and a
canonical rendering of its parameters.  Two invocations with equal
parameters — built in the same process or different ones — produce
equal keys and equal digests, which is what lets the sweep runner share
work across grid points and resume from an on-disk cache.

Canonicalization rules: mappings are sorted by key, sequences become
lists, dataclasses (e.g. :class:`repro.tech.Technology`) become field
dicts, and floats keep their exact ``repr`` via JSON.  Anything else is
rejected loudly rather than keyed ambiguously.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping, Sequence

__all__ = ["StageKey", "canonicalize", "canonical_json"]


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to deterministic JSON-able primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonicalize(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(v) for v in value)
    if isinstance(value, Sequence):
        return [canonicalize(v) for v in value]
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for a stage key"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON text for a canonicalizable value."""
    return json.dumps(
        canonicalize(value), sort_keys=True, separators=(",", ":")
    )


@dataclasses.dataclass(frozen=True)
class StageKey:
    """Identity of one stage invocation.

    Attributes:
        stage: Stage name (``frontend``, ``braid_sim``, ``point``, ...).
        params: Sorted (name, canonical-JSON value) pairs.
    """

    stage: str
    params: tuple[tuple[str, str], ...]

    @classmethod
    def make(cls, stage: str, /, **params: Any) -> "StageKey":
        """Build a key from keyword parameters (order-insensitive).

        ``cls`` and ``stage`` are positional-only, so parameters that
        happen to share those names remain valid keyword arguments.
        """
        items = tuple(
            (name, canonical_json(value))
            for name, value in sorted(params.items())
        )
        return cls(stage=stage, params=items)

    @property
    def digest(self) -> str:
        """Content hash, stable across processes and sessions."""
        payload = self.stage + "\n" + "\n".join(
            f"{name}={value}" for name, value in self.params
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def describe(self) -> dict[str, Any]:
        """Human-readable key contents (for cache file sidecars)."""
        return {
            "stage": self.stage,
            "params": {name: json.loads(value) for name, value in self.params},
        }

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.stage}:{self.digest}"
