"""Staged, cached, parallel execution of the reproduction pipeline.

* :mod:`repro.runner.keys` -- stable stage-invocation identities.
* :mod:`repro.runner.cache` -- memory + on-disk JSON result cache.
* :mod:`repro.runner.backends` -- pluggable disk-tier backends: local
  directory with locks + checksums, gzip write policy, degrading
  remote tier.
* :mod:`repro.runner.stages` -- the pipeline stages + grid points.
* :mod:`repro.runner.sweep` -- grid expansion, dedup, process fan-out,
  checkpoint/resume journaling.
* :mod:`repro.runner.faults` -- retry/backoff/deadline policies,
  per-point failure records, deterministic fault injection.
* :mod:`repro.runner.bench` -- cold-cache stage timing + regression gate.
* :mod:`repro.runner.report` -- figure/table rendering from the cache.
* :mod:`repro.runner.cli` -- ``python -m repro``
  (run / sweep / report / bench / cache).

See ``docs/ARCHITECTURE.md`` for the module map and the cache-key flow
through the stages, and ``docs/PERFORMANCE.md`` for the bench harness
and the CI regression gate.
"""

from .backends import (
    CACHE_FORMAT_VERSION,
    CircuitBreaker,
    CorruptEntry,
    GzipBackend,
    LocalDirBackend,
    RemoteBackend,
    RemoteError,
    RemoteTimeout,
    default_backend,
)
from .bench import BenchReport, compare_reports, run_bench
from .cache import CacheStats, StageCache
from .faults import (
    FaultAction,
    FaultPlan,
    InjectedFault,
    PointFailure,
    PointTimeout,
    RetryPolicy,
    SweepAborted,
    execute_point,
    set_fault_plan,
)
from .keys import StageKey
from .stages import (
    PointResult,
    PointSpec,
    compute_scaling,
    default_cache,
    reset_default_cache,
    run_point,
)
from .sweep import (
    SMALL_SIM_SIZES,
    GridSpec,
    SweepResult,
    SweepRunner,
    fig6_grid,
    fig6x_grid,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CircuitBreaker",
    "CorruptEntry",
    "GzipBackend",
    "LocalDirBackend",
    "RemoteBackend",
    "RemoteError",
    "RemoteTimeout",
    "StageCache",
    "StageKey",
    "default_backend",
    "FaultAction",
    "FaultPlan",
    "InjectedFault",
    "PointFailure",
    "PointTimeout",
    "RetryPolicy",
    "SweepAborted",
    "execute_point",
    "set_fault_plan",
    "PointResult",
    "PointSpec",
    "compute_scaling",
    "default_cache",
    "reset_default_cache",
    "run_point",
    "GridSpec",
    "SweepResult",
    "SweepRunner",
    "fig6_grid",
    "fig6x_grid",
    "SMALL_SIM_SIZES",
    "BenchReport",
    "compare_reports",
    "run_bench",
]
