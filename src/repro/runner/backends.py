"""Pluggable disk backends for the stage cache.

The :class:`~repro.runner.cache.StageCache` disk tier is built on a
small backend protocol so the same two-level cache can persist through:

* :class:`LocalDirBackend` -- the classic ``<root>/<stage>/<digest>
  .json`` layout, hardened for many cooperating processes: every record
  embeds a sha256 of its payload (verified on load; a mismatch is
  quarantined with a ``checksum`` reason), and missing keys are
  computed under **single-flight stampede control** -- an ``O_EXCL``
  lock file with staleness takeover, so N workers hitting the same
  missing key produce exactly one compute while the rest wait, then
  load the leader's entry.
* :class:`GzipBackend` -- a write-policy wrapper that transparently
  gzips records above a size threshold.  Reads are sniffed by magic
  bytes, so legacy uncompressed entries (and plain entries below the
  threshold) load forever; only *writes* are governed by the
  :data:`CACHE_FORMAT_VERSION` bump.
* :class:`RemoteBackend` -- a shared tier behind an HTTP or
  (shared-)filesystem endpoint, wrapped in the sweep runner's fault
  idiom: bounded retries with deterministic sha256-jittered exponential
  backoff, per-call timeouts, and a :class:`CircuitBreaker` that opens
  after consecutive failed calls.  An open breaker **degrades the
  cache to local-only** operation (tagged in
  :class:`~repro.runner.cache.CacheStats`); a dead shared tier never
  fails a sweep.

Record format (``CACHE_FORMAT_VERSION`` = 2)::

    {"format": 2, "key": {...}, "sha256": "<hex>", "value": ...}

The checksum covers the canonical JSON of the (JSON-normalized)
``value``, so it is stable across a store/load round trip.  Format-1
records (no checksum) remain readable; ``python -m repro cache
migrate`` rewrites them in place.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import platform
import tempfile
import time
import urllib.error
import urllib.request
import zlib
from pathlib import Path
from typing import Any, Optional, Protocol, Union

from .faults import RetryPolicy, active_plan

__all__ = [
    "CACHE_FORMAT_VERSION",
    "SUPPORTED_CACHE_FORMATS",
    "GZIP_THRESHOLD",
    "CorruptEntry",
    "CacheBackend",
    "FlightLease",
    "LocalDirBackend",
    "GzipBackend",
    "CircuitBreaker",
    "RemoteError",
    "RemoteTimeout",
    "RemoteBackend",
    "payload_checksum",
    "make_record",
    "decode_record",
    "stored_entry_sizes",
    "default_backend",
]

CACHE_FORMAT_VERSION = 2
"""Format written by this codebase.  Bumped from 1 when records gained
the ``sha256`` integrity checksum (and gzip became the default write
policy for large payloads)."""

SUPPORTED_CACHE_FORMATS = (1, 2)
"""Formats :meth:`LocalDirBackend.load` accepts.  Format 1 (no
checksum) is read forever; anything else is stale and recomputed."""

GZIP_THRESHOLD = 4096
"""Records at least this many encoded bytes are gzipped by
:class:`GzipBackend` (multi-MB ``lowered`` payloads compress ~10x;
tiny metric records are left as grep-able plain JSON)."""

_GZIP_MAGIC = b"\x1f\x8b"


class CorruptEntry(Exception):
    """A persisted record that failed decoding or integrity checks.

    Attributes:
        reason: Human-readable description (quarantine sidecar text).
        path: Offending file, when the record came from disk.
        kind: ``"undecodable"`` (bad gzip/JSON/shape) or ``"checksum"``
            (parsed fine but the sha256 does not match the payload).
    """

    def __init__(
        self,
        reason: str,
        path: Optional[Path] = None,
        kind: str = "undecodable",
    ):
        super().__init__(reason)
        self.reason = reason
        self.path = path
        self.kind = kind


def payload_checksum(value: Any) -> str:
    """sha256 over the canonical JSON of a (JSON-normalized) payload.

    Callers must pass a value that already round-trips through JSON
    unchanged (:func:`make_record` normalizes with a dumps/loads round
    trip first), so the checksum computed at store time equals the one
    recomputed from the decoded record at load time.
    """
    text = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def make_record(key_description: dict, payload: Any) -> dict:
    """Build a current-format record with an integrity checksum."""
    # Normalize through JSON first: non-string dict keys and tuples
    # would otherwise hash differently before and after persistence.
    normalized = json.loads(json.dumps(payload))
    return {
        "format": CACHE_FORMAT_VERSION,
        "key": key_description,
        "sha256": payload_checksum(normalized),
        "value": normalized,
    }


def decode_record(
    data: bytes, path: Optional[Path] = None
) -> dict[str, Any]:
    """Decode stored record bytes (gzip-sniffing) and verify integrity.

    Raises:
        CorruptEntry: Undecodable bytes, a non-record JSON shape, or a
            format >= 2 record whose sha256 is absent or does not match
            its payload (``kind="checksum"``).
    """
    if data[:2] == _GZIP_MAGIC:
        try:
            data = gzip.decompress(data)
        except (OSError, EOFError, zlib.error) as error:
            raise CorruptEntry(
                f"undecodable gzip: {error}", path=path
            ) from error
    try:
        record = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptEntry(
            f"undecodable JSON: {error}", path=path
        ) from error
    if not isinstance(record, dict):
        raise CorruptEntry(
            f"record is {type(record).__name__}, not an object", path=path
        )
    fmt = record.get("format")
    if isinstance(fmt, int) and fmt >= 2:
        recorded = record.get("sha256")
        if not recorded:
            raise CorruptEntry(
                "checksum missing from a format "
                f"{fmt} record", path=path, kind="checksum",
            )
        actual = payload_checksum(record.get("value"))
        if actual != recorded:
            raise CorruptEntry(
                f"checksum mismatch: recorded {recorded[:12]}… but "
                f"payload hashes to {actual[:12]}…",
                path=path,
                kind="checksum",
            )
    return record


def stored_entry_sizes(path: Path) -> tuple[int, int, bool]:
    """(stored_bytes, raw_bytes, is_compressed) for one disk entry.

    Raw size of a gzipped entry is read from the trailing ISIZE field
    (mod 2**32 -- exact for anything the cache writes), so stats never
    decompress payloads.
    """
    stored = path.stat().st_size
    with open(path, "rb") as handle:
        if handle.read(2) != _GZIP_MAGIC:
            return stored, stored, False
        handle.seek(-4, os.SEEK_END)
        raw = int.from_bytes(handle.read(4), "little")
    return stored, raw, True


class CacheBackend(Protocol):
    """What :class:`~repro.runner.cache.StageCache` needs from a disk
    tier.  All implementations share the ``<root>/<stage>/<digest>
    .json`` layout so cache administration (stats, prune, verify,
    migrate) stays backend-agnostic."""

    root: Path

    def entry_path(self, stage: str, digest: str) -> Path: ...

    def read_bytes(self, stage: str, digest: str) -> Optional[bytes]: ...

    def write_bytes(self, stage: str, digest: str, data: bytes) -> None: ...

    def encode(self, record: dict) -> bytes: ...

    def load(self, stage: str, digest: str) -> Optional[dict]: ...

    def store(self, stage: str, digest: str, record: dict) -> bytes: ...

    def wait_or_lead(
        self, stage: str, digest: str
    ) -> Optional["FlightLease"]: ...

    def health(self) -> dict[str, Any]: ...


class FlightLease:
    """Leadership of one single-flight compute (holds the lock file)."""

    def __init__(self, lock_path: Path):
        self.lock_path = lock_path
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        try:
            os.unlink(self.lock_path)
        except OSError:
            pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class LocalDirBackend:
    """Plain-JSON directory backend with locks and checksums.

    Args:
        root: Cache directory (``<root>/<stage>/<digest>.json``).
        lock_stale_after: A lock file older than this (whose holder
            cannot be proven dead faster) is broken and taken over, so
            a crashed leader stalls followers for a bounded time.
        lock_poll: Sleep between follower polls of the lock/entry.
    """

    name = "local"

    def __init__(
        self,
        root: Union[str, os.PathLike],
        lock_stale_after: float = 600.0,
        lock_poll: float = 0.05,
    ):
        self.root = Path(root)
        self.lock_stale_after = lock_stale_after
        self.lock_poll = lock_poll
        self.flights_led = 0
        self.flights_waited = 0
        self.lock_takeovers = 0

    # -- raw bytes --------------------------------------------------------

    def entry_path(self, stage: str, digest: str) -> Path:
        return self.root / stage / f"{digest}.json"

    def read_bytes(self, stage: str, digest: str) -> Optional[bytes]:
        try:
            return self.entry_path(stage, digest).read_bytes()
        except OSError:
            return None

    def write_bytes(self, stage: str, digest: str, data: bytes) -> None:
        """Atomically replace one entry (tmp file + ``os.replace``)."""
        path = self.entry_path(stage, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- records ----------------------------------------------------------

    def encode(self, record: dict) -> bytes:
        return (json.dumps(record, indent=1) + "\n").encode("utf-8")

    def load(self, stage: str, digest: str) -> Optional[dict]:
        """Decode one entry; None when absent/unreadable.

        Raises:
            CorruptEntry: Present but undecodable or failing its
                checksum -- the caller owns quarantining.
        """
        data = self.read_bytes(stage, digest)
        if data is None:
            return None
        return decode_record(data, path=self.entry_path(stage, digest))

    def store(self, stage: str, digest: str, record: dict) -> bytes:
        data = self.encode(record)
        self.write_bytes(stage, digest, data)
        return data

    # -- single-flight ----------------------------------------------------

    def lock_path(self, stage: str, digest: str) -> Path:
        return self.root / stage / f"{digest}.lock"

    def wait_or_lead(
        self, stage: str, digest: str
    ) -> Optional[FlightLease]:
        """Acquire compute leadership for a missing entry, or wait.

        Returns a :class:`FlightLease` when this process should compute
        (release it after storing), or None once another leader's entry
        has appeared (load it instead).  A lock whose holder is dead --
        or older than ``lock_stale_after`` -- is broken and taken over,
        so a leader crashing mid-compute never wedges the flight.
        """
        entry = self.entry_path(stage, digest)
        lock = self.lock_path(stage, digest)
        lock.parent.mkdir(parents=True, exist_ok=True)
        waited = False
        while True:
            if entry.exists():
                if waited:
                    self.flights_waited += 1
                return None
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._lock_stale(lock):
                    self._break_lock(lock)
                    continue
                waited = True
                time.sleep(self.lock_poll)
                continue
            except OSError:
                # Filesystem without O_EXCL semantics: lead unlocked
                # (correctness holds -- writes are atomic and
                # idempotent -- only dedup is lost).
                self.flights_led += 1
                return FlightLease(lock)
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "pid": os.getpid(),
                        "host": platform.node(),
                        "time": time.time(),
                    },
                    handle,
                )
            self.flights_led += 1
            return FlightLease(lock)

    def _lock_stale(self, lock: Path) -> bool:
        try:
            age = time.time() - lock.stat().st_mtime
        except OSError:
            return False  # gone: retry the acquire
        try:
            meta = json.loads(lock.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            meta = None  # mid-write by the holder; age decides
        if (
            isinstance(meta, dict)
            and meta.get("host") == platform.node()
            and isinstance(meta.get("pid"), int)
            and not _pid_alive(meta["pid"])
        ):
            return True
        return age > self.lock_stale_after

    def _break_lock(self, lock: Path) -> None:
        # Rename-to-unique before unlinking so two takeover attempts
        # cannot both "succeed" and then delete a *new* leader's lock.
        probe = lock.with_name(f"{lock.name}.break{os.getpid()}")
        try:
            os.replace(lock, probe)
        except OSError:
            return  # someone else broke it first
        try:
            os.unlink(probe)
        except OSError:
            pass
        self.lock_takeovers += 1

    def health(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "root": str(self.root),
            "single_flight": {
                "led": self.flights_led,
                "waited": self.flights_waited,
                "lock_takeovers": self.lock_takeovers,
            },
        }


class GzipBackend:
    """Write-policy wrapper gzipping records above a size threshold.

    Decoding is magic-byte sniffed (shared with the inner backend), so
    this wrapper only changes what new entries look like; every legacy
    plain-JSON entry keeps loading.  ``gzip`` is invoked with
    ``mtime=0`` so identical records encode to identical bytes --
    ``cache migrate`` relies on that to detect already-current entries.
    """

    name = "gzip"

    def __init__(
        self,
        inner: LocalDirBackend,
        threshold: int = GZIP_THRESHOLD,
        level: int = 6,
    ):
        self.inner = inner
        self.threshold = threshold
        self.level = level
        self.raw_bytes_written = 0
        self.stored_bytes_written = 0
        self.compressed_writes = 0
        self.plain_writes = 0

    @property
    def root(self) -> Path:
        return self.inner.root

    def entry_path(self, stage: str, digest: str) -> Path:
        return self.inner.entry_path(stage, digest)

    def read_bytes(self, stage: str, digest: str) -> Optional[bytes]:
        return self.inner.read_bytes(stage, digest)

    def write_bytes(self, stage: str, digest: str, data: bytes) -> None:
        self.inner.write_bytes(stage, digest, data)

    def encode(self, record: dict) -> bytes:
        plain = self.inner.encode(record)
        if len(plain) < self.threshold:
            return plain
        packed = gzip.compress(plain, compresslevel=self.level, mtime=0)
        return packed if len(packed) < len(plain) else plain

    def load(self, stage: str, digest: str) -> Optional[dict]:
        return self.inner.load(stage, digest)

    def store(self, stage: str, digest: str, record: dict) -> bytes:
        plain_len = len(self.inner.encode(record))
        data = self.encode(record)
        self.inner.write_bytes(stage, digest, data)
        self.raw_bytes_written += plain_len
        self.stored_bytes_written += len(data)
        if len(data) < plain_len:
            self.compressed_writes += 1
        else:
            self.plain_writes += 1
        return data

    def wait_or_lead(
        self, stage: str, digest: str
    ) -> Optional[FlightLease]:
        return self.inner.wait_or_lead(stage, digest)

    def health(self) -> dict[str, Any]:
        report = self.inner.health()
        report["gzip"] = {
            "threshold": self.threshold,
            "raw_bytes_written": self.raw_bytes_written,
            "stored_bytes_written": self.stored_bytes_written,
            "compressed_writes": self.compressed_writes,
            "plain_writes": self.plain_writes,
        }
        return report


def default_backend(root: Union[str, os.PathLike]) -> GzipBackend:
    """The shipped disk tier: local directory + gzip write policy."""
    return GzipBackend(LocalDirBackend(root))


# ---------------------------------------------------------------------------
# Remote tier


class RemoteError(RuntimeError):
    """The remote cache tier failed a call (after internal retries)."""


class RemoteTimeout(RemoteError):
    """A remote cache call exceeded its per-call time budget."""


class CircuitBreaker:
    """Opens after ``threshold`` consecutive failed calls.

    Once open it stays open for the life of the process: the cache
    operates local-only (tagged ``degraded`` in stats) instead of
    paying retries-plus-timeout on every key against a dead endpoint.
    """

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.consecutive_failures = 0
        self.opened = False
        self.opens = 0

    @property
    def open(self) -> bool:
        return self.opened

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if not self.opened and self.consecutive_failures >= self.threshold:
            self.opened = True
            self.opens += 1

    def health(self) -> dict[str, Any]:
        return {
            "state": "open" if self.opened else "closed",
            "threshold": self.threshold,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
        }


class RemoteBackend:
    """Shared cache tier behind an HTTP or filesystem endpoint.

    Endpoints: ``http(s)://host/prefix`` (GET/PUT of
    ``/<stage>/<digest>.json``), ``file:///shared/dir``, or a bare
    directory path (e.g. an NFS mount).  Payloads are the exact bytes
    the local backend stored, so gzip policy and checksums carry over
    unchanged.

    Every call runs the sweep runner's fault idiom: up to
    ``retry.max_attempts`` attempts with deterministic sha256-jittered
    exponential backoff, a cooperative per-call ``timeout_s``, and the
    shared :class:`CircuitBreaker`.  Injected faults at the ``remote``
    site (``remote_error`` / ``remote_timeout`` / ``remote_hang``)
    make every outage mode seeded-reproducible.
    """

    name = "remote"

    def __init__(
        self,
        endpoint: str,
        retry: Optional[RetryPolicy] = None,
        timeout_s: float = 5.0,
        breaker: Optional[CircuitBreaker] = None,
    ):
        endpoint = str(endpoint)
        if endpoint.startswith("file://"):
            endpoint = endpoint[len("file://"):]
        self.endpoint = endpoint.rstrip("/")
        self.is_http = self.endpoint.startswith(("http://", "https://"))
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=2.0)
        )
        self.timeout_s = timeout_s
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.fetches = 0
        self.pushes = 0
        self.retries = 0
        self.errors = 0

    @property
    def degraded(self) -> bool:
        """True once the breaker opened: cache runs local-only."""
        return self.breaker.open

    # -- public calls -----------------------------------------------------

    def fetch(
        self, stage: str, digest: str, key=None
    ) -> Optional[bytes]:
        """Raw entry bytes from the shared tier; None on a miss.

        Returns None *without touching the network* when the breaker is
        open.  Raises :exc:`RemoteError` when the endpoint fails a call
        even after retries (the caller degrades, never propagates).
        """
        if self.breaker.open:
            return None
        self.fetches += 1
        return self._call(
            "fetch",
            lambda: self._fetch_once(stage, digest),
            f"{stage}/{digest}",
            key,
        )

    def push(self, stage: str, digest: str, data: bytes, key=None) -> None:
        """Best-effort write-through of locally stored entry bytes."""
        if self.breaker.open:
            return
        self.pushes += 1
        self._call(
            "push",
            lambda: self._push_once(stage, digest, data),
            f"{stage}/{digest}",
            key,
        )

    # -- machinery --------------------------------------------------------

    def _call(self, kind: str, fn, token: str, key) -> Any:
        last: Optional[RemoteError] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            pause = self.retry.delay(attempt, f"remote:{kind}:{token}")
            if pause:
                time.sleep(pause)
            if attempt > 1:
                self.retries += 1
            start = time.monotonic()
            try:
                self._injected(key)
                result = fn()
                elapsed = time.monotonic() - start
                if self.timeout_s is not None and elapsed > self.timeout_s:
                    raise RemoteTimeout(
                        f"remote {kind} took {elapsed:.2f}s, over the "
                        f"{self.timeout_s:g}s per-call budget"
                    )
            except RemoteError as error:
                self.errors += 1
                last = error
                continue
            self.breaker.record_success()
            return result
        self.breaker.record_failure()
        assert last is not None
        raise last

    def _injected(self, key) -> None:
        plan = active_plan()
        if plan is None:
            return
        for action in plan.check("remote", key):
            if action.op == "remote_error":
                raise RemoteError(
                    "injected remote server error (5xx)"
                )
            if action.op == "remote_timeout":
                raise RemoteTimeout("injected remote timeout")
            # remote_hang slept inside plan.check(); the elapsed
            # budget check in _call turns it into a RemoteTimeout.

    def _fetch_once(self, stage: str, digest: str) -> Optional[bytes]:
        if self.is_http:
            url = f"{self.endpoint}/{stage}/{digest}.json"
            try:
                with urllib.request.urlopen(
                    url, timeout=self.timeout_s
                ) as response:
                    return response.read()
            except urllib.error.HTTPError as error:
                if error.code == 404:
                    return None
                raise RemoteError(
                    f"GET {url} -> HTTP {error.code}"
                ) from error
            except TimeoutError as error:
                raise RemoteTimeout(f"GET {url} timed out") from error
            except (urllib.error.URLError, OSError) as error:
                raise RemoteError(f"GET {url} failed: {error}") from error
        path = Path(self.endpoint) / stage / f"{digest}.json"
        try:
            return path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as error:
            raise RemoteError(
                f"remote read {path} failed: {error}"
            ) from error

    def _push_once(self, stage: str, digest: str, data: bytes) -> None:
        if self.is_http:
            url = f"{self.endpoint}/{stage}/{digest}.json"
            request = urllib.request.Request(
                url, data=data, method="PUT"
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    if response.status >= 300:
                        raise RemoteError(
                            f"PUT {url} -> HTTP {response.status}"
                        )
            except urllib.error.HTTPError as error:
                raise RemoteError(
                    f"PUT {url} -> HTTP {error.code}"
                ) from error
            except TimeoutError as error:
                raise RemoteTimeout(f"PUT {url} timed out") from error
            except (urllib.error.URLError, OSError) as error:
                raise RemoteError(f"PUT {url} failed: {error}") from error
            return
        path = Path(self.endpoint) / stage / f"{digest}.json"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as error:
            raise RemoteError(
                f"remote write {path} failed: {error}"
            ) from error

    def health(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "endpoint": self.endpoint,
            "protocol": "http" if self.is_http else "file",
            "timeout_s": self.timeout_s,
            "degraded": self.degraded,
            "breaker": self.breaker.health(),
            "calls": {
                "fetches": self.fetches,
                "pushes": self.pushes,
                "retries": self.retries,
                "errors": self.errors,
            },
        }
