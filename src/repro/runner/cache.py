"""Two-level (memory + on-disk JSON) result cache for pipeline stages.

The in-memory level stores live Python objects (circuits, machines,
result dataclasses) so stage invocations sharing a prefix — the same
frontend compilation across all seven braid policies, say — compute it
once per process.  The on-disk level stores JSON payloads for stages
whose results are pure metrics, so sweeps resume across processes and
sessions and reports re-render without re-simulating.

Cached artifacts are shared by reference: treat them as immutable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

from .keys import StageKey

__all__ = ["CacheStats", "StageCache", "CACHE_FORMAT_VERSION"]

CACHE_FORMAT_VERSION = 1
"""Bump to invalidate on-disk payloads when stage semantics change."""


@dataclasses.dataclass
class CacheStats:
    """Per-stage hit/miss accounting.

    Attributes:
        hits: In-memory hits per stage.
        disk_hits: On-disk hits per stage (loaded, not recomputed).
        misses: Full computations per stage.
    """

    hits: dict[str, int] = dataclasses.field(default_factory=dict)
    disk_hits: dict[str, int] = dataclasses.field(default_factory=dict)
    misses: dict[str, int] = dataclasses.field(default_factory=dict)

    def record_hit(self, stage: str) -> None:
        self.hits[stage] = self.hits.get(stage, 0) + 1

    def record_disk_hit(self, stage: str) -> None:
        self.disk_hits[stage] = self.disk_hits.get(stage, 0) + 1

    def record_miss(self, stage: str) -> None:
        self.misses[stage] = self.misses.get(stage, 0) + 1

    def merge(self, other: "CacheStats") -> None:
        """Fold another process's counters into this one."""
        for counter, theirs in (
            (self.hits, other.hits),
            (self.disk_hits, other.disk_hits),
            (self.misses, other.misses),
        ):
            for stage, count in theirs.items():
                counter[stage] = counter.get(stage, 0) + count

    def computed(self, stage: str) -> int:
        """How many times ``stage`` was actually executed."""
        return self.misses.get(stage, 0)

    def reused(self, stage: str) -> int:
        """How many executions were avoided for ``stage``."""
        return self.hits.get(stage, 0) + self.disk_hits.get(stage, 0)

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {
            "hits": dict(self.hits),
            "disk_hits": dict(self.disk_hits),
            "misses": dict(self.misses),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, dict[str, int]]) -> "CacheStats":
        return cls(
            hits=dict(payload.get("hits", {})),
            disk_hits=dict(payload.get("disk_hits", {})),
            misses=dict(payload.get("misses", {})),
        )

    def summary(self) -> str:
        stages = sorted(
            set(self.hits) | set(self.disk_hits) | set(self.misses)
        )
        parts = []
        for stage in stages:
            parts.append(
                f"{stage}: {self.computed(stage)} computed, "
                f"{self.reused(stage)} reused"
            )
        return "; ".join(parts) if parts else "empty"


class StageCache:
    """Memoizes stage invocations in memory and (optionally) on disk.

    Args:
        disk_dir: Directory for JSON payloads; None disables the disk
            level.  Layout: ``<disk_dir>/<stage>/<digest>.json``.
    """

    def __init__(self, disk_dir: Optional[str | os.PathLike] = None):
        self._memory: dict[StageKey, Any] = {}
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = CacheStats()

    def get_or_compute(
        self,
        key: StageKey,
        compute: Callable[[], Any],
        to_jsonable: Optional[Callable[[Any], Any]] = None,
        from_jsonable: Optional[Callable[[Any], Any]] = None,
    ) -> Any:
        """Return the cached value for ``key``, computing on first use.

        Args:
            key: Stage invocation identity.
            compute: Zero-argument closure producing the value.  Lazy:
                only called on a miss, so upstream stages requested
                inside it are skipped entirely on a hit.
            to_jsonable: If given (with a disk level), persist the
                computed value as JSON.
            from_jsonable: If given (with a disk level), revive a value
                from a persisted payload instead of recomputing.
        """
        if key in self._memory:
            self.stats.record_hit(key.stage)
            return self._memory[key]
        if self.disk_dir is not None and from_jsonable is not None:
            payload = self.load_payload(key)
            if payload is not None:
                value = from_jsonable(payload)
                self._memory[key] = value
                self.stats.record_disk_hit(key.stage)
                return value
        self.stats.record_miss(key.stage)
        value = compute()
        self._memory[key] = value
        if self.disk_dir is not None and to_jsonable is not None:
            self.store_payload(key, to_jsonable(value))
        return value

    def load_payload(self, key: StageKey) -> Optional[Any]:
        """Read a persisted JSON payload, or None if absent/stale."""
        if self.disk_dir is None:
            return None
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if record.get("format") != CACHE_FORMAT_VERSION:
            return None
        return record.get("value")

    def store_payload(self, key: StageKey, payload: Any) -> None:
        """Atomically persist a JSON payload for ``key``."""
        if self.disk_dir is None:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "format": CACHE_FORMAT_VERSION,
            "key": key.describe(),
            "value": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def iter_payloads(self, stage: str) -> Iterator[dict[str, Any]]:
        """Yield all persisted records ({key, value}) for one stage."""
        if self.disk_dir is None:
            return
        stage_dir = self.disk_dir / stage
        if not stage_dir.is_dir():
            return
        for path in sorted(stage_dir.glob("*.json")):
            try:
                with open(path, encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if record.get("format") == CACHE_FORMAT_VERSION:
                yield record

    def clear_memory(self) -> None:
        """Drop live objects (disk payloads survive)."""
        self._memory.clear()

    def __contains__(self, key: StageKey) -> bool:
        return key in self._memory

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: StageKey) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / key.stage / f"{key.digest}.json"
