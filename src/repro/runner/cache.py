"""Two-level (memory + on-disk JSON) result cache for pipeline stages.

The in-memory level stores live Python objects (circuits, machines,
result dataclasses) so stage invocations sharing a prefix — the same
frontend compilation across all seven braid policies, say — compute it
once per process.  The on-disk level stores JSON payloads for stages
whose results are pure metrics, so sweeps resume across processes and
sessions and reports re-render without re-simulating.

Cached artifacts are shared by reference: treat them as immutable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Optional

from .faults import active_plan
from .keys import StageKey

__all__ = [
    "CacheStats",
    "StageCache",
    "CACHE_FORMAT_VERSION",
    "QUARANTINE_DIR",
]

CACHE_FORMAT_VERSION = 1
"""Bump to invalidate on-disk payloads when stage semantics change."""

QUARANTINE_DIR = "quarantine"
"""Subdirectory of the disk cache holding corrupt entries moved aside
(each with a ``.reason.txt`` sidecar) instead of being silently
recomputed over."""


@dataclasses.dataclass
class CacheStats:
    """Per-stage hit/miss accounting.

    Attributes:
        hits: In-memory hits per stage.
        disk_hits: On-disk hits per stage (loaded, not recomputed).
        misses: Full computations per stage.
        seconds: Wall-clock *self* time spent computing per stage
            (time inside nested stage computations is attributed to
            the nested stage, not the caller).
    """

    hits: dict[str, int] = dataclasses.field(default_factory=dict)
    disk_hits: dict[str, int] = dataclasses.field(default_factory=dict)
    misses: dict[str, int] = dataclasses.field(default_factory=dict)
    seconds: dict[str, float] = dataclasses.field(default_factory=dict)

    def record_hit(self, stage: str) -> None:
        self.hits[stage] = self.hits.get(stage, 0) + 1

    def record_disk_hit(self, stage: str) -> None:
        self.disk_hits[stage] = self.disk_hits.get(stage, 0) + 1

    def record_miss(self, stage: str) -> None:
        self.misses[stage] = self.misses.get(stage, 0) + 1

    def record_seconds(self, stage: str, elapsed: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed

    def merge(self, other: "CacheStats") -> None:
        """Fold another process's counters into this one."""
        for counter, theirs in (
            (self.hits, other.hits),
            (self.disk_hits, other.disk_hits),
            (self.misses, other.misses),
            (self.seconds, other.seconds),
        ):
            for stage, count in theirs.items():
                counter[stage] = counter.get(stage, 0) + count

    def computed(self, stage: str) -> int:
        """How many times ``stage`` was actually executed."""
        return self.misses.get(stage, 0)

    def reused(self, stage: str) -> int:
        """How many executions were avoided for ``stage``."""
        return self.hits.get(stage, 0) + self.disk_hits.get(stage, 0)

    def stage_seconds(self, stage: str) -> float:
        """Wall-clock self time spent computing ``stage``."""
        return self.seconds.get(stage, 0.0)

    def as_dict(self) -> dict[str, dict]:
        return {
            "hits": dict(self.hits),
            "disk_hits": dict(self.disk_hits),
            "misses": dict(self.misses),
            "seconds": dict(self.seconds),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, dict]) -> "CacheStats":
        return cls(
            hits=dict(payload.get("hits", {})),
            disk_hits=dict(payload.get("disk_hits", {})),
            misses=dict(payload.get("misses", {})),
            seconds=dict(payload.get("seconds", {})),
        )

    def summary(self) -> str:
        stages = sorted(
            set(self.hits) | set(self.disk_hits) | set(self.misses)
        )
        parts = []
        for stage in stages:
            part = (
                f"{stage}: {self.computed(stage)} computed, "
                f"{self.reused(stage)} reused"
            )
            if stage in self.seconds:
                part += f", {self.seconds[stage]:.2f}s"
            parts.append(part)
        return "; ".join(parts) if parts else "empty"


class StageCache:
    """Memoizes stage invocations in memory and (optionally) on disk.

    Args:
        disk_dir: Directory for JSON payloads; None disables the disk
            level.  Layout: ``<disk_dir>/<stage>/<digest>.json``.
    """

    def __init__(self, disk_dir: Optional[str | os.PathLike] = None):
        self._memory: dict[StageKey, Any] = {}
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = CacheStats()
        # Nested-compute bookkeeping for self-time attribution: each
        # frame accumulates the inclusive seconds of its child stages.
        self._child_seconds: list[float] = []

    def get_or_compute(
        self,
        key: StageKey,
        compute: Callable[[], Any],
        to_jsonable: Optional[Callable[[Any], Any]] = None,
        from_jsonable: Optional[Callable[[Any], Any]] = None,
        verify: Optional[Callable[[Any], None]] = None,
    ) -> Any:
        """Return the cached value for ``key``, computing on first use.

        Args:
            key: Stage invocation identity.
            compute: Zero-argument closure producing the value.  Lazy:
                only called on a miss, so upstream stages requested
                inside it are skipped entirely on a hit.
            to_jsonable: If given (with a disk level), persist the
                computed value as JSON.
            from_jsonable: If given (with a disk level), revive a value
                from a persisted payload instead of recomputing.
            verify: Optional validator run over a freshly computed or
                disk-revived value *before* it enters the memory cache
                (raise to reject — e.g.
                :func:`repro.analysis.verify.stage_verifier`).  Memory
                hits are trusted: they were verified on the way in.
        """
        if key in self._memory:
            self.stats.record_hit(key.stage)
            return self._memory[key]
        if self.disk_dir is not None and from_jsonable is not None:
            payload = self.load_payload(key)
            if payload is not None:
                value = from_jsonable(payload)
                if verify is not None:
                    verify(value)
                self._memory[key] = value
                self.stats.record_disk_hit(key.stage)
                return value
        self.stats.record_miss(key.stage)
        start = time.perf_counter()
        self._child_seconds.append(0.0)
        try:
            plan = active_plan()
            if plan is not None:
                plan.check("compute", key)
            value = compute()
        except BaseException as error:
            # Tag the *innermost* stage so isolation layers can report
            # where a point actually died (the tag survives re-raising
            # through enclosing stage frames).
            if not hasattr(error, "_repro_stage"):
                error._repro_stage = key.stage
            raise
        finally:
            elapsed = time.perf_counter() - start
            nested = self._child_seconds.pop()
            if self._child_seconds:
                self._child_seconds[-1] += elapsed
            self.stats.record_seconds(key.stage, elapsed - nested)
        if verify is not None:
            verify(value)
        self._memory[key] = value
        if self.disk_dir is not None and to_jsonable is not None:
            self.store_payload(key, to_jsonable(value))
        return value

    def load_payload(self, key: StageKey) -> Optional[Any]:
        """Read a persisted JSON payload, or None if absent/stale.

        An entry that exists but no longer parses is *quarantined* --
        moved to ``<disk_dir>/quarantine/<stage>/`` with a
        ``.reason.txt`` sidecar -- before the miss is reported, so
        corrupt entries are preserved as evidence instead of being
        silently recomputed over.
        """
        if self.disk_dir is None:
            return None
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as error:
            self.quarantine(path, f"undecodable JSON: {error}")
            return None
        except OSError:
            return None
        if record.get("format") != CACHE_FORMAT_VERSION:
            return None
        return record.get("value")

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a problematic disk entry aside with a reason sidecar.

        Returns the quarantined path (None if the move failed, e.g.
        the entry vanished concurrently).  Quarantined entries are
        counted by :meth:`disk_stats` and listed by :meth:`verify`.
        """
        if self.disk_dir is None:
            return None
        target_dir = self.disk_dir / QUARANTINE_DIR / path.parent.name
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / path.name
            os.replace(path, target)
            target.with_suffix(".reason.txt").write_text(
                reason + "\n", encoding="utf-8"
            )
        except OSError:
            return None
        return target

    def store_payload(self, key: StageKey, payload: Any) -> None:
        """Atomically persist a JSON payload for ``key``."""
        if self.disk_dir is None:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "format": CACHE_FORMAT_VERSION,
            "key": key.describe(),
            "value": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        plan = active_plan()
        if plan is not None:
            for action in plan.check("store", key):
                if action.op == "corrupt":
                    path.write_text("{corrupt", encoding="utf-8")

    def iter_payloads(self, stage: str) -> Iterator[dict[str, Any]]:
        """Yield all persisted records ({key, value}) for one stage."""
        if self.disk_dir is None:
            return
        stage_dir = self.disk_dir / stage
        if not stage_dir.is_dir():
            return
        for path in sorted(stage_dir.glob("*.json")):
            try:
                with open(path, encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if record.get("format") == CACHE_FORMAT_VERSION:
                yield record

    # -- disk administration (``python -m repro cache``) ---------------------

    def _stage_dirs(self) -> list[Path]:
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return []
        return sorted(
            p
            for p in self.disk_dir.iterdir()
            if p.is_dir() and p.name != QUARANTINE_DIR
        )

    def quarantined_count(self) -> int:
        """Number of entries currently held in quarantine."""
        if self.disk_dir is None:
            return 0
        quarantine = self.disk_dir / QUARANTINE_DIR
        if not quarantine.is_dir():
            return 0
        return sum(1 for _ in quarantine.glob("*/*.json"))

    def disk_stats(self) -> dict[str, Any]:
        """Entry counts, byte sizes, and age range of the disk level."""
        stages: dict[str, dict[str, Any]] = {}
        total_entries = 0
        total_bytes = 0
        for stage_dir in self._stage_dirs():
            entries = 0
            size = 0
            oldest: Optional[float] = None
            newest: Optional[float] = None
            for path in stage_dir.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries += 1
                size += stat.st_size
                mtime = stat.st_mtime
                oldest = mtime if oldest is None else min(oldest, mtime)
                newest = mtime if newest is None else max(newest, mtime)
            if entries:
                stages[stage_dir.name] = {
                    "entries": entries,
                    "bytes": size,
                    "oldest_mtime": oldest,
                    "newest_mtime": newest,
                }
                total_entries += entries
                total_bytes += size
        return {
            "dir": str(self.disk_dir) if self.disk_dir else None,
            "stages": stages,
            "total_entries": total_entries,
            "total_bytes": total_bytes,
            "quarantined": self.quarantined_count(),
        }

    def prune(
        self,
        older_than_seconds: Optional[float] = None,
        stage: Optional[str] = None,
        now: Optional[float] = None,
    ) -> int:
        """Delete persisted payloads; returns the number removed.

        Args:
            older_than_seconds: Only remove entries whose mtime is at
                least this old; None removes unconditionally.
            stage: Restrict to one stage directory.
            now: Reference timestamp (testing hook; defaults to
                ``time.time()``).
        """
        reference = time.time() if now is None else now
        removed = 0
        for stage_dir in self._stage_dirs():
            if stage is not None and stage_dir.name != stage:
                continue
            for path in stage_dir.glob("*.json"):
                try:
                    if older_than_seconds is not None:
                        age = reference - path.stat().st_mtime
                        if age < older_than_seconds:
                            continue
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    def verify(
        self,
        payload_checks: Optional[
            Mapping[str, Callable[[Any], None]]
        ] = None,
    ) -> dict[str, Any]:
        """Check disk payloads parse and match their digest filenames.

        Every record embeds its key's human-readable description;
        rebuilding the :class:`StageKey` from it must reproduce the
        digest the file is named after (canonical JSON is stable under
        a decode/re-encode round trip).  Returns per-problem lists so
        callers can report or re-prune.

        Args:
            payload_checks: Optional per-stage validators over the
                decoded ``value`` payload (e.g.
                :func:`repro.analysis.verify.lowered_payload_check`
                for the ``lowered`` stage).  A raising validator marks
                the entry ``invalid_payload`` — recorded and reported,
                never propagated, so one corrupt entry doesn't hide
                the rest.
        """
        payload_checks = payload_checks or {}
        checked = 0
        ok = 0
        corrupt: list[str] = []
        stale_format: list[str] = []
        mismatched: list[str] = []
        invalid_payload: list[dict[str, str]] = []
        quarantined: list[str] = []
        for stage_dir in self._stage_dirs():
            payload_check = payload_checks.get(stage_dir.name)
            for path in sorted(stage_dir.glob("*.json")):
                checked += 1
                try:
                    with open(path, encoding="utf-8") as handle:
                        record = json.load(handle)
                except (OSError, json.JSONDecodeError) as error:
                    corrupt.append(str(path))
                    moved = self.quarantine(
                        path, f"failed verify: {error}"
                    )
                    if moved is not None:
                        quarantined.append(str(moved))
                    continue
                if record.get("format") != CACHE_FORMAT_VERSION:
                    stale_format.append(str(path))
                    continue
                described = record.get("key") or {}
                try:
                    key = StageKey.make(
                        described["stage"], **described.get("params", {})
                    )
                except (KeyError, TypeError):
                    corrupt.append(str(path))
                    continue
                if (
                    key.stage != stage_dir.name
                    or key.digest != path.stem
                ):
                    mismatched.append(str(path))
                    continue
                if payload_check is not None:
                    try:
                        payload_check(record.get("value"))
                    except Exception as error:
                        invalid_payload.append(
                            {"path": str(path), "error": str(error)}
                        )
                        continue
                ok += 1
        return {
            "checked": checked,
            "ok": ok,
            "corrupt": corrupt,
            "stale_format": stale_format,
            "mismatched": mismatched,
            "invalid_payload": invalid_payload,
            "quarantined": quarantined,
            "quarantined_total": self.quarantined_count(),
        }

    def clear_memory(self) -> None:
        """Drop live objects (disk payloads survive)."""
        self._memory.clear()

    def __contains__(self, key: StageKey) -> bool:
        return key in self._memory

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: StageKey) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / key.stage / f"{key.digest}.json"
