"""Two-level (memory + pluggable disk backend) stage result cache.

The in-memory level stores live Python objects (circuits, machines,
result dataclasses) so stage invocations sharing a prefix — the same
frontend compilation across all seven braid policies, say — compute it
once per process.  The disk level persists JSON payloads through a
:mod:`~repro.runner.backends` backend (by default a local directory
with gzip write policy, integrity checksums, and single-flight
cross-process locking), so sweeps resume across processes and sessions
and reports re-render without re-simulating.  An optional *remote*
tier (:class:`~repro.runner.backends.RemoteBackend`) is read-through /
write-through best-effort: a dead shared endpoint degrades the cache
to local-only (tagged in :class:`CacheStats`) instead of failing the
sweep.

Cached artifacts are shared by reference: treat them as immutable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Optional, Union

from .backends import (
    CACHE_FORMAT_VERSION,
    SUPPORTED_CACHE_FORMATS,
    CorruptEntry,
    FlightLease,
    RemoteBackend,
    RemoteError,
    decode_record,
    default_backend,
    make_record,
    stored_entry_sizes,
)
from .faults import active_plan
from .keys import StageKey

__all__ = [
    "CacheStats",
    "StageCache",
    "CACHE_FORMAT_VERSION",
    "SUPPORTED_CACHE_FORMATS",
    "QUARANTINE_DIR",
]

QUARANTINE_DIR = "quarantine"
"""Subdirectory of the disk cache holding corrupt entries moved aside
(each with a ``.reason.txt`` sidecar) instead of being silently
recomputed over."""


@dataclasses.dataclass
class CacheStats:
    """Per-stage hit/miss accounting.

    Attributes:
        hits: In-memory hits per stage.
        disk_hits: On-disk hits per stage (loaded, not recomputed).
        misses: Full computations per stage.
        seconds: Wall-clock *self* time spent computing per stage
            (time inside nested stage computations is attributed to
            the nested stage, not the caller).
        waits: Single-flight follower loads per stage — this process
            waited for another worker's compute, then loaded it (also
            counted in ``disk_hits``).
        remote: Remote-tier event counters (``hits``, ``misses``,
            ``pushes``, ``errors``, ``corrupt``) plus the sticky
            ``degraded`` flag (1 once the circuit breaker opened and
            the cache fell back to local-only operation).
    """

    hits: dict[str, int] = dataclasses.field(default_factory=dict)
    disk_hits: dict[str, int] = dataclasses.field(default_factory=dict)
    misses: dict[str, int] = dataclasses.field(default_factory=dict)
    seconds: dict[str, float] = dataclasses.field(default_factory=dict)
    waits: dict[str, int] = dataclasses.field(default_factory=dict)
    remote: dict[str, int] = dataclasses.field(default_factory=dict)

    def record_hit(self, stage: str) -> None:
        self.hits[stage] = self.hits.get(stage, 0) + 1

    def record_disk_hit(self, stage: str) -> None:
        self.disk_hits[stage] = self.disk_hits.get(stage, 0) + 1

    def record_miss(self, stage: str) -> None:
        self.misses[stage] = self.misses.get(stage, 0) + 1

    def record_seconds(self, stage: str, elapsed: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed

    def record_wait(self, stage: str) -> None:
        self.waits[stage] = self.waits.get(stage, 0) + 1

    def record_remote(self, event: str, count: int = 1) -> None:
        self.remote[event] = self.remote.get(event, 0) + count

    def mark_remote_degraded(self) -> None:
        self.remote["degraded"] = 1

    def merge(self, other: "CacheStats") -> None:
        """Fold another process's counters into this one."""
        for counter, theirs in (
            (self.hits, other.hits),
            (self.disk_hits, other.disk_hits),
            (self.misses, other.misses),
            (self.seconds, other.seconds),
            (self.waits, other.waits),
        ):
            for stage, count in theirs.items():
                counter[stage] = counter.get(stage, 0) + count
        for event, count in other.remote.items():
            if event == "degraded":
                # Sticky state flag, not an event count: any degraded
                # worker makes the merged sweep degraded.
                self.remote[event] = max(self.remote.get(event, 0), count)
            else:
                self.remote[event] = self.remote.get(event, 0) + count

    def computed(self, stage: str) -> int:
        """How many times ``stage`` was actually executed."""
        return self.misses.get(stage, 0)

    def reused(self, stage: str) -> int:
        """How many executions were avoided for ``stage``."""
        return self.hits.get(stage, 0) + self.disk_hits.get(stage, 0)

    def stage_seconds(self, stage: str) -> float:
        """Wall-clock self time spent computing ``stage``."""
        return self.seconds.get(stage, 0.0)

    def as_dict(self) -> dict[str, dict]:
        return {
            "hits": dict(self.hits),
            "disk_hits": dict(self.disk_hits),
            "misses": dict(self.misses),
            "seconds": dict(self.seconds),
            "waits": dict(self.waits),
            "remote": dict(self.remote),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, dict]) -> "CacheStats":
        return cls(
            hits=dict(payload.get("hits", {})),
            disk_hits=dict(payload.get("disk_hits", {})),
            misses=dict(payload.get("misses", {})),
            seconds=dict(payload.get("seconds", {})),
            waits=dict(payload.get("waits", {})),
            remote=dict(payload.get("remote", {})),
        )

    def summary(self) -> str:
        stages = sorted(
            set(self.hits) | set(self.disk_hits) | set(self.misses)
        )
        parts = []
        for stage in stages:
            part = (
                f"{stage}: {self.computed(stage)} computed, "
                f"{self.reused(stage)} reused"
            )
            if stage in self.seconds:
                part += f", {self.seconds[stage]:.2f}s"
            parts.append(part)
        if self.remote:
            bits = [
                f"{self.remote[event]} {event}"
                for event in ("hits", "misses", "pushes", "errors")
                if self.remote.get(event)
            ]
            if self.remote.get("degraded"):
                bits.append("degraded to local-only")
            if bits:
                parts.append("remote: " + ", ".join(bits))
        return "; ".join(parts) if parts else "empty"


class StageCache:
    """Memoizes stage invocations in memory and (optionally) on disk.

    Args:
        disk_dir: Directory for JSON payloads; None disables the disk
            level.  Layout: ``<disk_dir>/<stage>/<digest>.json``,
            served through :func:`~repro.runner.backends
            .default_backend` (gzip over a locking local directory).
        backend: Explicit :class:`~repro.runner.backends.CacheBackend`
            (overrides the default built from ``disk_dir``).
        remote: Shared read-through/write-through tier: a
            :class:`~repro.runner.backends.RemoteBackend` or an
            endpoint string (directory, ``file://``, or ``http(s)://``
            URL).  Strictly best-effort — outages degrade the cache to
            local-only (see :attr:`CacheStats.remote`), they never
            fail a caller.
        single_flight: Serialize concurrent computes of one missing
            key across processes through the backend's lock file (only
            applies to stages persisted with both serializers).
    """

    def __init__(
        self,
        disk_dir: Optional[Union[str, os.PathLike]] = None,
        backend=None,
        remote: Optional[Union[str, os.PathLike, RemoteBackend]] = None,
        single_flight: bool = True,
    ):
        self._memory: dict[StageKey, Any] = {}
        if backend is None and disk_dir is not None:
            backend = default_backend(disk_dir)
        self.backend = backend
        self.disk_dir = Path(backend.root) if backend is not None else None
        if remote is not None and not isinstance(remote, RemoteBackend):
            remote = RemoteBackend(str(remote))
        self.remote = remote
        self.single_flight = single_flight
        self.stats = CacheStats()
        # Nested-compute bookkeeping for self-time attribution: each
        # frame accumulates the inclusive seconds of its child stages.
        self._child_seconds: list[float] = []

    def get_or_compute(
        self,
        key: StageKey,
        compute: Callable[[], Any],
        to_jsonable: Optional[Callable[[Any], Any]] = None,
        from_jsonable: Optional[Callable[[Any], Any]] = None,
        verify: Optional[Callable[[Any], None]] = None,
    ) -> Any:
        """Return the cached value for ``key``, computing on first use.

        Args:
            key: Stage invocation identity.
            compute: Zero-argument closure producing the value.  Lazy:
                only called on a miss, so upstream stages requested
                inside it are skipped entirely on a hit.
            to_jsonable: If given (with a disk level), persist the
                computed value as JSON.
            from_jsonable: If given (with a disk level), revive a value
                from a persisted payload instead of recomputing.
            verify: Optional validator run over a freshly computed or
                disk-revived value *before* it enters the memory cache
                (raise to reject — e.g.
                :func:`repro.analysis.verify.stage_verifier`).  Memory
                hits are trusted: they were verified on the way in.

        Stages persisted with *both* serializers run under
        single-flight stampede control: concurrent processes missing
        the same key elect one leader through the backend's lock file;
        the rest wait, then load the leader's entry (counted in
        :attr:`CacheStats.waits`).  A leader that crashes mid-compute
        is detected (dead pid / stale lock) and taken over.
        """
        if key in self._memory:
            self.stats.record_hit(key.stage)
            return self._memory[key]
        loadable = (
            self.backend is not None or self.remote is not None
        ) and from_jsonable is not None
        if loadable:
            payload = self.load_payload(key)
            if payload is not None:
                return self._admit(key, payload, from_jsonable, verify)
        lease: Optional[FlightLease] = None
        if (
            self.single_flight
            and self.backend is not None
            and from_jsonable is not None
            and to_jsonable is not None
        ):
            while True:
                lease = self.backend.wait_or_lead(key.stage, key.digest)
                if lease is not None:
                    break
                payload = self.load_payload(key)
                if payload is not None:
                    self.stats.record_wait(key.stage)
                    return self._admit(key, payload, from_jsonable, verify)
                # The leader's entry vanished before we could load it
                # (e.g. a corrupt write was quarantined): loop back and
                # contend for leadership ourselves.
        try:
            self.stats.record_miss(key.stage)
            start = time.perf_counter()
            self._child_seconds.append(0.0)
            try:
                plan = active_plan()
                if plan is not None:
                    plan.check("compute", key)
                value = compute()
            except BaseException as error:
                # Tag the *innermost* stage so isolation layers can
                # report where a point actually died (the tag survives
                # re-raising through enclosing stage frames).
                if not hasattr(error, "_repro_stage"):
                    error._repro_stage = key.stage
                raise
            finally:
                elapsed = time.perf_counter() - start
                nested = self._child_seconds.pop()
                if self._child_seconds:
                    self._child_seconds[-1] += elapsed
                self.stats.record_seconds(key.stage, elapsed - nested)
            if verify is not None:
                verify(value)
            self._memory[key] = value
            if self.backend is not None and to_jsonable is not None:
                self.store_payload(key, to_jsonable(value))
            return value
        finally:
            if lease is not None:
                lease.release()

    def _admit(
        self,
        key: StageKey,
        payload: Any,
        from_jsonable: Callable[[Any], Any],
        verify: Optional[Callable[[Any], None]],
    ) -> Any:
        """Revive, verify, and memoize a loaded disk payload."""
        value = from_jsonable(payload)
        if verify is not None:
            verify(value)
        self._memory[key] = value
        self.stats.record_disk_hit(key.stage)
        return value

    def load_payload(self, key: StageKey) -> Optional[Any]:
        """Read a persisted JSON payload, or None if absent/stale.

        An entry that exists but no longer decodes — or whose sha256
        checksum does not match its payload — is *quarantined*: moved
        to ``<disk_dir>/quarantine/<stage>/`` with a ``.reason.txt``
        sidecar before the miss is reported, so corrupt entries are
        preserved as evidence instead of being silently recomputed
        over.  A local miss falls through to the remote tier (when
        configured); a fetched record is re-persisted locally so the
        next load is local.
        """
        record: Optional[dict] = None
        if self.backend is not None:
            try:
                record = self.backend.load(key.stage, key.digest)
            except CorruptEntry as error:
                self.quarantine(
                    self.backend.entry_path(key.stage, key.digest),
                    error.reason,
                )
                record = None
        if record is None:
            record = self._remote_fetch(key)
        if record is None:
            return None
        if record.get("format") not in SUPPORTED_CACHE_FORMATS:
            return None
        return record.get("value")

    def _remote_fetch(self, key: StageKey) -> Optional[dict]:
        """Read-through from the shared tier; never raises."""
        remote = self.remote
        if remote is None:
            return None
        was_degraded = remote.degraded
        try:
            data = remote.fetch(key.stage, key.digest, key=key)
        except RemoteError:
            self.stats.record_remote("errors")
            self._note_remote_state()
            return None
        self._note_remote_state()
        if data is None:
            if not was_degraded:
                self.stats.record_remote("misses")
            return None
        try:
            record = decode_record(data)
        except CorruptEntry:
            self.stats.record_remote("corrupt")
            return None
        self.stats.record_remote("hits")
        if (
            self.backend is not None
            and record.get("format") in SUPPORTED_CACHE_FORMATS
        ):
            try:
                # Populate the local tier so future loads (and other
                # local workers) skip the network.
                self.backend.store(key.stage, key.digest, record)
            except OSError:
                pass
        return record

    def _remote_push(self, key: StageKey, data: bytes) -> None:
        """Write-through to the shared tier; never raises."""
        remote = self.remote
        if remote is None:
            return
        was_degraded = remote.degraded
        try:
            remote.push(key.stage, key.digest, data, key=key)
        except RemoteError:
            self.stats.record_remote("errors")
        else:
            if not was_degraded:
                self.stats.record_remote("pushes")
        self._note_remote_state()

    def _note_remote_state(self) -> None:
        if self.remote is not None and self.remote.degraded:
            self.stats.mark_remote_degraded()

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a problematic disk entry aside with a reason sidecar.

        Returns the quarantined path (None when nothing could be
        preserved, e.g. the entry vanished concurrently).  When the
        move itself fails (cross-device rename, permissions) the entry
        is copied — or, failing that, unlinked — so a corrupt entry is
        *never* left in place to be re-read forever, and the
        ``.reason.txt`` sidecar is always written when the quarantine
        directory is reachable.  Quarantined entries are counted by
        :meth:`disk_stats` and listed by :meth:`verify`.
        """
        if self.disk_dir is None:
            return None
        path = Path(path)
        target_dir = self.disk_dir / QUARANTINE_DIR / path.parent.name
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            target_dir = None  # type: ignore[assignment]
        target: Optional[Path] = None
        if target_dir is not None:
            candidate = target_dir / path.name
            try:
                os.replace(path, candidate)
                target = candidate
            except FileNotFoundError:
                return None  # vanished concurrently: nothing to keep
            except OSError:
                try:
                    candidate.write_bytes(path.read_bytes())
                    target = candidate
                except OSError:
                    target = None
        # Whatever happened above, the corrupt entry must not survive
        # in place (it would fail every future load identically).
        try:
            path.unlink()
        except OSError:
            pass
        sidecar_base = target
        if sidecar_base is None and target_dir is not None:
            sidecar_base = target_dir / path.name
        if sidecar_base is not None:
            try:
                sidecar_base.with_suffix(".reason.txt").write_text(
                    reason + "\n", encoding="utf-8"
                )
            except OSError:
                pass
        return target

    def store_payload(self, key: StageKey, payload: Any) -> None:
        """Atomically persist a JSON payload for ``key``.

        The record carries a sha256 of its (JSON-normalized) payload;
        the backend's write policy decides the bytes (gzip above the
        threshold by default).  The exact stored bytes are then pushed
        best-effort to the remote tier, when one is configured.
        """
        if self.backend is None:
            return
        record = make_record(key.describe(), payload)
        data = self.backend.store(key.stage, key.digest, record)
        plan = active_plan()
        if plan is not None:
            self._apply_store_faults(plan, key, record)
        self._remote_push(key, data)

    def _apply_store_faults(self, plan, key: StageKey, record: dict) -> None:
        """Damage the just-written entry per the active fault plan."""
        path = self.backend.entry_path(key.stage, key.digest)
        for action in plan.check("store", key):
            if action.op == "corrupt":
                path.write_text("{corrupt", encoding="utf-8")
            elif action.op == "torn":
                # A crash mid-write: only a prefix of the bytes landed.
                data = path.read_bytes()
                path.write_bytes(data[: max(1, len(data) // 2)])
            elif action.op == "flip":
                # Bit-rot: the payload no longer hashes to the
                # recorded checksum.
                damaged = dict(record)
                sha = damaged.get("sha256") or "0" * 64
                head = "1" if sha[0] == "0" else "0"
                damaged["sha256"] = head + sha[1:]
                self.backend.write_bytes(
                    key.stage, key.digest, self.backend.encode(damaged)
                )

    def iter_payloads(self, stage: str) -> Iterator[dict[str, Any]]:
        """Yield all persisted records ({key, value}) for one stage."""
        if self.disk_dir is None:
            return
        stage_dir = self.disk_dir / stage
        if not stage_dir.is_dir():
            return
        for path in sorted(stage_dir.glob("*.json")):
            try:
                record = decode_record(path.read_bytes(), path=path)
            except (OSError, CorruptEntry):
                continue
            if record.get("format") in SUPPORTED_CACHE_FORMATS:
                yield record

    # -- disk administration (``python -m repro cache``) ---------------------

    def _stage_dirs(self) -> list[Path]:
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return []
        return sorted(
            p
            for p in self.disk_dir.iterdir()
            if p.is_dir() and p.name != QUARANTINE_DIR
        )

    def quarantined_count(self) -> int:
        """Number of entries ever quarantined (reason sidecars)."""
        if self.disk_dir is None:
            return 0
        quarantine = self.disk_dir / QUARANTINE_DIR
        if not quarantine.is_dir():
            return 0
        return sum(1 for _ in quarantine.glob("*/*.reason.txt"))

    def backend_health(self) -> dict[str, Any]:
        """Lock/gzip/breaker health of the configured tiers."""
        return {
            "local": (
                self.backend.health() if self.backend is not None else None
            ),
            "remote": (
                self.remote.health() if self.remote is not None else None
            ),
        }

    def disk_stats(self) -> dict[str, Any]:
        """Entry counts, byte sizes, and age range of the disk level.

        Per-stage (and total) ``raw_bytes`` report the uncompressed
        payload sizes next to the stored ``bytes``, so the gzip
        policy's savings are visible; ``backend`` carries the tier
        health report (locks, gzip counters, circuit breaker).
        """
        stages: dict[str, dict[str, Any]] = {}
        total_entries = 0
        total_bytes = 0
        total_raw = 0
        total_compressed = 0
        for stage_dir in self._stage_dirs():
            entries = 0
            size = 0
            raw = 0
            compressed = 0
            oldest: Optional[float] = None
            newest: Optional[float] = None
            for path in stage_dir.glob("*.json"):
                try:
                    stat = path.stat()
                    _, raw_bytes, is_gz = stored_entry_sizes(path)
                except OSError:
                    continue
                entries += 1
                size += stat.st_size
                raw += raw_bytes
                compressed += 1 if is_gz else 0
                mtime = stat.st_mtime
                oldest = mtime if oldest is None else min(oldest, mtime)
                newest = mtime if newest is None else max(newest, mtime)
            if entries:
                stages[stage_dir.name] = {
                    "entries": entries,
                    "bytes": size,
                    "raw_bytes": raw,
                    "compressed_entries": compressed,
                    "oldest_mtime": oldest,
                    "newest_mtime": newest,
                }
                total_entries += entries
                total_bytes += size
                total_raw += raw
                total_compressed += compressed
        return {
            "dir": str(self.disk_dir) if self.disk_dir else None,
            "stages": stages,
            "total_entries": total_entries,
            "total_bytes": total_bytes,
            "total_raw_bytes": total_raw,
            "total_compressed_entries": total_compressed,
            "quarantined": self.quarantined_count(),
            "backend": self.backend_health(),
        }

    def prune(
        self,
        older_than_seconds: Optional[float] = None,
        stage: Optional[str] = None,
        now: Optional[float] = None,
    ) -> int:
        """Delete persisted payloads; returns the number removed.

        Args:
            older_than_seconds: Only remove entries whose mtime is at
                least this old; None removes unconditionally.
            stage: Restrict to one stage directory.
            now: Reference timestamp (testing hook; defaults to
                ``time.time()``).
        """
        reference = time.time() if now is None else now
        removed = 0
        for stage_dir in self._stage_dirs():
            if stage is not None and stage_dir.name != stage:
                continue
            for path in stage_dir.glob("*.json"):
                try:
                    if older_than_seconds is not None:
                        age = reference - path.stat().st_mtime
                        if age < older_than_seconds:
                            continue
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    def migrate(self, stage: Optional[str] = None) -> dict[str, Any]:
        """Rewrite entries to the current format and write policy.

        Legacy (format 1, checksum-less, uncompressed) entries are
        re-encoded in place as current-format records — sha256
        checksum recorded, gzip above the backend's threshold.
        Entries already matching the current policy byte-for-byte are
        left untouched (record encoding and gzip are deterministic, so
        re-running migrate is idempotent).  Undecodable entries are
        quarantined; entries with an *unknown* format are counted
        ``stale`` and left for ``prune``.

        Returns ``{"migrated", "unchanged", "stale", "failed"}``.
        """
        migrated = 0
        unchanged = 0
        stale = 0
        failed: list[str] = []
        if self.backend is None:
            return {
                "migrated": 0, "unchanged": 0, "stale": 0, "failed": [],
            }
        for stage_dir in self._stage_dirs():
            if stage is not None and stage_dir.name != stage:
                continue
            for path in sorted(stage_dir.glob("*.json")):
                try:
                    data = path.read_bytes()
                except OSError:
                    failed.append(str(path))
                    continue
                try:
                    record = decode_record(data, path=path)
                except CorruptEntry as error:
                    self.quarantine(
                        path, f"failed migrate: {error.reason}"
                    )
                    failed.append(str(path))
                    continue
                if record.get("format") not in SUPPORTED_CACHE_FORMATS:
                    stale += 1
                    continue
                fresh = make_record(
                    record.get("key") or {}, record.get("value")
                )
                encoded = self.backend.encode(fresh)
                if encoded == data:
                    unchanged += 1
                    continue
                try:
                    self.backend.write_bytes(
                        stage_dir.name, path.stem, encoded
                    )
                except OSError:
                    failed.append(str(path))
                    continue
                migrated += 1
        return {
            "migrated": migrated,
            "unchanged": unchanged,
            "stale": stale,
            "failed": failed,
        }

    def verify(
        self,
        payload_checks: Optional[
            Mapping[str, Callable[[Any], None]]
        ] = None,
    ) -> dict[str, Any]:
        """Audit disk payloads: decoding, checksums, digest filenames.

        Every record embeds its key's human-readable description;
        rebuilding the :class:`StageKey` from it must reproduce the
        digest the file is named after (canonical JSON is stable under
        a decode/re-encode round trip).  Format >= 2 records must also
        hash to their recorded sha256 — a mismatch is reported under
        ``checksum`` and quarantined with a checksum reason.  Format-1
        legacy records still verify (counted in ``legacy`` as a
        ``cache migrate`` hint).  Returns per-problem lists so callers
        can report or re-prune.

        Args:
            payload_checks: Optional per-stage validators over the
                decoded ``value`` payload (e.g.
                :func:`repro.analysis.verify.lowered_payload_check`
                for the ``lowered`` stage).  A raising validator marks
                the entry ``invalid_payload`` — recorded and reported,
                never propagated, so one corrupt entry doesn't hide
                the rest.
        """
        payload_checks = payload_checks or {}
        checked = 0
        ok = 0
        legacy = 0
        corrupt: list[str] = []
        checksum_bad: list[str] = []
        stale_format: list[str] = []
        mismatched: list[str] = []
        invalid_payload: list[dict[str, str]] = []
        quarantined: list[str] = []
        for stage_dir in self._stage_dirs():
            payload_check = payload_checks.get(stage_dir.name)
            for path in sorted(stage_dir.glob("*.json")):
                checked += 1
                try:
                    record = decode_record(path.read_bytes(), path=path)
                except OSError as error:
                    corrupt.append(str(path))
                    continue
                except CorruptEntry as error:
                    bucket = (
                        checksum_bad
                        if error.kind == "checksum"
                        else corrupt
                    )
                    bucket.append(str(path))
                    moved = self.quarantine(
                        path, f"failed verify: {error.reason}"
                    )
                    if moved is not None:
                        quarantined.append(str(moved))
                    continue
                fmt = record.get("format")
                if fmt not in SUPPORTED_CACHE_FORMATS:
                    stale_format.append(str(path))
                    continue
                if fmt < CACHE_FORMAT_VERSION:
                    legacy += 1
                described = record.get("key") or {}
                try:
                    key = StageKey.make(
                        described["stage"], **described.get("params", {})
                    )
                except (KeyError, TypeError):
                    corrupt.append(str(path))
                    continue
                if (
                    key.stage != stage_dir.name
                    or key.digest != path.stem
                ):
                    mismatched.append(str(path))
                    continue
                if payload_check is not None:
                    try:
                        payload_check(record.get("value"))
                    except Exception as error:
                        invalid_payload.append(
                            {"path": str(path), "error": str(error)}
                        )
                        continue
                ok += 1
        return {
            "checked": checked,
            "ok": ok,
            "legacy": legacy,
            "corrupt": corrupt,
            "checksum": checksum_bad,
            "stale_format": stale_format,
            "mismatched": mismatched,
            "invalid_payload": invalid_payload,
            "quarantined": quarantined,
            "quarantined_total": self.quarantined_count(),
        }

    def clear_memory(self) -> None:
        """Drop live objects (disk payloads survive)."""
        self._memory.clear()

    def __contains__(self, key: StageKey) -> bool:
        return key in self._memory

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: StageKey) -> Path:
        assert self.backend is not None
        return self.backend.entry_path(key.stage, key.digest)
