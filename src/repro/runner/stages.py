"""Explicit, independently-invokable stages of the Figure 4 toolflow.

The monolithic pipeline is split into explicit stages, each memoized
through a :class:`~repro.runner.cache.StageCache` under a
:class:`~repro.runner.keys.StageKey`:

* ``lowered`` — build + Clifford+T lowering of one instance (the only
  stage persisting a whole circuit to disk, so cold processes with a
  disk cache skip re-lowering).
* ``frontend`` — lowered circuit + DAG + logical estimate.
* ``layout`` — sized tiled (double-defect) machine with placement.
* ``braid_plan`` — policy-independent simulation plan for one
  (layout, distance): tasks, prebound routes, DAG arrays (shared by
  all policy points of a design point).
* ``braid_sim`` — braid network simulation for one (policy, distance).
* ``simd_epr`` — Multi-SIMD schedule + pipelined EPR distribution.
* ``scaling`` — power-law scaling model fitted from calibration
  instances (with each instance's compile cached under
  ``scaling_calib`` and its lowered circuit under ``lowered``).
* ``accounting`` — planar/double-defect space-time estimates.

Stage compute closures request their upstream stages *through the
cache*, so a downstream hit (e.g. a braid result revived from disk)
skips the whole prefix.  :func:`run_point` composes the stages for one
grid point and is itself cached under the ``point`` stage, which is
what the sweep runner and the CLI persist and report from.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..apps.registry import get_app
from ..apps.scaling import (
    AppScalingModel,
    PowerLaw,
    calibration_sizes,
    fit_scaling_model,
)
from ..arch.multisimd import MultiSimdMachine, build_multisimd_machine
from ..arch.tiled import TiledMachine, build_tiled_machine
from ..core.resources import (
    DEFAULT_CONSTANTS,
    CommunicationConstants,
    SpaceTimeEstimate,
    estimate_double_defect,
    estimate_planar,
)
from ..frontend.decompose import decompose_circuit
from ..frontend.estimate import LogicalEstimate, estimate_circuit
from ..frontend.schedule import LogicalSchedule
from ..network.braidsim import BraidSimResult, simulate_plan
from ..network.plan import BraidPlan
from ..network.epr import EprPipelineResult
from ..network.policies import POLICIES
from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag
from ..qec.distance import choose_distance
from ..tech import (
    CURRENT,
    INTERMEDIATE,
    OPTIMISTIC,
    Technology,
    technology_for_error_rate,
)
from .cache import StageCache
from .keys import StageKey

__all__ = [
    "FrontendArtifacts",
    "SimdArtifacts",
    "AccountingResult",
    "PointSpec",
    "PointResult",
    "TECH_PRESETS",
    "default_cache",
    "reset_default_cache",
    "set_stage_verification",
    "frontend_key",
    "scaling_key",
    "compute_lowered",
    "compute_frontend",
    "compute_layout",
    "compute_braid_plan",
    "compute_braid",
    "compute_simd",
    "compute_epr",
    "compute_scaling",
    "compute_accounting",
    "run_point",
]

TECH_PRESETS: dict[str, Technology] = {
    "current": CURRENT,
    "intermediate": INTERMEDIATE,
    "optimistic": OPTIMISTIC,
}

_DEFAULT_CACHE = StageCache()


def default_cache() -> StageCache:
    """Process-wide cache shared by ``run_toolflow`` and calibration."""
    return _DEFAULT_CACHE


def reset_default_cache() -> StageCache:
    """Replace the process-wide cache (mainly for tests)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = StageCache()
    return _DEFAULT_CACHE


# ---------------------------------------------------------------------------
# Stage artifacts


@dataclasses.dataclass(frozen=True)
class FrontendArtifacts:
    """Live products of the frontend stage (memory cache only)."""

    circuit: Circuit
    dag: CircuitDag
    logical: LogicalEstimate


@dataclasses.dataclass(frozen=True)
class SimdArtifacts:
    """Live products of the Multi-SIMD sizing stage (memory only)."""

    machine: MultiSimdMachine
    schedule: LogicalSchedule


@dataclasses.dataclass(frozen=True)
class AccountingResult:
    """Space-time estimates for both codes at one design point."""

    planar: SpaceTimeEstimate
    double_defect: SpaceTimeEstimate


# ---------------------------------------------------------------------------
# Stage keys and computations


_VERIFY_STAGES = False


def set_stage_verification(enabled: bool) -> bool:
    """Toggle IR verification of cached stage outputs; returns the old
    setting.

    When enabled, the ``lowered``/``frontend``/``layout``/``braid_plan``
    stages run :func:`repro.analysis.verify.stage_verifier` over every
    freshly computed or disk-revived artifact before it enters the
    cache, raising :class:`repro.analysis.AnalysisError` on a defect
    (``python -m repro run --verify-stages``).  Off by default: the
    plan pass re-derives every route mask, which is measurable on large
    instances.
    """
    global _VERIFY_STAGES
    previous = _VERIFY_STAGES
    _VERIFY_STAGES = bool(enabled)
    return previous


def _stage_verifier(stage: str):
    if not _VERIFY_STAGES:
        return None
    from ..analysis.verify import stage_verifier

    return stage_verifier(stage)


def _resolve(app: str, size: Optional[int]) -> tuple[str, int]:
    spec = get_app(app)
    return spec.name, spec.default_size if size is None else size


def frontend_key(
    app: str, size: Optional[int] = None, inline_depth: Optional[int] = None
) -> StageKey:
    name, size = _resolve(app, size)
    return StageKey.make(
        "frontend", app=name, size=size, inline_depth=inline_depth
    )


def compute_lowered(
    cache: StageCache,
    app: str,
    size: Optional[int] = None,
    inline_depth: Optional[int] = None,
    scaling: bool = False,
) -> Circuit:
    """Build and lower one instance to a flat Clifford+T circuit.

    With ``scaling=True`` the instance comes from the app's
    *scaling-regime* family (``scaling_build``), the circuits the
    calibration fits compile.  The lowered circuit — not just its
    estimate — is persisted to the disk cache level, so a cold process
    resuming a sweep (or recalibrating) revives the circuit instead of
    re-running the builder and the decomposition on the largest
    instances.
    """
    name, size = _resolve(app, size)
    key = StageKey.make(
        "lowered",
        app=name,
        size=size,
        inline_depth=inline_depth,
        scaling=scaling,
    )

    def build() -> Circuit:
        spec = get_app(name)
        base = (
            spec.scaling_circuit(size)
            if scaling
            else spec.circuit(size, inline_depth=inline_depth)
        )
        return decompose_circuit(base)

    return cache.get_or_compute(
        key,
        build,
        to_jsonable=Circuit.to_jsonable,
        from_jsonable=Circuit.from_jsonable,
        verify=_stage_verifier("lowered"),
    )


def compute_frontend(
    cache: StageCache,
    app: str,
    size: Optional[int] = None,
    inline_depth: Optional[int] = None,
) -> FrontendArtifacts:
    """Flatten, decompose and estimate one application instance."""
    name, size = _resolve(app, size)

    def build() -> FrontendArtifacts:
        circuit = compute_lowered(cache, name, size, inline_depth)
        dag = CircuitDag(circuit)
        logical = estimate_circuit(circuit, dag)
        return FrontendArtifacts(circuit=circuit, dag=dag, logical=logical)

    return cache.get_or_compute(
        frontend_key(name, size, inline_depth),
        build,
        # The live DAG stays memory-only; the lowered circuit persists
        # under the nested ``lowered`` stage, and the logical estimate
        # is persisted for cache inspection (nothing revives it --
        # reports read whole grid-point payloads instead).
        to_jsonable=lambda fe: dataclasses.asdict(fe.logical),
        verify=_stage_verifier("frontend"),
    )


def compute_layout(
    cache: StageCache,
    app: str,
    size: Optional[int] = None,
    inline_depth: Optional[int] = None,
    optimize_layout: bool = True,
) -> TiledMachine:
    """Size and place the tiled (double-defect) machine."""
    name, size = _resolve(app, size)
    key = StageKey.make(
        "layout",
        app=name,
        size=size,
        inline_depth=inline_depth,
        optimize_layout=optimize_layout,
    )

    def build() -> TiledMachine:
        fe = compute_frontend(cache, name, size, inline_depth)
        return build_tiled_machine(fe.circuit, optimize_layout=optimize_layout)

    return cache.get_or_compute(
        key, build, verify=_stage_verifier("layout")
    )


def compute_braid_plan(
    cache: StageCache,
    app: str,
    size: Optional[int] = None,
    inline_depth: Optional[int] = None,
    optimize_layout: bool = True,
    distance: int = 5,
) -> BraidPlan:
    """Build (or reuse) the policy-independent braid simulation plan.

    One plan serves every policy point of a (app, size, layout,
    distance) design point: the sweep's multi-policy braid stage pays
    for task building, route binding, and DAG array extraction exactly
    once.  The stage is memory-only (plans hold live circuit/route
    objects); its self time is what ``repro.runner.bench`` reports as
    ``braid_plan``, separating plan builds from pure simulation time.
    """
    name, size = _resolve(app, size)
    key = StageKey.make(
        "braid_plan",
        app=name,
        size=size,
        inline_depth=inline_depth,
        optimize_layout=optimize_layout,
        distance=distance,
    )

    def build() -> BraidPlan:
        fe = compute_frontend(cache, name, size, inline_depth)
        machine = compute_layout(
            cache, name, size, inline_depth, optimize_layout
        )
        return machine.plan(distance, dag=fe.dag)

    return cache.get_or_compute(
        key, build, verify=_stage_verifier("braid_plan")
    )


def compute_braid(
    cache: StageCache,
    app: str,
    size: Optional[int] = None,
    inline_depth: Optional[int] = None,
    policy: int = 6,
    distance: int = 5,
    optimize_layout: Optional[bool] = None,
    engine: str = "flat",
) -> BraidSimResult:
    """Simulate the braid network for one (policy, distance).

    ``optimize_layout`` defaults to the policy's own layout flag
    (Policies 2+ use the interaction-aware layout, as in Figure 6).
    ``engine`` selects the braid engine
    (:data:`repro.network.braidsim.ENGINES`); all engines produce
    bit-identical results, but the engine still keys the stage so
    timing-trajectory runs never serve one engine's cold cost from
    another's cached result.
    """
    name, size = _resolve(app, size)
    try:
        policy_obj = POLICIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown braid policy {policy!r}; available: {sorted(POLICIES)}"
        ) from None
    if optimize_layout is None:
        optimize_layout = policy_obj.optimized_layout
    key = StageKey.make(
        "braid_sim",
        app=name,
        size=size,
        inline_depth=inline_depth,
        policy=policy,
        distance=distance,
        optimize_layout=optimize_layout,
        engine=engine,
    )

    def simulate() -> BraidSimResult:
        plan = compute_braid_plan(
            cache, name, size, inline_depth, optimize_layout, distance
        )
        return simulate_plan(plan, policy_obj, engine=engine)

    return cache.get_or_compute(
        key,
        simulate,
        to_jsonable=dataclasses.asdict,
        from_jsonable=lambda payload: BraidSimResult(**payload),
    )


def compute_simd(
    cache: StageCache,
    app: str,
    size: Optional[int] = None,
    inline_depth: Optional[int] = None,
    regions: int = 4,
) -> SimdArtifacts:
    """Size the Multi-SIMD machine and build its logical schedule."""
    name, size = _resolve(app, size)
    key = StageKey.make(
        "simd", app=name, size=size, inline_depth=inline_depth, regions=regions
    )

    def build() -> SimdArtifacts:
        fe = compute_frontend(cache, name, size, inline_depth)
        machine = build_multisimd_machine(fe.circuit, regions=regions)
        return SimdArtifacts(machine=machine, schedule=machine.schedule(fe.dag))

    return cache.get_or_compute(key, build)


def compute_epr(
    cache: StageCache,
    app: str,
    size: Optional[int] = None,
    inline_depth: Optional[int] = None,
    regions: int = 4,
    distance: int = 5,
    window: int = 64,
) -> EprPipelineResult:
    """Run the pipelined EPR distribution for one (regions, distance)."""
    name, size = _resolve(app, size)
    key = StageKey.make(
        "simd_epr",
        app=name,
        size=size,
        inline_depth=inline_depth,
        regions=regions,
        distance=distance,
        window=window,
    )

    def simulate() -> EprPipelineResult:
        simd = compute_simd(cache, name, size, inline_depth, regions)
        return simd.machine.epr_pipeline(simd.schedule, distance, window=window)

    return cache.get_or_compute(
        key,
        simulate,
        to_jsonable=dataclasses.asdict,
        from_jsonable=lambda payload: EprPipelineResult(**payload),
    )


def scaling_key(
    app: str, sizes: Optional[Sequence[int]] = None
) -> StageKey:
    """Key of one scaling-model fit: app + explicit calibration sizes."""
    name = get_app(app).name
    chosen = tuple(sizes) if sizes is not None else calibration_sizes(name)
    return StageKey.make("scaling", app=name, sizes=chosen)


def compute_scaling(
    cache: StageCache,
    app: str,
    sizes: Optional[Sequence[int]] = None,
) -> AppScalingModel:
    """Fit (or revive) the power-law scaling model for one application.

    The model extrapolates qubit count and depth to the Figure 7-9
    computation sizes.  Each calibration instance's compile+estimate is
    its own ``scaling_calib`` stage keyed on ``(app, size)``, so two
    fits over overlapping size lists — or repeated sweeps — compile
    every instance at most once per cache (and never again once the
    disk level holds it).  The instance's lowered circuit itself goes
    through the ``lowered`` stage (``scaling=True``), which persists it
    to disk: even when only the estimate payloads have been pruned, a
    cold recalibration revives the circuit instead of re-lowering the
    largest instances.
    """
    name = get_app(app).name
    chosen = tuple(sizes) if sizes is not None else calibration_sizes(name)

    def estimate_one(size: int) -> LogicalEstimate:
        key = StageKey.make("scaling_calib", app=name, size=size)
        return cache.get_or_compute(
            key,
            lambda: estimate_circuit(
                compute_lowered(cache, name, size, scaling=True)
            ),
            to_jsonable=dataclasses.asdict,
            from_jsonable=lambda payload: LogicalEstimate(**payload),
        )

    def fit() -> AppScalingModel:
        return fit_scaling_model(
            name, [estimate_one(size) for size in chosen]
        )

    return cache.get_or_compute(
        scaling_key(name, chosen),
        fit,
        to_jsonable=dataclasses.asdict,
        from_jsonable=lambda payload: AppScalingModel(
            app_name=payload["app_name"],
            qubits_vs_ops=PowerLaw(**payload["qubits_vs_ops"]),
            depth_vs_ops=PowerLaw(**payload["depth_vs_ops"]),
            parallelism_factor=payload["parallelism_factor"],
            t_fraction=payload["t_fraction"],
            two_qubit_fraction=payload["two_qubit_fraction"],
            calibration_ops=tuple(payload["calibration_ops"]),
        ),
    )


def compute_accounting(
    cache: StageCache,
    app: str,
    computation_size: float,
    tech: Technology,
    congestion: float,
    constants: CommunicationConstants = DEFAULT_CONSTANTS,
) -> AccountingResult:
    """Space-time accounting for both codes from calibrated inputs.

    The scaling model arrives through the ``scaling`` stage, so its
    calibration circuits compile once per app across a whole sweep.
    The analytic model consumes the measured braid congestion; the EPR
    stall overhead stays a reported metric (it is <= ~4% at the default
    window, Section 8.1) and does not enter the estimates.
    """
    name = get_app(app).name
    key = StageKey.make(
        "accounting",
        app=name,
        computation_size=computation_size,
        tech=tech,
        congestion=congestion,
        constants=constants,
    )

    def estimate() -> AccountingResult:
        scaling = compute_scaling(cache, name)
        planar = estimate_planar(scaling, computation_size, tech, constants)
        dd = estimate_double_defect(
            scaling,
            computation_size,
            tech,
            congestion=congestion,
            constants=constants,
        )
        return AccountingResult(planar=planar, double_defect=dd)

    return cache.get_or_compute(
        key,
        estimate,
        to_jsonable=dataclasses.asdict,
        from_jsonable=lambda payload: AccountingResult(
            planar=SpaceTimeEstimate(**payload["planar"]),
            double_defect=SpaceTimeEstimate(**payload["double_defect"]),
        ),
    )


# ---------------------------------------------------------------------------
# Grid points: one full pipeline pass, cached end to end


@dataclasses.dataclass(frozen=True)
class PointSpec:
    """One design/grid point of the paper's evaluation space.

    Attributes:
        app: Registry application name.
        size: Problem size knob (None = app default).
        inline_depth: Flattening depth (None = fully inlined).
        policy: Braid scheduling policy (0-8).
        regions: SIMD region count for the planar machine.
        tech_name: Technology preset name (ignored if ``error_rate``).
        error_rate: Explicit physical error rate overriding the preset.
        distance: Code distance override (None = derived from the
            frontend's error budget, as ``run_toolflow`` does).
        window: EPR look-ahead window in logical cycles.
        optimize_layout: Tiled layout override (None = policy default).
        engine: Braid engine to simulate with
            (:data:`repro.network.braidsim.ENGINES`); results are
            bit-identical across engines, only timing differs.
    """

    app: str
    size: Optional[int] = None
    inline_depth: Optional[int] = None
    policy: int = 6
    regions: int = 4
    tech_name: str = "intermediate"
    error_rate: Optional[float] = None
    distance: Optional[int] = None
    window: int = 64
    optimize_layout: Optional[bool] = None
    engine: str = "flat"

    def normalized(self) -> "PointSpec":
        """Canonical app name and resolved size, for stable keys."""
        name, size = _resolve(self.app, self.size)
        return dataclasses.replace(self, app=name, size=size)

    def technology(self) -> Technology:
        if self.error_rate is not None:
            return technology_for_error_rate(self.error_rate)
        try:
            return TECH_PRESETS[self.tech_name]
        except KeyError:
            raise KeyError(
                f"unknown technology preset {self.tech_name!r}; "
                f"available: {sorted(TECH_PRESETS)}"
            ) from None

    def key(self) -> StageKey:
        spec = self.normalized()
        return StageKey.make(
            "point",
            app=spec.app,
            size=spec.size,
            inline_depth=spec.inline_depth,
            policy=spec.policy,
            regions=spec.regions,
            tech=spec.technology(),
            distance=spec.distance,
            window=spec.window,
            optimize_layout=spec.optimize_layout,
            engine=spec.engine,
        )

    def to_jsonable(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, payload: dict) -> "PointSpec":
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class PointResult:
    """All pipeline outputs for one grid point (JSON round-trippable).

    ``degraded_from`` names the engine the point was *asked* to run
    with when the fault-tolerance layer fell back to the ``flat``
    engine (results are bit-identical across engines, so the numbers
    are unaffected; only the execution path differs).  It is None for
    points that ran on their requested engine.
    """

    spec: PointSpec
    distance: int
    logical: LogicalEstimate
    braid: BraidSimResult
    epr: EprPipelineResult
    planar: SpaceTimeEstimate
    double_defect: SpaceTimeEstimate
    degraded_from: Optional[str] = None

    @property
    def preferred_code(self) -> str:
        """The code with the smaller qubits x time product."""
        if self.planar.spacetime <= self.double_defect.spacetime:
            return self.planar.code_name
        return self.double_defect.code_name

    def to_jsonable(self) -> dict:
        return {
            "spec": self.spec.to_jsonable(),
            "distance": self.distance,
            "logical": dataclasses.asdict(self.logical),
            "braid": dataclasses.asdict(self.braid),
            "epr": dataclasses.asdict(self.epr),
            "planar": dataclasses.asdict(self.planar),
            "double_defect": dataclasses.asdict(self.double_defect),
            "degraded_from": self.degraded_from,
            "derived": {
                "schedule_to_critical_ratio": (
                    self.braid.schedule_to_critical_ratio
                ),
                "mean_utilization": self.braid.mean_utilization,
                "epr_overhead": self.epr.latency_overhead,
                "preferred_code": self.preferred_code,
            },
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "PointResult":
        return cls(
            spec=PointSpec.from_jsonable(payload["spec"]),
            distance=payload["distance"],
            logical=LogicalEstimate(**payload["logical"]),
            braid=BraidSimResult(**payload["braid"]),
            epr=EprPipelineResult(**payload["epr"]),
            planar=SpaceTimeEstimate(**payload["planar"]),
            double_defect=SpaceTimeEstimate(**payload["double_defect"]),
            degraded_from=payload.get("degraded_from"),
        )


def run_point(
    spec: PointSpec, cache: Optional[StageCache] = None
) -> PointResult:
    """Run (or revive) the full staged pipeline for one grid point."""
    cache = cache if cache is not None else default_cache()
    spec = spec.normalized()

    def compute() -> PointResult:
        tech = spec.technology()
        fe = compute_frontend(cache, spec.app, spec.size, spec.inline_depth)
        distance = (
            spec.distance
            if spec.distance is not None
            else choose_distance(fe.logical.target_pl, tech)
        )
        braid = compute_braid(
            cache,
            spec.app,
            spec.size,
            spec.inline_depth,
            policy=spec.policy,
            distance=distance,
            optimize_layout=spec.optimize_layout,
            engine=spec.engine,
        )
        epr = compute_epr(
            cache,
            spec.app,
            spec.size,
            spec.inline_depth,
            regions=spec.regions,
            distance=distance,
            window=spec.window,
        )
        accounting = compute_accounting(
            cache,
            spec.app,
            fe.logical.computation_size,
            tech,
            congestion=max(1.0, braid.schedule_to_critical_ratio),
        )
        return PointResult(
            spec=spec,
            distance=distance,
            logical=fe.logical,
            braid=braid,
            epr=epr,
            planar=accounting.planar,
            double_defect=accounting.double_defect,
        )

    return cache.get_or_compute(
        spec.key(),
        compute,
        to_jsonable=lambda result: result.to_jsonable(),
        from_jsonable=PointResult.from_jsonable,
    )
