"""Multi-SIMD architecture for planar QEC (Section 4.4, Figure 3a).

"Many qubits undergoing the same operation are clustered in one SIMD
region, and multiple (reconfigurable) SIMD regions can accommodate
heterogeneous types of operations at any cycle."  Communication is by
teleportation; EPR pairs are produced in dedicated factories and
distributed through swap channels, prefetched by the Section 8.1
pipeline.

The SIMD schedule groups dependence-ready operations by gate type and
issues the ``k`` largest groups each logical cycle -- qubit-level
parallelism within a region is free (microwave broadcast), region count
is the constrained resource.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..frontend.schedule import LogicalSchedule
from ..partition.graph import interaction_graph_from_circuit
from ..partition.layout import GridShape, Placement, grid_for, optimized_layout
from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag
from ..qec.codes import PLANAR, SurfaceCode
from ..network.epr import (
    EprPipelineConfig,
    EprPipelineResult,
    demands_from_schedule,
    simulate_epr_pipeline,
)
from ..network.mesh import Router

__all__ = ["MultiSimdMachine", "simd_schedule", "build_multisimd_machine"]


def simd_schedule(
    circuit: Circuit,
    regions: int,
    dag: Optional[CircuitDag] = None,
) -> LogicalSchedule:
    """Multi-SIMD list schedule: k same-gate groups per logical cycle.

    Greedy level scheduler: among dependence-ready operations, pick the
    ``regions`` largest same-mnemonic groups (SIMD regions are
    reconfigurable per cycle), issue them together, repeat.  With
    abundant regions this converges to the ASAP schedule.
    """
    if regions < 1:
        raise ValueError(f"regions must be >= 1, got {regions}")
    dag = dag or CircuitDag(circuit)
    remaining = [dag.in_degree(i) for i in range(dag.num_nodes)]
    ready: set[int] = set(dag.sources())
    cycles: list[tuple[int, ...]] = []
    done = 0
    while done < dag.num_nodes:
        groups: dict[str, list[int]] = {}
        for op in ready:
            groups.setdefault(circuit[op].gate, []).append(op)
        chosen = sorted(
            groups.values(), key=lambda ops: (-len(ops), circuit[ops[0]].gate)
        )[:regions]
        issued = [op for group in chosen for op in sorted(group)]
        if not issued:
            raise RuntimeError("SIMD scheduler stalled with work remaining")
        for op in issued:
            ready.discard(op)
        for op in issued:
            for succ in dag.successors(op):
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    ready.add(succ)
        cycles.append(tuple(issued))
        done += len(issued)
    return LogicalSchedule(circuit, tuple(cycles))


@dataclasses.dataclass(frozen=True)
class MultiSimdMachine:
    """A sized Multi-SIMD machine bound to one circuit.

    Attributes:
        circuit: The (flat, Clifford+T) program.
        regions: SIMD region count.
        region_grid: Grid of regions/memories for distance accounting.
        placement: Qubit -> home memory region site.
        epr_factory: EPR factory site (corner of the region grid).
        code: The planar code model.
    """

    circuit: Circuit
    regions: int
    region_grid: GridShape
    placement: Placement
    epr_factory: Router
    code: SurfaceCode

    def schedule(self, dag: Optional[CircuitDag] = None) -> LogicalSchedule:
        return simd_schedule(self.circuit, self.regions, dag)

    def physical_qubits(self, distance: int, peak_epr_pairs: int = 0) -> int:
        """Data tiles + ancilla region + in-flight EPR pairs, in planar
        tiles (Section 4.3's 1:4 ancilla:data balance covers factories
        and teleport buffers)."""
        data_tiles = self.circuit.num_qubits
        ancilla_tiles = -(-data_tiles // 4)
        epr_tiles = 2 * peak_epr_pairs
        return (data_tiles + ancilla_tiles + epr_tiles) * self.code.tile_qubits(
            distance
        )

    def epr_pipeline(
        self,
        schedule: LogicalSchedule,
        distance: int,
        window: int = 64,
        bandwidth: Optional[int] = None,
    ) -> EprPipelineResult:
        """Run the Section 8.1 pipelined EPR distribution for a schedule.

        The window is given in logical cycles and scaled to error
        correction cycles internally (one logical cycle = d EC cycles on
        the planar lattice).
        """
        demands = demands_from_schedule(
            schedule, self.placement, factory=self.epr_factory
        )
        scaled = [
            dataclasses.replace(d, use_cycle=d.use_cycle * distance)
            for d in demands
        ]
        if bandwidth is None:
            # Provision swap channels for ~2/3 utilization at this
            # program's mean distribution demand (Section 8.1: channel
            # capacity follows demand; parallelism has little effect on
            # pipelinability).
            from .. import network

            model = network.DEFAULT_TELEPORT_MODEL
            ideal = max(1, schedule.length * distance)
            service = sum(
                model.distribution_cycles(
                    self.epr_factory, d.endpoint_a, d.endpoint_b, distance
                )
                for d in demands
            )
            bandwidth = max(4, round(1.5 * service / ideal))
        config = EprPipelineConfig(
            window=window * distance,
            bandwidth=bandwidth,
            distance=distance,
        )
        return simulate_epr_pipeline(
            scaled,
            config,
            factory=self.epr_factory,
            ideal_length=schedule.length * distance,
        )


def build_multisimd_machine(
    circuit: Circuit,
    regions: int = 4,
    code: SurfaceCode = PLANAR,
) -> MultiSimdMachine:
    """Size a Multi-SIMD machine and assign qubits to memory regions.

    Qubits are clustered into memory regions with the interaction-aware
    partitioner (the mapping-level communication reduction of [35]),
    then regions are placed on a near-square grid.
    """
    if regions < 1:
        raise ValueError(f"regions must be >= 1, got {regions}")
    num_qubits = max(circuit.num_qubits, 1)
    grid = grid_for(num_qubits)
    graph = interaction_graph_from_circuit(circuit)
    placement = optimized_layout(graph, grid)
    return MultiSimdMachine(
        circuit=circuit,
        regions=regions,
        region_grid=grid,
        placement=placement,
        epr_factory=(0, 0),
        code=code,
    )
