"""Microarchitectures: Multi-SIMD (planar) and tiled (double-defect)."""

from .multisimd import MultiSimdMachine, build_multisimd_machine, simd_schedule
from .tiled import TiledMachine, build_tiled_machine

__all__ = [
    "MultiSimdMachine",
    "build_multisimd_machine",
    "simd_schedule",
    "TiledMachine",
    "build_tiled_machine",
]
