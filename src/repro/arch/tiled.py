"""Tiled architecture for double-defect QEC (Section 4.5, Figure 3b).

"The tiled architecture assigns one tile per qubit, and opens channels
between them to allow for communication braids. ... we reserve some
tiles for continuous generation of magic states, to be braided to
various points of use."

The machine builder surrounds the data region with a ring of tiles and
distributes magic-state factories around it, sized by the paper's
ancilla-to-data balance, then drives the braid simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..analysis.diagnostics import PlanMismatchError
from ..partition.graph import interaction_graph_from_circuit
from ..partition.layout import GridShape, Placement, grid_for, naive_layout, optimized_layout
from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag
from ..qec.codes import DOUBLE_DEFECT, SurfaceCode
from ..network.braidsim import BraidSimConfig, BraidSimResult, simulate_plan
from ..network.mesh import BraidMesh, Router
from ..network.plan import BraidPlan, braid_plan
from ..network.policies import Policy

__all__ = ["TiledMachine", "build_tiled_machine"]

DATA_TILES_PER_FACTORY = 8
"""One magic-state factory serves ~8 data tiles (the 1:4 ancilla-to-data
tile balance of Section 4.3, given a 12-tile factory amortized over its
service region and shared EPR-free operation)."""


@dataclasses.dataclass(frozen=True)
class TiledMachine:
    """A sized tiled machine bound to one circuit.

    Attributes:
        circuit: The (flat, Clifford+T) program.
        grid: Full tile grid (data interior + factory/channel ring).
        placement: Data-qubit placement (interior tiles).
        factory_routers: Braid endpoints of the factory tiles.
        code: The double-defect code model.
    """

    circuit: Circuit
    grid: GridShape
    placement: Placement
    factory_routers: tuple[Router, ...]
    code: SurfaceCode

    @property
    def data_tiles(self) -> int:
        return len(self.placement.positions)

    @property
    def total_tiles(self) -> int:
        return self.grid.capacity

    def physical_qubits(self, distance: int) -> int:
        """Physical qubit footprint: every tile is a lattice region, and
        factories are 12-tile blocks counted via their tile sites."""
        factory_tiles = len(self.factory_routers) * 12
        return (self.data_tiles + factory_tiles) * self.code.tile_qubits(
            distance
        )

    def plan(
        self,
        distance: int,
        config: Optional[BraidSimConfig] = None,
        dag: Optional[CircuitDag] = None,
    ) -> BraidPlan:
        """Policy-independent simulation plan, memoized per machine.

        All seven Figure 6 policies of one (machine, distance) point
        share a single plan build through the process-wide memo in
        :mod:`repro.network.plan`.
        """
        config = config or BraidSimConfig()
        mesh = BraidMesh(self.grid.rows, self.grid.cols)
        return braid_plan(
            self.circuit,
            self.placement,
            mesh,
            self.code,
            distance,
            self.factory_routers,
            max_detour=config.max_detour,
            dag=dag,
        )

    def simulate(
        self,
        policy: Policy | int,
        distance: int,
        config: Optional[BraidSimConfig] = None,
        dag: Optional[CircuitDag] = None,
        plan: Optional[BraidPlan] = None,
    ) -> BraidSimResult:
        """Run the braid schedule simulation on this machine.

        Routes through :meth:`plan`'s memo, so repeated simulations of
        the same (machine, distance) under different policies reuse one
        precompiled plan.  An explicitly passed ``plan`` must match
        ``distance`` (plans bake the stabilization hold in).
        """
        if plan is None:
            plan = self.plan(distance, config, dag)
        elif plan.distance != distance:
            raise PlanMismatchError(
                f"plan was compiled for distance={plan.distance}, "
                f"simulate was asked for distance={distance}",
                artifact=f"plan for {self.circuit.name!r}",
            )
        return simulate_plan(plan, policy, config=config)


def _ring_sites(grid: GridShape) -> list[tuple[int, int]]:
    """Perimeter tile sites of a grid, clockwise from (0, 0)."""
    rows, cols = grid.rows, grid.cols
    sites = [(0, c) for c in range(cols)]
    sites += [(r, cols - 1) for r in range(1, rows)]
    if rows > 1:
        sites += [(rows - 1, c) for c in range(cols - 2, -1, -1)]
    if cols > 1:
        sites += [(r, 0) for r in range(rows - 2, 0, -1)]
    return sites


def build_tiled_machine(
    circuit: Circuit,
    optimize_layout: bool = True,
    code: SurfaceCode = DOUBLE_DEFECT,
    factories: Optional[int] = None,
) -> TiledMachine:
    """Size and lay out a tiled machine for a circuit.

    The data region is a near-square interior; a one-tile ring around it
    carries braid channels and hosts ``factories`` magic-state factory
    access points, spread evenly (Figure 3b's distributed factories).

    Args:
        circuit: Flat Clifford+T circuit.
        optimize_layout: Apply the Section 6.2 interaction-aware layout
            (policies 2+); otherwise program-order placement.
        code: Surface code model (double-defect by default).
        factories: Factory count; default scales with data tiles.
    """
    num_qubits = max(circuit.num_qubits, 1)
    interior = grid_for(num_qubits)
    grid = GridShape(interior.rows + 2, interior.cols + 2)
    if optimize_layout:
        graph = interaction_graph_from_circuit(circuit)
        inner = optimized_layout(graph, interior)
    else:
        inner = naive_layout(circuit.qubits, interior)
    positions = {
        q: (r + 1, c + 1) for q, (r, c) in inner.positions.items()
    }
    placement = Placement(grid=grid, positions=positions)

    if factories is None:
        factories = max(2, round(num_qubits / DATA_TILES_PER_FACTORY))
    ring = _ring_sites(grid)
    stride = max(1, len(ring) // factories)
    factory_tiles = [ring[(i * stride) % len(ring)] for i in range(factories)]
    mesh = BraidMesh(grid.rows, grid.cols)
    factory_routers = tuple(
        dict.fromkeys(mesh.tile_router(t) for t in factory_tiles)
    )
    return TiledMachine(
        circuit=circuit,
        grid=grid,
        placement=placement,
        factory_routers=factory_routers,
        code=code,
    )
