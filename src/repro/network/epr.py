"""Pipelined just-in-time EPR distribution (Section 8.1).

"Walking the dependency graph, we use look-ahead windows to anticipate
usage points, and launch their communication with appropriate lead
time."  The goal is smooth, low-contention distribution: launch too
early and EPR qubits pile up in the network; launch too late and
teleports stall.

The simulator walks a logical schedule cycle by cycle.  Each operation
that needs a teleport requires one EPR pair, distributed from its
nearest factory over a channel pool of fixed bandwidth (the swap-channel
mesh's aggregate capacity).  A pair occupies qubits from launch until
consumption.  Outputs are the paper's two axes: peak EPR qubit
occupancy (space) and stall cycles (time), as a function of the
look-ahead window.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Optional, Sequence

from ..frontend.schedule import LogicalSchedule
from ..partition.layout import Placement
from .mesh import Router, manhattan
from .teleport import DEFAULT_TELEPORT_MODEL, TeleportModel

__all__ = ["EprDemand", "EprPipelineConfig", "EprPipelineResult",
           "demands_from_schedule", "simulate_epr_pipeline"]


@dataclasses.dataclass(frozen=True)
class EprDemand:
    """One teleport's EPR requirement.

    Attributes:
        op_index: Consuming operation.
        use_cycle: Logical schedule cycle at which the pair is consumed.
        endpoint_a / endpoint_b: Communication endpoints (tile routers).
    """

    op_index: int
    use_cycle: int
    endpoint_a: Router
    endpoint_b: Router


@dataclasses.dataclass(frozen=True)
class EprPipelineConfig:
    """Pipeline knobs.

    Attributes:
        window: Look-ahead in logical cycles; distributions for a use at
            cycle s launch no earlier than cycle ``s - window``.
        bandwidth: Concurrent distributions the swap-channel mesh
            sustains.
        distance: Code distance (scales swap-chain latency).
        model: Teleportation cost model.
    """

    window: int = 32
    bandwidth: int = 8
    distance: int = 9
    model: TeleportModel = DEFAULT_TELEPORT_MODEL

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError(f"window must be >= 0, got {self.window}")
        if self.bandwidth < 1:
            raise ValueError(f"bandwidth must be >= 1, got {self.bandwidth}")
        if self.distance < 1:
            raise ValueError(f"distance must be >= 1, got {self.distance}")


@dataclasses.dataclass(frozen=True)
class EprPipelineResult:
    """Outcome of one pipelined-distribution simulation.

    Attributes:
        schedule_length: Logical schedule length including stalls.
        ideal_length: Schedule length with infinitely fast distribution.
        stall_cycles: Total added cycles waiting for late pairs.
        peak_epr_pairs: Maximum pairs in flight simultaneously (the
            EPR qubit cost is ``peak * model.epr_qubits_per_pair``).
        total_pairs: Pairs distributed over the whole run.
        mean_lifetime: Average cycles from launch to consumption.
    """

    schedule_length: float
    ideal_length: int
    stall_cycles: float
    peak_epr_pairs: int
    total_pairs: int
    mean_lifetime: float

    @property
    def latency_overhead(self) -> float:
        """Fractional schedule stretch vs the ideal (Section 8.1 quotes
        <= ~4% for good windows)."""
        if self.ideal_length == 0:
            return 0.0
        return (self.schedule_length - self.ideal_length) / self.ideal_length

    @property
    def peak_epr_qubits(self) -> int:
        return self.peak_epr_pairs * 2


def demands_from_schedule(
    schedule: LogicalSchedule,
    placement: Placement,
    factory: Router = (0, 0),
) -> list[EprDemand]:
    """Extract teleport demands from a logical schedule.

    Every 2-qubit operation teleports one operand to the other's region;
    every magic-state consumer teleports its magic state in.  Both need
    one EPR pair (Section 4.4: "only EPRs use the communication mesh").
    """
    demands: list[EprDemand] = []
    for cycle, ops in enumerate(schedule.cycles):
        for op_index in ops:
            op = schedule.circuit[op_index]
            if op.arity == 2:
                a = placement.position(op.qubits[0])
                b = placement.position(op.qubits[1])
            elif op.consumes_magic_state:
                a = placement.position(op.qubits[0])
                b = factory
            else:
                continue
            demands.append(EprDemand(op_index, cycle, a, b))
    return demands


def simulate_epr_pipeline(
    demands: Sequence[EprDemand],
    config: EprPipelineConfig,
    factory: Router = (0, 0),
    ideal_length: Optional[int] = None,
) -> EprPipelineResult:
    """Simulate windowed EPR distribution against a channel pool.

    Distribution requests enter a FIFO as their use-cycle comes within
    the look-ahead window; ``bandwidth`` servers process them; a pair
    occupies qubits from (actual) launch until its consuming cycle
    executes.  Stalls push the whole downstream schedule (SIMD regions
    run in lockstep), which the simulation models by tracking the
    current slip between nominal and actual time.
    """
    if ideal_length is None:
        ideal_length = 1 + max((d.use_cycle for d in demands), default=-1)
    ordered = sorted(demands, key=lambda d: (d.use_cycle, d.op_index))
    if not ordered:
        return EprPipelineResult(
            schedule_length=float(ideal_length),
            ideal_length=ideal_length,
            stall_cycles=0.0,
            peak_epr_pairs=0,
            total_pairs=0,
            mean_lifetime=0.0,
        )

    # Channel pool: next-free times of `bandwidth` servers.
    servers = [0.0] * config.bandwidth
    heapq.heapify(servers)
    slip = 0.0  # accumulated stall so far
    launch_times: dict[int, float] = {}
    ready_times: dict[int, float] = {}
    consume_times: dict[int, float] = {}
    cursor = 0  # next demand to launch

    for demand in ordered:
        use_nominal = demand.use_cycle
        # Launch everything whose window has opened by this op's nominal
        # use time (launches happen eagerly as the window slides).
        while cursor < len(ordered):
            candidate = ordered[cursor]
            if candidate.use_cycle - config.window > use_nominal:
                break
            earliest = max(
                candidate.use_cycle - config.window + slip, 0.0
            )
            server_free = heapq.heappop(servers)
            start = max(earliest, server_free)
            duration = config.model.distribution_cycles(
                factory, candidate.endpoint_a, candidate.endpoint_b,
                config.distance,
            )
            finish = start + duration
            heapq.heappush(servers, finish)
            launch_times[candidate.op_index] = start
            ready_times[candidate.op_index] = finish
            cursor += 1
        actual_use = use_nominal + slip
        ready = ready_times[demand.op_index]
        if ready > actual_use:
            slip += ready - actual_use
            actual_use = ready
        consume_times[demand.op_index] = actual_use

    total_pairs = len(ordered)
    stall_cycles = slip
    schedule_length = ideal_length + slip
    lifetimes = [
        consume_times[d.op_index] - launch_times[d.op_index] for d in ordered
    ]
    peak = _peak_concurrent(
        [(launch_times[d.op_index], consume_times[d.op_index]) for d in ordered]
    )
    return EprPipelineResult(
        schedule_length=schedule_length,
        ideal_length=ideal_length,
        stall_cycles=stall_cycles,
        peak_epr_pairs=peak,
        total_pairs=total_pairs,
        mean_lifetime=sum(lifetimes) / len(lifetimes),
    )


def _peak_concurrent(intervals: list[tuple[float, float]]) -> int:
    """Maximum number of overlapping [launch, consume) intervals."""
    events: list[tuple[float, int]] = []
    for start, end in intervals:
        events.append((start, 1))
        events.append((max(end, start), -1))
    events.sort(key=lambda e: (e[0], e[1]))
    peak = current = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak
