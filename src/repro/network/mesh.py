"""Circuit-switched 2D mesh for braid routing.

Section 6.1: "the problem is reduced to simulating a mesh network, with
braids as messages in this network ... the tile corners are routers."
Braids claim every link of their route at once when opened and release
them all when closed; links have capacity one (braids cannot cross,
buffer, or share channels -- Section 4.1).

Routers are the corners of a ``rows x cols`` tile grid, i.e. a
``(rows+1) x (cols+1)`` node grid; the braid endpoint of tile (r, c) is
its top-left corner router (r, c).

Occupancy is a flat bitmask over integer link ids (horizontal links
first, then vertical), so the hot operations of the braid simulator --
"is this route free", "claim these links", "release everything this
braid holds", "how many links are busy" -- are single big-int AND/OR
operations and a popcount instead of per-link hash lookups.  The
object-level API (:meth:`claim` / :meth:`release` / :meth:`is_path_free`
over router paths) is preserved on top of the mask core.
"""

from __future__ import annotations

from typing import Hashable, Sequence

__all__ = ["Router", "Link", "BraidMesh", "path_links", "manhattan"]

Router = tuple[int, int]
Link = frozenset  # frozenset of two adjacent Router nodes
Owner = Hashable


def path_links(path: Sequence[Router]) -> list[Link]:
    """The links traversed by a router path.

    Raises:
        ValueError: If consecutive routers are not mesh neighbors.
    """
    links: list[Link] = []
    for a, b in zip(path, path[1:]):
        if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
            raise ValueError(f"path step {a} -> {b} is not a mesh hop")
        links.append(frozenset((a, b)))
    return links


def manhattan(a: Router, b: Router) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


class BraidMesh:
    """Link-occupancy state of the router grid.

    Tracks which braid (by owner token) holds each link, plus cumulative
    busy-link statistics for the utilization metric of Figure 6.

    Attributes:
        epoch: Monotone counter bumped every time links are released.
            A route search that failed at epoch ``e`` must fail again
            while the epoch is still ``e`` (claims only remove links
            from the free set), which is what lets the simulator skip
            repeated searches for blocked opens.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"mesh needs >= 1x1 tiles, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.router_rows = rows + 1
        self.router_cols = cols + 1
        # Link ids: horizontal (r,c)-(r,c+1) -> r*cols' + c where
        # cols' = router_cols - 1; vertical (r,c)-(r+1,c) follow.
        self._num_h = self.router_rows * (self.router_cols - 1)
        self._occupied = 0  # bitmask over link ids
        self._owner_masks: dict[Owner, int] = {}
        self._busy = 0
        self.epoch = 0
        self._busy_link_cycles = 0
        self._observed_cycles = 0

    # -- topology ------------------------------------------------------------

    @property
    def num_links(self) -> int:
        horizontal = self.router_rows * (self.router_cols - 1)
        vertical = (self.router_rows - 1) * self.router_cols
        return horizontal + vertical

    def in_bounds(self, router: Router) -> bool:
        r, c = router
        return 0 <= r < self.router_rows and 0 <= c < self.router_cols

    def tile_router(self, tile: tuple[int, int]) -> Router:
        """Braid endpoint router of a tile (its top-left corner)."""
        r, c = tile
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValueError(f"tile {tile} outside {self.rows}x{self.cols} grid")
        return (r, c)

    # -- link ids and masks ----------------------------------------------------

    def link_id(self, a: Router, b: Router) -> int:
        """Integer id of the link between two adjacent routers."""
        ra, ca = a
        rb, cb = b
        if ra == rb:  # horizontal
            return ra * (self.router_cols - 1) + min(ca, cb)
        return self._num_h + min(ra, rb) * self.router_cols + ca

    def path_mask(self, path: Sequence[Router]) -> int:
        """Bitmask of the links a router path traverses.

        Raises:
            ValueError: If consecutive routers are not mesh neighbors.
        """
        mask = 0
        cols1 = self.router_cols - 1
        num_h = self._num_h
        router_cols = self.router_cols
        prev = None
        for node in path:
            if prev is not None:
                ra, ca = prev
                rb, cb = node
                if ra == rb:
                    if abs(ca - cb) != 1:
                        raise ValueError(
                            f"path step {prev} -> {node} is not a mesh hop"
                        )
                    mask |= 1 << (ra * cols1 + min(ca, cb))
                elif ca == cb and abs(ra - rb) == 1:
                    mask |= 1 << (num_h + min(ra, rb) * router_cols + ca)
                else:
                    raise ValueError(
                        f"path step {prev} -> {node} is not a mesh hop"
                    )
            prev = node
        return mask

    @property
    def occupied_mask(self) -> int:
        """Bitmask of currently claimed links."""
        return self._occupied

    # -- occupancy ------------------------------------------------------------

    def is_path_free(self, path: Sequence[Router]) -> bool:
        """True when every link on the path is unclaimed and in bounds."""
        if any(not self.in_bounds(r) for r in path):
            return False
        return self.path_mask(path) & self._occupied == 0

    def claim(self, path: Sequence[Router], owner: Owner) -> None:
        """Atomically claim all links of a route for ``owner``.

        Raises:
            ValueError: If any link is already claimed (claims must be
                checked with :meth:`is_path_free` first) or the owner
                already holds a route.
        """
        if owner in self._owner_masks:
            raise ValueError(f"owner {owner!r} already holds a route")
        mask = self.path_mask(path)
        if mask & self._occupied:
            for link in path_links(path):
                if self._occupied >> self.link_id(*link) & 1:
                    raise ValueError(f"link {set(link)} already claimed")
        self.claim_mask(mask, owner)

    def claim_mask(self, mask: int, owner: Owner) -> None:
        """Claim a precomputed link mask for ``owner`` (hot path).

        Raises:
            ValueError: On conflict with claimed links or an owner that
                already holds a route.
        """
        if mask & self._occupied:
            raise ValueError(f"mask conflicts with claimed links for {owner!r}")
        if mask:
            if owner in self._owner_masks:
                raise ValueError(f"owner {owner!r} already holds a route")
            self._owner_masks[owner] = mask
            self._occupied |= mask
            self._busy += mask.bit_count()

    def release(self, owner: Owner) -> int:
        """Release every link held by ``owner``; returns links freed."""
        mask = self._owner_masks.pop(owner, 0)
        if not mask:
            return 0
        self._occupied &= ~mask
        freed = mask.bit_count()
        self._busy -= freed
        self.epoch += 1
        return freed

    def owner_mask(self, owner: Owner) -> int:
        """Bitmask of the links currently held by ``owner`` (0 if none)."""
        return self._owner_masks.get(owner, 0)

    def owner_of(self, link: Link) -> Owner | None:
        bit = 1 << self.link_id(*link)
        if not self._occupied & bit:
            return None
        for owner, mask in self._owner_masks.items():
            if mask & bit:
                return owner
        return None  # pragma: no cover - occupied bits always have owners

    def busy_links(self) -> int:
        return self._busy

    # -- utilization accounting -------------------------------------------------

    def observe_cycle(self) -> None:
        """Record this cycle's busy-link count for utilization stats."""
        self._busy_link_cycles += self._busy
        self._observed_cycles += 1

    @property
    def mean_utilization(self) -> float:
        """Average fraction of busy links per observed cycle (Figure 6's
        'Avg Mesh Utilization')."""
        if self._observed_cycles == 0:
            return 0.0
        return self._busy_link_cycles / (
            self._observed_cycles * self.num_links
        )

    def reset_stats(self) -> None:
        self._busy_link_cycles = 0
        self._observed_cycles = 0

    def __repr__(self) -> str:
        return (
            f"BraidMesh({self.rows}x{self.cols} tiles, "
            f"{self.busy_links()}/{self.num_links} links busy)"
        )
