"""Circuit-switched 2D mesh for braid routing.

Section 6.1: "the problem is reduced to simulating a mesh network, with
braids as messages in this network ... the tile corners are routers."
Braids claim every link of their route at once when opened and release
them all when closed; links have capacity one (braids cannot cross,
buffer, or share channels -- Section 4.1).

Routers are the corners of a ``rows x cols`` tile grid, i.e. a
``(rows+1) x (cols+1)`` node grid; the braid endpoint of tile (r, c) is
its top-left corner router (r, c).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

__all__ = ["Router", "Link", "BraidMesh", "path_links", "manhattan"]

Router = tuple[int, int]
Link = frozenset  # frozenset of two adjacent Router nodes
Owner = Hashable


def path_links(path: Sequence[Router]) -> list[Link]:
    """The links traversed by a router path.

    Raises:
        ValueError: If consecutive routers are not mesh neighbors.
    """
    links: list[Link] = []
    for a, b in zip(path, path[1:]):
        if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
            raise ValueError(f"path step {a} -> {b} is not a mesh hop")
        links.append(frozenset((a, b)))
    return links


def manhattan(a: Router, b: Router) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


class BraidMesh:
    """Link-occupancy state of the router grid.

    Tracks which braid (by owner token) holds each link, plus cumulative
    busy-link statistics for the utilization metric of Figure 6.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"mesh needs >= 1x1 tiles, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.router_rows = rows + 1
        self.router_cols = cols + 1
        self._occupancy: dict[Link, Owner] = {}
        self._busy_link_cycles = 0
        self._observed_cycles = 0

    # -- topology ------------------------------------------------------------

    @property
    def num_links(self) -> int:
        horizontal = self.router_rows * (self.router_cols - 1)
        vertical = (self.router_rows - 1) * self.router_cols
        return horizontal + vertical

    def in_bounds(self, router: Router) -> bool:
        r, c = router
        return 0 <= r < self.router_rows and 0 <= c < self.router_cols

    def tile_router(self, tile: tuple[int, int]) -> Router:
        """Braid endpoint router of a tile (its top-left corner)."""
        r, c = tile
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValueError(f"tile {tile} outside {self.rows}x{self.cols} grid")
        return (r, c)

    # -- occupancy ------------------------------------------------------------

    def is_path_free(self, path: Sequence[Router]) -> bool:
        """True when every link on the path is unclaimed and in bounds."""
        if any(not self.in_bounds(r) for r in path):
            return False
        return all(link not in self._occupancy for link in path_links(path))

    def claim(self, path: Sequence[Router], owner: Owner) -> None:
        """Atomically claim all links of a route for ``owner``.

        Raises:
            ValueError: If any link is already claimed (claims must be
                checked with :meth:`is_path_free` first) or the owner
                already holds a route.
        """
        if owner in self._owner_index():
            raise ValueError(f"owner {owner!r} already holds a route")
        links = path_links(path)
        for link in links:
            if link in self._occupancy:
                raise ValueError(f"link {set(link)} already claimed")
        for link in links:
            self._occupancy[link] = owner

    def release(self, owner: Owner) -> int:
        """Release every link held by ``owner``; returns links freed."""
        mine = [link for link, who in self._occupancy.items() if who == owner]
        for link in mine:
            del self._occupancy[link]
        return len(mine)

    def owner_of(self, link: Link) -> Owner | None:
        return self._occupancy.get(link)

    def busy_links(self) -> int:
        return len(self._occupancy)

    def _owner_index(self) -> set[Owner]:
        return set(self._occupancy.values())

    # -- utilization accounting -------------------------------------------------

    def observe_cycle(self) -> None:
        """Record this cycle's busy-link count for utilization stats."""
        self._busy_link_cycles += len(self._occupancy)
        self._observed_cycles += 1

    @property
    def mean_utilization(self) -> float:
        """Average fraction of busy links per observed cycle (Figure 6's
        'Avg Mesh Utilization')."""
        if self._observed_cycles == 0:
            return 0.0
        return self._busy_link_cycles / (
            self._observed_cycles * self.num_links
        )

    def reset_stats(self) -> None:
        self._busy_link_cycles = 0
        self._observed_cycles = 0

    def __repr__(self) -> str:
        return (
            f"BraidMesh({self.rows}x{self.cols} tiles, "
            f"{self.busy_links()}/{self.num_links} links busy)"
        )
