"""Braid prioritization policies 0--6 (Section 6.3).

Each policy controls three things:

* whether events from different operations may interleave (Policy 0
  executes each operation's event sequence atomically, in program order);
* whether the initial qubit layout is interaction-optimized (Section 6.2);
* how competing events are ordered within a cycle: braid type (closing
  braids release network resources, so close-first helps), criticality
  (transitive dependents), and route length.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

__all__ = ["Policy", "POLICIES", "ALL_POLICIES"]


@dataclasses.dataclass(frozen=True)
class Policy:
    """One braid scheduling policy.

    Attributes:
        number: Paper policy number (0-6).
        description: Paper's one-line summary.
        interleave: Allow events of different ops to interleave.
        optimized_layout: Use the Section 6.2 interaction-aware layout.
        closes_first: Process closing braids before opening braids.
        use_criticality: Rank opens by criticality, highest first.
        use_length: Rank opens by route length, longest first.
        combined_length_rule: Policy 6's refinement -- among the most
            critical braids prefer short ones; among less critical
            braids prefer long ones.
    """

    number: int
    description: str
    interleave: bool = True
    optimized_layout: bool = False
    closes_first: bool = False
    use_criticality: bool = False
    use_length: bool = False
    combined_length_rule: bool = False

    @property
    def name(self) -> str:
        return f"Policy {self.number}"

    def open_sort_key(
        self,
        criticality: Callable[[int], int],
        route_length: Callable[[int], int],
        arrival: Callable[[int], int],
        ready_criticalities: Sequence[int] = (),
    ) -> Callable[[int], tuple]:
        """Build the ready-open ordering key (ascending sort).

        Args:
            criticality: Op index -> transitive dependent count.
            route_length: Op index -> minimal route length.
            arrival: Op index -> FIFO arrival sequence (re-injection
                moves an op to the back).
            ready_criticalities: Criticalities of currently-ready opens
                (used by Policy 6 to split high/low criticality groups).
        """
        if self.combined_length_rule:
            values = sorted(ready_criticalities, reverse=True)
            # "Highest criticality" = top half of the ready set (the
            # boundary value of the upper half, so ties stay together).
            threshold = values[(len(values) - 1) // 2] if values else 0

            def key(op: int) -> tuple:
                crit = criticality(op)
                length = route_length(op)
                if crit >= threshold:
                    return (-crit, length, arrival(op), op)
                return (-crit, -length, arrival(op), op)

            return key
        if self.use_criticality:
            return lambda op: (-criticality(op), arrival(op), op)
        if self.use_length:
            return lambda op: (-route_length(op), arrival(op), op)
        return lambda op: (arrival(op), op)


POLICIES: dict[int, Policy] = {
    policy.number: policy
    for policy in [
        Policy(
            number=0,
            description="No optimization; operations and events in program order",
            interleave=False,
        ),
        Policy(
            number=1,
            description="Interleave events; operations in program order",
        ),
        Policy(
            number=2,
            description="Interleave + interaction-optimized layout",
            optimized_layout=True,
        ),
        Policy(
            number=3,
            description="Interleave + layout + criticality-first",
            optimized_layout=True,
            use_criticality=True,
        ),
        Policy(
            number=4,
            description="Interleave + layout + longest-braid-first",
            optimized_layout=True,
            use_length=True,
        ),
        Policy(
            number=5,
            description="Interleave + layout + closing-braids-first",
            optimized_layout=True,
            closes_first=True,
        ),
        Policy(
            number=6,
            description=(
                "Combined: interleave, layout, closes first, criticality, "
                "short-first for critical / long-first for non-critical"
            ),
            optimized_layout=True,
            closes_first=True,
            use_criticality=True,
            use_length=True,
            combined_length_rule=True,
        ),
    ]
}

ALL_POLICIES: tuple[Policy, ...] = tuple(
    POLICIES[i] for i in sorted(POLICIES)
)
