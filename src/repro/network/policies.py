"""Braid prioritization policies 0--8.

Policies 0--6 are the paper's reactive heuristics (Section 6.3).  Each
controls three things:

* whether events from different operations may interleave (Policy 0
  executes each operation's event sequence atomically, in program order);
* whether the initial qubit layout is interaction-optimized (Section 6.2);
* how competing events are ordered within a cycle: braid type (closing
  braids release network resources, so close-first helps), criticality
  (transitive dependents), and route length.

Policies 7 and 8 extend the same axis with two classical-scheduler
*families* (machinery in :mod:`.policies_sched`): 7 plans periodic
braid issue on a modulo reservation table, 8 wakes ops through a
dependency bit-matrix scoreboard.  The :attr:`Policy.family` field
selects the engine machinery; reactive policies keep the paper's
seed-reference oracle, while the scheduler families are oracle-checked
by the flat-vs-vec differential harness instead (the preserved seed
loop predates them and refuses to run them).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

__all__ = ["Policy", "POLICIES", "ALL_POLICIES"]


@dataclasses.dataclass(frozen=True)
class Policy:
    """One braid scheduling policy.

    Attributes:
        number: Policy number (0-6 from the paper, 7-8 the scheduler
            families).
        description: One-line summary.
        interleave: Allow events of different ops to interleave.
        optimized_layout: Use the Section 6.2 interaction-aware layout.
        closes_first: Process closing braids before opening braids.
        use_criticality: Rank opens by criticality, highest first.
        use_length: Rank opens by route length, longest first.
        combined_length_rule: Policy 6's refinement -- among the most
            critical braids prefer short ones; among less critical
            braids prefer long ones.
        family: Engine machinery selector -- ``"reactive"`` for the
            paper's heuristics, ``"reservation"`` / ``"scoreboard"``
            for the :mod:`.policies_sched` families.
    """

    number: int
    description: str
    interleave: bool = True
    optimized_layout: bool = False
    closes_first: bool = False
    use_criticality: bool = False
    use_length: bool = False
    combined_length_rule: bool = False
    family: str = "reactive"

    @property
    def name(self) -> str:
        return f"Policy {self.number}"

    def open_sort_key(
        self,
        criticality: Callable[[int], int],
        route_length: Callable[[int], int],
        arrival: Callable[[int], int],
        ready_criticalities: Sequence[int] = (),
    ) -> Callable[[int], tuple]:
        """Build the ready-open ordering key (ascending sort).

        Args:
            criticality: Op index -> transitive dependent count.
            route_length: Op index -> minimal route length.
            arrival: Op index -> FIFO arrival sequence (re-injection
                moves an op to the back).
            ready_criticalities: Criticalities of currently-ready opens
                (used by Policy 6 to split high/low criticality groups).
        """
        if self.family == "scoreboard":
            # Matrix wakeup: age is the program index, not the FIFO
            # arrival stamp, so re-injection never reorders.
            return lambda op: (op,)
        if self.family == "reservation":
            # Issue cycles are planned, not ranked; eligibility gating
            # lives in the engines and ties break in program order.
            return lambda op: (op,)
        if self.combined_length_rule:
            values = sorted(ready_criticalities, reverse=True)
            # "Highest criticality" = top half of the ready set (the
            # boundary value of the upper half, so ties stay together).
            threshold = values[(len(values) - 1) // 2] if values else 0

            def key(op: int) -> tuple:
                crit = criticality(op)
                length = route_length(op)
                if crit >= threshold:
                    return (-crit, length, arrival(op), op)
                return (-crit, -length, arrival(op), op)

            return key
        if self.use_criticality:
            return lambda op: (-criticality(op), arrival(op), op)
        if self.use_length:
            return lambda op: (-route_length(op), arrival(op), op)
        return lambda op: (arrival(op), op)


POLICIES: dict[int, Policy] = {
    policy.number: policy
    for policy in [
        Policy(
            number=0,
            description="No optimization; operations and events in program order",
            interleave=False,
        ),
        Policy(
            number=1,
            description="Interleave events; operations in program order",
        ),
        Policy(
            number=2,
            description="Interleave + interaction-optimized layout",
            optimized_layout=True,
        ),
        Policy(
            number=3,
            description="Interleave + layout + criticality-first",
            optimized_layout=True,
            use_criticality=True,
        ),
        Policy(
            number=4,
            description="Interleave + layout + longest-braid-first",
            optimized_layout=True,
            use_length=True,
        ),
        Policy(
            number=5,
            description="Interleave + layout + closing-braids-first",
            optimized_layout=True,
            closes_first=True,
        ),
        Policy(
            number=6,
            description=(
                "Combined: interleave, layout, closes first, criticality, "
                "short-first for critical / long-first for non-critical"
            ),
            optimized_layout=True,
            closes_first=True,
            use_criticality=True,
            use_length=True,
            combined_length_rule=True,
        ),
        Policy(
            number=7,
            description=(
                "Reservation table: modulo-scheduled periodic issue on "
                "per-cycle link-slot tables (VLIW idiom)"
            ),
            optimized_layout=True,
            family="reservation",
        ),
        Policy(
            number=8,
            description=(
                "Matrix scoreboard: dependency bit-matrix wakeup, "
                "closes first, oldest ready op (program order) first"
            ),
            optimized_layout=True,
            closes_first=True,
            family="scoreboard",
        ),
    ]
}

ALL_POLICIES: tuple[Policy, ...] = tuple(
    POLICIES[i] for i in sorted(POLICIES)
)
