"""Reference braid simulator: the pre-optimization event loop, verbatim.

This is the seed implementation of the cycle-accurate braid schedule
simulator, kept as the golden model for the optimized core in
:mod:`repro.network.braidsim`.  The optimized simulator must produce a
bit-identical :class:`~repro.network.braidsim.BraidSimResult` for every
(circuit, placement, policy, distance) input; the equivalence tests in
``tests/network/test_braidsim_golden.py`` and the bench harness
(``python -m repro bench --reference``) both drive this module.

Do not optimize this file.  Its value is that it is the slow, obviously
correct transcription of Sections 6.1 and 6.3: per-event tuple heap
entries, per-attempt route regeneration, per-link occupancy checks.
"""

from __future__ import annotations

import heapq
import itertools
from enum import Enum
from typing import Optional

from ..partition.layout import Placement
from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag
from ..qec.codes import DOUBLE_DEFECT, SurfaceCode
from .braidsim import BraidSimConfig, BraidSimResult
from .events import OpTask, build_tasks
from .mesh import BraidMesh, Router
from .policies import POLICIES, Policy
from .routing import find_free_path

__all__ = ["ReferenceBraidSimulator", "simulate_braids_reference"]


class _Phase(Enum):
    WAITING = "waiting"      # dependencies not met
    READY = "ready"          # next segment wants to open
    HOLDING = "holding"      # route claimed, stabilizing
    CLOSING = "closing"      # hold expired, close event pending
    DONE = "done"


class ReferenceBraidSimulator:
    """Single-run braid schedule simulator (seed implementation)."""

    def __init__(
        self,
        circuit: Circuit,
        placement: Placement,
        mesh: BraidMesh,
        policy: Policy,
        distance: int,
        code: SurfaceCode = DOUBLE_DEFECT,
        factory_routers: tuple[Router, ...] = (),
        config: Optional[BraidSimConfig] = None,
        dag: Optional[CircuitDag] = None,
        tasks: Optional[list[OpTask]] = None,
    ) -> None:
        self.circuit = circuit
        self.mesh = mesh
        self.policy = policy
        self.config = config or BraidSimConfig()
        self.dag = dag or CircuitDag(circuit)
        self.tasks = tasks if tasks is not None else build_tasks(
            circuit, placement, mesh, code, distance, factory_routers
        )
        self.num_ops = len(self.tasks)

        self._phase = [_Phase.WAITING] * self.num_ops
        self._segment_index = [0] * self.num_ops
        self._remaining_preds = [
            self.dag.in_degree(i) for i in range(self.num_ops)
        ]
        self._wait_start = [0] * self.num_ops
        self._arrival = [0] * self.num_ops
        self._arrival_counter = itertools.count()
        self._ready_opens: set[int] = set()
        self._closing: list[int] = []
        # Event heap entries: (time, tiebreak, kind, op) with kinds
        # "expiry", "local", "wake".
        self._events: list[tuple[int, int, str, int]] = []
        self._event_counter = itertools.count()
        self._completion_time = 0
        self._busy_integral = 0
        self._last_time = 0
        self._braids = 0
        self._adaptive = 0
        self._drops = 0
        self._p0_head = 0  # policy-0 program-order cursor

    # -- public API ---------------------------------------------------------

    def run(self) -> BraidSimResult:
        for op in self.dag.sources():
            self._make_ready(op, time=0)
        self._schedule_wake(0)
        time = 0
        while self._events:
            time, _, kind, op = heapq.heappop(self._events)
            if time > self.config.max_cycles:
                raise RuntimeError(
                    f"braid simulation exceeded {self.config.max_cycles} "
                    "cycles; likely livelock"
                )
            self._integrate_busy(time)
            batch = [(kind, op)]
            while self._events and self._events[0][0] == time:
                _, _, k2, o2 = heapq.heappop(self._events)
                batch.append((k2, o2))
            self._process_timestep(time, batch)
        unfinished = [
            i for i in range(self.num_ops) if self._phase[i] is not _Phase.DONE
        ]
        if unfinished:
            raise RuntimeError(
                f"braid simulation stalled with {len(unfinished)} "
                f"unfinished operations (first: {unfinished[:5]}); this "
                "is a simulator bug"
            )
        critical = self._critical_path()
        total_time = max(self._completion_time, 1)
        return BraidSimResult(
            schedule_length=self._completion_time,
            critical_path=critical,
            mean_utilization=(
                self._busy_integral / (total_time * self.mesh.num_links)
            ),
            operations=self.num_ops,
            braids=self._braids,
            adaptive_routes=self._adaptive,
            drops=self._drops,
        )

    # -- internals ------------------------------------------------------------

    def _critical_path(self) -> int:
        finish = [0] * self.num_ops
        for index in range(self.num_ops):
            start = 0
            for pred in self.dag.predecessors(index):
                start = max(start, finish[pred])
            finish[index] = start + self.tasks[index].busy_cycles
        return max(finish, default=0)

    def _integrate_busy(self, now: int) -> None:
        if now > self._last_time:
            self._busy_integral += self.mesh.busy_links() * (
                now - self._last_time
            )
            self._last_time = now

    def _schedule_wake(self, time: int) -> None:
        heapq.heappush(
            self._events, (time, next(self._event_counter), "wake", -1)
        )

    def _schedule_event(self, time: int, kind: str, op: int) -> None:
        heapq.heappush(
            self._events, (time, next(self._event_counter), kind, op)
        )

    def _make_ready(self, op: int, time: int) -> None:
        task = self.tasks[op]
        if task.is_braid:
            self._phase[op] = _Phase.READY
            self._wait_start[op] = time
            self._arrival[op] = next(self._arrival_counter)
            self._ready_opens.add(op)
        else:
            # Local op: runs unconditionally for its duration.
            self._phase[op] = _Phase.HOLDING
            self._schedule_event(time + task.local_cycles, "local", op)

    def _complete(self, op: int, time: int) -> None:
        self._phase[op] = _Phase.DONE
        self._completion_time = max(self._completion_time, time)
        for succ in self.dag.successors(op):
            self._remaining_preds[succ] -= 1
            if self._remaining_preds[succ] == 0:
                self._make_ready(succ, time)

    def _process_timestep(
        self, time: int, batch: list[tuple[str, int]]
    ) -> None:
        for kind, op in batch:
            if kind == "local":
                self._complete(op, time)
            elif kind == "expiry":
                if self._phase[op] is _Phase.HOLDING:
                    self._phase[op] = _Phase.CLOSING
                    self._closing.append(op)
            # "wake" entries only force a timestep.
        self._issue_events(time)

    def _eligible_opens(self) -> list[int]:
        if self.policy.interleave:
            return list(self._ready_opens)
        # Policy 0: the lowest-index incomplete braid op proceeds alone.
        while self._p0_head < self.num_ops and (
            not self.tasks[self._p0_head].is_braid
            or self._phase[self._p0_head] is _Phase.DONE
        ):
            self._p0_head += 1
        head = self._p0_head
        if head < self.num_ops and head in self._ready_opens:
            return [head]
        return []

    def _issue_events(self, time: int) -> None:
        # Fixpoint within the timestep: closes can complete operations,
        # whose successors become ready and may open in the same cycle
        # (the greedy "place as many braids as possible" rule).
        any_release_with_blocked = False
        while True:
            closes = sorted(self._closing)
            self._closing = []
            opens = self._eligible_opens()
            key = self.policy.open_sort_key(
                criticality=self.dag.criticality,
                route_length=lambda op: self.tasks[op].route_length,
                arrival=lambda op: self._arrival[op],
                ready_criticalities=[self.dag.criticality(o) for o in opens],
            )
            opens.sort(key=key)
            if self.policy.closes_first:
                sequence: list[tuple[str, int]] = [
                    ("close", o) for o in closes
                ]
                sequence += [("open", o) for o in opens]
            else:
                # Unprioritized: events interleave by program order.
                sequence = sorted(
                    [("close", o) for o in closes]
                    + [("open", o) for o in opens],
                    key=lambda item: item[1],
                )
            progress = False
            released_any = False
            blocked_any = False
            for kind, op in sequence:
                if kind == "close":
                    self._close_segment(op, time)
                    released_any = True
                    progress = True
                else:
                    opened = self._try_open(op, time)
                    progress |= opened
                    blocked_any |= not opened
            any_release_with_blocked |= released_any and blocked_any
            if not progress or (not self._closing and not self._ready_opens):
                break
        if any_release_with_blocked and self._ready_opens:
            # Links freed this cycle; blocked opens retry next cycle.
            self._schedule_wake(time + 1)

    def _close_segment(self, op: int, time: int) -> None:
        self.mesh.release(op)
        self._segment_index[op] += 1
        if self._segment_index[op] >= len(self.tasks[op].segments):
            self._complete(op, time)
        else:
            self._phase[op] = _Phase.READY
            self._wait_start[op] = time
            self._arrival[op] = next(self._arrival_counter)
            self._ready_opens.add(op)

    def _try_open(self, op: int, time: int) -> bool:
        segment = self.tasks[op].segments[self._segment_index[op]]
        waited = time - self._wait_start[op]
        adaptive = waited >= self.config.adaptive_timeout
        path = find_free_path(
            self.mesh,
            segment.src,
            segment.dst,
            adaptive=adaptive,
            max_detour=self.config.max_detour,
        )
        if path is None:
            if waited >= self.config.drop_timeout:
                # Drop and re-inject at the back of the ready queue.
                self._drops += 1
                self._wait_start[op] = time
                self._arrival[op] = next(self._arrival_counter)
            if not adaptive:
                # Make sure the op is retried once adaptivity unlocks,
                # even if no braid closes in the meantime.
                self._schedule_wake(
                    self._wait_start[op] + self.config.adaptive_timeout
                )
            return False
        if adaptive and len(path) - 1 > segment.min_length:
            self._adaptive += 1
        self.mesh.claim(path, op)
        self._ready_opens.discard(op)
        self._phase[op] = _Phase.HOLDING
        self._braids += 1
        # Open takes this cycle; stabilize for `hold`; then close.
        self._schedule_event(time + 1 + segment.hold, "expiry", op)
        return True


def simulate_braids_reference(
    circuit: Circuit,
    placement: Placement,
    mesh: BraidMesh,
    policy: Policy | int,
    distance: int,
    code: SurfaceCode = DOUBLE_DEFECT,
    factory_routers: tuple[Router, ...] = (),
    config: Optional[BraidSimConfig] = None,
    dag: Optional[CircuitDag] = None,
) -> BraidSimResult:
    """Simulate one policy with the pre-optimization simulator."""
    if isinstance(policy, int):
        policy = POLICIES[policy]
    if policy.family != "reactive":
        raise ValueError(
            f"{policy.name} ({policy.family} family) postdates the "
            "preserved seed loop; its oracle is the flat-vs-vec "
            "differential harness"
        )
    sim = ReferenceBraidSimulator(
        circuit,
        placement,
        mesh,
        policy,
        distance,
        code=code,
        factory_routers=factory_routers,
        config=config,
        dag=dag,
    )
    return sim.run()
