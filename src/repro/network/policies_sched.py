"""Classical-scheduler machinery behind policies 7 and 8.

The paper's seven policies (:mod:`.policies`) are *reactive*: every
timestep they look at the currently ready braids and pick an order.
This module ports two richer machine-scheduler shapes from classical
microarchitecture onto the braid domain, behind the same policy axis:

* **Reservation table** (Policy 7) — the VLIW modulo-scheduling idiom.
  :func:`build_reservation` walks the plan's ops in program order
  (which is topological) and books every braid segment's link mask
  into a :class:`ReservationTable` of ``ii`` modulo cycle slots,
  at the earliest dependence-respecting cycle whose whole occupancy
  window is free.  ``ii`` starts at :func:`ii_lower_bound` — the
  link-resource pressure bound, the braid analogue of
  ``ceil(instructions / units)`` — and grows geometrically when the
  table fragments (iterative modulo scheduling).  The simulator then
  *issues braids on their reserved cycles* instead of reacting per
  event: ops are gated until their reserved cycle, a wake event fires
  exactly then, and by construction the dominant route is free — no
  adaptivity, no drops, no intra-cycle ordering hazards.

* **Matrix scoreboard** (Policy 8) — the dependency-matrix wakeup of
  classical out-of-order schedulers.  :func:`dependency_matrix` packs
  each op's predecessor set into one bit-row (bit ``p`` of row ``s``
  is set iff ``p`` precedes ``s``); a :class:`MatrixScoreboard`
  clears columns as ops retire, so a zero row *is* the wakeup, and a
  ready bitset gives oldest-first (lowest program index) selection in
  one find-first-set per pick.  Rows are packed link-mask style —
  Python big ints here, the same bits as ``<u8`` word arrays in the
  vec engine's :class:`~.braidsim_vec.VecBraidSimulator` flavor.

Both families are policy-*independent* functions of the
:class:`~.plan.BraidPlan` (holds, routes, DAG arrays), so their
artifacts are memoized per plan identity exactly like
:func:`~.braidsim_vec.vec_plan_arrays`, shared by the flat and vec
engines and re-derived independently by the IR verifier
(:func:`repro.analysis.ir_checks.check_sched`).

Timing contract (kept in lockstep with :mod:`.braidsim`): a segment
opened at cycle ``t`` holds its links through the close at
``t + 1 + hold``, so its occupancy *window* is ``hold + 2`` cycles.
Booking the close cycle too makes reservations conservative by one
cycle where a link is handed straight over — and in exchange the
planned schedule is valid under any intra-cycle open/close ordering,
which is what makes flat and vec execution provably identical.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .plan import BraidPlan

__all__ = [
    "MatrixScoreboard",
    "ReservationSchedule",
    "ReservationTable",
    "ScoreboardReadyQueue",
    "build_reservation",
    "dependency_matrix",
    "ii_lower_bound",
    "reservation_schedule",
    "reset_sched_memo",
    "scoreboard_matrix",
]


def _iter_bits(mask: int):
    """Ascending set-bit indices of a big-int mask."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


# ---------------------------------------------------------------------------
# Reservation-table policy (7): modulo-scheduled braid issue


class ReservationTable:
    """Per-cycle link-slot table over ``ii`` modulo cycle slots.

    Slot ``c`` holds the link mask reserved at every absolute cycle
    congruent to ``c`` (mod ``ii``).  :meth:`book` raises on any
    double-booked link-cycle slot — the invariant the property tests
    and the IR verifier re-check by re-booking a finished schedule
    into a fresh table.
    """

    __slots__ = ("ii", "slots")

    def __init__(self, ii: int) -> None:
        if ii < 1:
            raise ValueError(f"initiation interval must be >= 1, got {ii}")
        self.ii = ii
        self.slots: list[int] = [0] * ii

    def conflict(self, cycle: int, length: int, mask: int) -> int:
        """First conflicting window offset, or ``-1`` when free.

        A nonempty mask whose window exceeds ``ii`` overlaps *itself*
        in modulo space, reported as a conflict at offset 0.
        """
        if mask and length > self.ii:
            return 0
        slots = self.slots
        ii = self.ii
        for offset in range(length):
            if slots[(cycle + offset) % ii] & mask:
                return offset
        return -1

    def book(self, cycle: int, length: int, mask: int) -> None:
        """Reserve ``mask`` over ``[cycle, cycle + length)`` or raise."""
        offset = self.conflict(cycle, length, mask)
        if offset >= 0:
            raise ValueError(
                f"link-cycle slot {(cycle + offset) % self.ii} already "
                f"reserved (window [{cycle}, {cycle + length}), "
                f"ii={self.ii})"
            )
        slots = self.slots
        ii = self.ii
        for offset in range(length):
            slots[(cycle + offset) % ii] |= mask


def ii_lower_bound(plan: "BraidPlan") -> int:
    """Resource-pressure lower bound on the initiation interval.

    The busiest link must carry every occupancy window routed over it,
    one per ``ii`` period, so ``ii >= max over links of the summed
    window lengths`` — the braid analogue of the VLIW
    ``ceil(instructions / units)`` bound.
    """
    demand: dict[int, int] = {}
    for segments in plan.segments:
        for seg in segments:
            occupancy = seg[2] + 2  # open + hold cycles + close
            for link in _iter_bits(seg[5]):
                demand[link] = demand.get(link, 0) + occupancy
    return max(demand.values(), default=1)


@dataclasses.dataclass(frozen=True)
class ReservationSchedule:
    """One plan's reserved braid-issue cycles.

    Attributes:
        reserved: Per op, the reserved open cycle of each braid
            segment (empty tuple for local ops).
        finish: Per-op planned completion cycle.
        ii: Achieved initiation interval (table period); always
            ``>= ii_lower``.
        ii_lower: The :func:`ii_lower_bound` the search started from.
        makespan: Planned completion cycle of the whole circuit.
    """

    reserved: tuple[tuple[int, ...], ...]
    finish: tuple[int, ...]
    ii: int
    ii_lower: int
    makespan: int


_MAX_II_ATTEMPTS = 64
"""Geometric ii growth always terminates long before this bound: once
``ii`` exceeds the schedule's absolute span every cycle has its own
slot, so an attempt can only fail while ``ii`` is small."""


def _schedule_at_ii(
    plan: "BraidPlan", ii: int, ii_lower: int
) -> ReservationSchedule | None:
    """One modulo-scheduling attempt at a fixed ``ii`` (None = refit)."""
    table = ReservationTable(ii)
    n = plan.num_ops
    tasks = plan.tasks
    is_braid = plan.is_braid
    successors = plan.successors
    ready = [0] * n
    reserved: list[tuple[int, ...]] = []
    finish = [0] * n
    makespan = 0
    for op in range(n):  # program order is topological
        if not is_braid[op]:
            end = ready[op] + tasks[op].local_cycles
            reserved.append(())
        else:
            cursor = ready[op]
            opens = []
            for seg in plan.segments[op]:
                hold, mask = seg[2], seg[5]
                occupancy = hold + 2
                if mask and occupancy > ii:
                    return None  # window self-overlaps at this ii
                start = cursor
                while True:
                    offset = table.conflict(cursor, occupancy, mask)
                    if offset < 0:
                        break
                    # Skip-ahead: any window anchored in
                    # (cursor, cursor + offset] still covers the
                    # conflicting slot, so jump past it.
                    cursor += offset + 1
                    if cursor - start >= ii:
                        # A full period of anchor classes conflicts:
                        # no cycle ever fits at this ii.
                        return None
                table.book(cursor, occupancy, mask)
                opens.append(cursor)
                cursor += 1 + hold  # the close cycle; completion point
            end = cursor
            reserved.append(tuple(opens))
        finish[op] = end
        if end > makespan:
            makespan = end
        for succ in successors[op]:
            if end > ready[succ]:
                ready[succ] = end
    return ReservationSchedule(
        reserved=tuple(reserved),
        finish=tuple(finish),
        ii=ii,
        ii_lower=ii_lower,
        makespan=makespan,
    )


def build_reservation(plan: "BraidPlan") -> ReservationSchedule:
    """Modulo-schedule every braid segment of ``plan``.

    Iterative modulo scheduling: start at :func:`ii_lower_bound`,
    widen the table geometrically whenever fragmentation leaves some
    segment without a free window, and return the first fit.  The
    result depends only on the plan, never on a policy or config, so
    one schedule serves every engine (see :func:`reservation_schedule`
    for the shared memo).
    """
    ii_lower = ii_lower_bound(plan)
    ii = ii_lower
    for _ in range(_MAX_II_ATTEMPTS):
        schedule = _schedule_at_ii(plan, ii, ii_lower)
        if schedule is not None:
            return schedule
        ii += max(1, ii // 2)
    raise RuntimeError(  # pragma: no cover - see _MAX_II_ATTEMPTS
        f"reservation scheduling failed to converge for "
        f"{plan.circuit.name!r} (ii search reached {ii})"
    )


# ---------------------------------------------------------------------------
# Matrix-scoreboard policy (8): dependency bit-matrix wakeup


def dependency_matrix(plan: "BraidPlan") -> tuple[int, ...]:
    """Predecessor bit-rows: bit ``p`` of row ``s`` iff ``p -> s``.

    Row popcounts equal the plan's in-degrees and columns mirror its
    successor lists — invariants the IR verifier re-checks.  The tuple
    is immutable and shared; simulations copy it into a
    :class:`MatrixScoreboard` before clearing columns.
    """
    rows = [0] * plan.num_ops
    for op, succs in enumerate(plan.successors):
        bit = 1 << op
        for succ in succs:
            rows[succ] |= bit
    return tuple(rows)


class MatrixScoreboard:
    """Mutable per-simulation scoreboard over one dependency matrix.

    ``rows[s]`` holds the still-outstanding predecessors of op ``s``;
    retiring an op clears its column, and a zero row is the wakeup
    condition (cross-checked against the engine's predecessor counts
    by the property tests, and required empty at end of run).
    ``ready`` is the issuable-open bitset the selection reads: oldest
    ready op = lowest set bit, O(1) per pick.
    """

    __slots__ = ("rows", "ready")

    def __init__(self, matrix: Sequence[int]) -> None:
        self.rows: list[int] = list(matrix)
        self.ready = 0

    def retire(self, op: int, successors: Sequence[Sequence[int]]) -> None:
        """Clear column ``op`` (only rows that can hold it: successors)."""
        clear = ~(1 << op)
        rows = self.rows
        for succ in successors[op]:
            rows[succ] &= clear

    def row_clear(self, op: int) -> bool:
        return self.rows[op] == 0

    def outstanding(self) -> int:
        """Rows still holding unresolved dependency bits."""
        return sum(1 for row in self.rows if row)

    def add_ready(self, op: int) -> None:
        self.ready |= 1 << op

    def remove_ready(self, op: int) -> None:
        self.ready &= ~(1 << op)

    def ordered_ready(self) -> list[int]:
        """Ready ops, oldest (lowest program index) first."""
        return list(_iter_bits(self.ready))


class ScoreboardReadyQueue:
    """Flat-engine ready-open queue backed by the scoreboard bitset.

    Implements the incremental-queue protocol of
    :class:`~.braidsim._FifoReadyQueue`; ``ordered`` ignores arrival
    stamps entirely — under the scoreboard family age *is* the program
    index, so a drop/re-inject does not send an op to the back.
    """

    __slots__ = ("_board",)

    def __init__(self, board: MatrixScoreboard) -> None:
        self._board = board

    def add(self, op: int) -> None:
        self._board.add_ready(op)

    def remove(self, op: int) -> None:
        self._board.remove_ready(op)

    def restamp(self, op: int) -> None:
        pass  # program-index age: re-injection keeps the op's slot

    def ordered(self, ready: set[int]) -> list[int]:
        return self._board.ordered_ready()


# ---------------------------------------------------------------------------
# Per-plan memos (the vec_plan_arrays idiom: id-keyed, identity-checked)

SCHED_MEMO_CAPACITY = 8

_RESV_MEMO: "OrderedDict[int, tuple[object, ReservationSchedule]]" = (
    OrderedDict()
)
_MATRIX_MEMO: "OrderedDict[int, tuple[object, tuple[int, ...]]]" = (
    OrderedDict()
)


def _memoized(cache: OrderedDict, plan: "BraidPlan", build):
    key = id(plan)
    entry = cache.get(key)
    if entry is not None and entry[0] is plan:
        cache.move_to_end(key)
        return entry[1]
    value = build(plan)
    cache[key] = (plan, value)
    cache.move_to_end(key)
    while len(cache) > SCHED_MEMO_CAPACITY:
        cache.popitem(last=False)
    return value


def reservation_schedule(plan: "BraidPlan") -> ReservationSchedule:
    """Memoized :func:`build_reservation` (shared flat/vec/verifier)."""
    return _memoized(_RESV_MEMO, plan, build_reservation)


def scoreboard_matrix(plan: "BraidPlan") -> tuple[int, ...]:
    """Memoized :func:`dependency_matrix`."""
    return _memoized(_MATRIX_MEMO, plan, dependency_matrix)


def reset_sched_memo() -> None:
    """Drop both scheduler memos (testing hook)."""
    _RESV_MEMO.clear()
    _MATRIX_MEMO.clear()
