"""Precompiled braid simulation plans, shared across scheduling policies.

The Figure 6 methodology runs the *same* compiled circuit under all
seven scheduling policies.  Everything the braid simulator prepares
that does not depend on the policy — the network tasks from
:func:`~repro.network.events.build_tasks` (including the per-site
nearest-factory resolution), the per-segment dominant route and link
mask bound from the shared :class:`~repro.network.routing.RouteTable`,
the dependence DAG's in-degrees/successor tuples, the policy-independent
critical path, and the lazily materialized criticality array — used to
be rebuilt by ``BraidSimulator.__init__`` once *per policy point*.

A :class:`BraidPlan` packages all of it, built once per
``(circuit, placement, mesh shape, code, distance, max_detour)`` and
reused by every simulation of that design point.  Plans are immutable:
simulators copy the one mutable seed (`in_degrees`) and treat every
other field as read-only, which the mutation-guard tests enforce by
hashing a shared plan's arrays across simulations.

:func:`braid_plan` is the process-wide memo.  Like the route-table
registry it is LRU-bounded (:data:`PLAN_MEMO_CAPACITY` plans), so a
long-lived service sweeping many design points retains a bounded
working set; every hit validates circuit/placement/code *identity*
against the stored plan (an entry keeps its objects alive, so an id
can only match the object it was recorded for) plus the circuit's
length, so a circuit mutated after planning fails loudly instead of
replaying a stale plan.  Hit/build counters are exposed through
:func:`plan_memo_stats`, next to
:func:`~repro.network.routing.route_table_stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..analysis.diagnostics import PlanMismatchError
from ..partition.layout import Placement
from ..qasm.circuit import Circuit
from ..qasm.dag import CircuitDag
from ..qec.codes import DOUBLE_DEFECT, SurfaceCode
from .events import OpTask, build_tasks
from .mesh import BraidMesh, Router
from .routing import RouteTable, route_table

__all__ = [
    "DEFAULT_MAX_DETOUR",
    "BraidPlan",
    "braid_plan",
    "plan_memo_stats",
    "reset_plan_memo",
]

DEFAULT_MAX_DETOUR = 4
"""Staircase detour radius shared by ``BraidSimConfig`` and plan builds."""


class BraidPlan:
    """Immutable, policy-independent simulation plan for one design point.

    Attributes:
        circuit: The flat Clifford+T program.
        placement: Data-qubit placement the tasks were resolved against.
        code: Surface code used for local-op latencies.
        distance: Code distance d (braid stabilization hold).
        rows / cols: Mesh tile shape the routes were compiled for.
        max_detour: Adaptive-routing detour radius of :attr:`routes`.
        dag: The dependence DAG (owner of the lazy criticality array).
        tasks: One :class:`~repro.network.events.OpTask` per operation.
        is_braid: Per-op braid flag.
        route_length: Per-op minimal total route length (policy metric).
        segments: Per-op tuples of ``(src, dst, hold, min_len, dor_path,
            dor_mask)``, dominant route prebound from :attr:`routes`.
        in_degrees: Per-op predecessor counts (simulators copy this).
        successors: Per-op successor index tuples.
        sources: Initially-ready operation indices.
        critical_path: Dependence-limited schedule lower bound (cycles).
        routes: The shared :class:`RouteTable` for adaptive alternatives.

    Treat every field as read-only; plans are shared across simulations.
    """

    __slots__ = (
        "circuit", "placement", "code", "distance", "factory_routers",
        "rows", "cols", "max_detour", "dag", "tasks", "num_ops",
        "is_braid", "route_length", "segments", "in_degrees",
        "successors", "sources", "critical_path", "routes",
    )

    def __init__(self, **fields: object) -> None:
        for name in self.__slots__:
            object.__setattr__(self, name, fields[name])

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BraidPlan is immutable")

    @classmethod
    def build(
        cls,
        circuit: Circuit,
        placement: Placement,
        mesh: BraidMesh,
        code: SurfaceCode = DOUBLE_DEFECT,
        distance: int = 5,
        factory_routers: tuple[Router, ...] = (),
        max_detour: int = DEFAULT_MAX_DETOUR,
        dag: Optional[CircuitDag] = None,
        tasks: Optional[list[OpTask]] = None,
    ) -> "BraidPlan":
        """Compile one plan (no memoization; see :func:`braid_plan`)."""
        if tasks is None:
            tasks = build_tasks(
                circuit, placement, mesh, code, distance, factory_routers
            )
        tasks = tuple(tasks)
        dag = dag or CircuitDag(circuit)
        n = len(tasks)
        successors = dag.successor_tuples()[:n] if n else ()
        in_degrees = tuple(dag.in_degrees()[:n])
        routes: RouteTable = route_table(mesh.rows, mesh.cols, max_detour)
        is_braid = tuple(task.is_braid for task in tasks)
        route_length = tuple(
            task.route_length if task.is_braid else 0 for task in tasks
        )
        segments = []
        for task in tasks:
            infos = []
            for seg in task.segments:
                dor_path, dor_mask = routes.dor(seg.src, seg.dst)
                infos.append(
                    (seg.src, seg.dst, seg.hold, seg.min_length,
                     dor_path, dor_mask)
                )
            segments.append(tuple(infos))
        # Policy-independent critical path: forward ASAP recurrence over
        # the task latencies (identical arithmetic to the per-policy
        # loop it replaces, shared by all simulations of this plan).
        start = [0] * n
        critical = 0
        for index in range(n):  # program order is topological
            finish = start[index] + tasks[index].busy_cycles
            if finish > critical:
                critical = finish
            for succ in successors[index]:
                if finish > start[succ]:
                    start[succ] = finish
        return cls(
            circuit=circuit,
            placement=placement,
            code=code,
            distance=distance,
            factory_routers=tuple(factory_routers),
            rows=mesh.rows,
            cols=mesh.cols,
            max_detour=max_detour,
            dag=dag,
            tasks=tasks,
            num_ops=n,
            is_braid=is_braid,
            route_length=route_length,
            segments=tuple(segments),
            in_degrees=in_degrees,
            successors=successors,
            sources=tuple(dag.sources()),
            critical_path=critical,
            routes=routes,
        )

    def criticality(self) -> list[int]:
        """The shared per-op criticality array (lazy, owned by the DAG).

        Materialized on the first simulation whose policy ranks by
        criticality and shared read-only by every later one.
        """
        return self.dag.criticality_array()


# ---------------------------------------------------------------------------
# Process-wide plan memo

PLAN_MEMO_CAPACITY = 32
"""Bound on memoized plans (a Figure 6 sweep needs 8 live at once)."""

_PLAN_MEMO: "OrderedDict[tuple, BraidPlan]" = OrderedDict()
_PLAN_BUILDS = 0
_PLAN_HITS = 0


def braid_plan(
    circuit: Circuit,
    placement: Placement,
    mesh: BraidMesh,
    code: SurfaceCode = DOUBLE_DEFECT,
    distance: int = 5,
    factory_routers: tuple[Router, ...] = (),
    max_detour: int = DEFAULT_MAX_DETOUR,
    dag: Optional[CircuitDag] = None,
) -> BraidPlan:
    """Memoized :meth:`BraidPlan.build` for the common simulation path.

    Keys on the circuit/placement/code identities plus the remaining
    value parameters, so the seven-policy Figure 6 sweep builds one
    plan per (app, size, layout, distance) and every other policy
    point is a memo hit.  The memo is an LRU bounded by
    :data:`PLAN_MEMO_CAPACITY` (the same discipline as the route-table
    registry): an entry keeps its circuit/placement/code alive, which
    is exactly what makes the id-based key sound — a stored id can
    only ever match the object it was recorded for — and eviction
    only drops the registry's reference, never a plan in use.

    A hit additionally checks the circuit's operation count against
    the plan: cached plans assume the circuit is frozen (everything in
    the staged pipeline is), and appending to a planned circuit would
    otherwise silently replay the stale plan.

    Raises:
        PlanMismatchError: If the memoized circuit changed length since
            its plan was built (still a ``ValueError`` for existing
            callers).
    """
    global _PLAN_BUILDS, _PLAN_HITS
    key = (
        id(circuit), id(placement), mesh.rows, mesh.cols, distance,
        tuple(factory_routers), max_detour, id(code),
    )
    plan = _PLAN_MEMO.get(key)
    if (
        plan is not None
        and plan.circuit is circuit
        and plan.placement is placement
        and plan.code is code
    ):
        if plan.num_ops != len(circuit):
            raise PlanMismatchError(
                f"circuit {circuit.name!r} changed length "
                f"({plan.num_ops} -> {len(circuit)}) after its braid "
                "plan was built; planned circuits must not be mutated",
                artifact=f"plan for {circuit.name!r}",
            )
        _PLAN_HITS += 1
        _PLAN_MEMO.move_to_end(key)
        return plan
    plan = BraidPlan.build(
        circuit, placement, mesh, code, distance,
        factory_routers, max_detour, dag=dag,
    )
    _PLAN_MEMO[key] = plan
    _PLAN_BUILDS += 1
    while len(_PLAN_MEMO) > PLAN_MEMO_CAPACITY:
        _PLAN_MEMO.popitem(last=False)
    return plan


def plan_memo_stats() -> dict[str, int]:
    """Plan-memo counters (reported next to ``route_table_stats``).

    ``builds`` counts actual plan compilations, ``hits`` memo reuses;
    ``plans`` is the live entry count, bounded by ``capacity``.
    """
    return {
        "builds": _PLAN_BUILDS,
        "hits": _PLAN_HITS,
        "plans": len(_PLAN_MEMO),
        "capacity": PLAN_MEMO_CAPACITY,
    }


def reset_plan_memo() -> None:
    """Drop all memoized plans and zero the counters (testing hook)."""
    global _PLAN_BUILDS, _PLAN_HITS
    _PLAN_MEMO.clear()
    _PLAN_BUILDS = 0
    _PLAN_HITS = 0
