"""Teleportation cost model for planar-code communication.

Section 4.1: teleportation is a two-step protocol.  Step 1 -- EPR
distribution -- physically moves entangled pair halves to the endpoints
through swap channels; it is slow (per-hop swap chains) but independent
of program data, hence prefetchable.  Step 2 -- the teleport itself --
is a small constant-latency local interaction (entangle, measure,
Pauli-correct), independent of distance.

Swap-chain parameters follow Oskin et al. [56]: crossing one tile of a
distance-d planar layout takes ~d swap steps (the tile is ~2d-1 sites
wide and a swap chain moves the qubit two sites per 2 cycles, with
error-correction interleaved).
"""

from __future__ import annotations

import dataclasses

from .mesh import Router, manhattan

__all__ = ["TeleportModel", "DEFAULT_TELEPORT_MODEL"]


@dataclasses.dataclass(frozen=True)
class TeleportModel:
    """Latency/footprint model for teleportation-based communication.

    Attributes:
        teleport_cycles: Constant latency of the teleport step (Bell
            measurement + correction), distance-independent.
        swap_cycles_per_tile: Cycles for an EPR half to swap across one
            tile-width of the mesh at distance d is
            ``swap_cycles_per_tile * d``.
        epr_qubits_per_pair: Physical qubits an in-flight EPR pair
            occupies (two encoded halves).
    """

    teleport_cycles: float = 2.0
    swap_cycles_per_tile: float = 1.0
    epr_qubits_per_pair: int = 2

    def __post_init__(self) -> None:
        if self.teleport_cycles <= 0 or self.swap_cycles_per_tile <= 0:
            raise ValueError("teleport model latencies must be positive")
        if self.epr_qubits_per_pair < 1:
            raise ValueError("epr_qubits_per_pair must be >= 1")

    def distribution_cycles(
        self, source: Router, a: Router, b: Router, distance: int
    ) -> float:
        """Cycles to distribute an EPR pair from ``source`` to both
        endpoints (halves travel concurrently; the slower one binds)."""
        if distance < 1:
            raise ValueError(f"distance must be >= 1, got {distance}")
        hops = max(manhattan(source, a), manhattan(source, b))
        return max(1.0, hops * self.swap_cycles_per_tile * distance)

    def communication_cycles(
        self,
        source: Router,
        a: Router,
        b: Router,
        distance: int,
        prefetched: bool,
    ) -> float:
        """End-to-end latency seen by the consuming operation.

        A prefetched pair costs only the constant teleport step; an
        unprefetched one serializes distribution before use.
        """
        if prefetched:
            return self.teleport_cycles
        return (
            self.distribution_cycles(source, a, b, distance)
            + self.teleport_cycles
        )


DEFAULT_TELEPORT_MODEL = TeleportModel()
