"""Route generation: dimension-ordered with adaptive alternatives.

Section 6.1: "we add route adaptivity to a dimension-ordered route and a
drop/re-inject mechanism, both after certain timeouts."  The canonical
route is XY (column-first here); adaptive search widens to YX and to
staircase detours through intermediate rows/columns.

Routes are placement-static: for a fixed mesh shape and detour radius,
the candidate list for a ``(src, dst)`` pair never changes -- only which
candidate is *free* does.  :class:`RouteTable` therefore memoizes every
pair's dimension-ordered route and full candidate list together with
their precomputed link masks, so the simulator's route search reduces to
``mask & occupied`` tests over a cached list instead of regenerating
paths on every attempt.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .mesh import BraidMesh, Router

__all__ = [
    "dor_path",
    "alternative_paths",
    "find_free_path",
    "RouteTable",
    "ROUTE_TABLE_CAPACITY",
    "route_table",
    "route_table_stats",
    "set_route_table_capacity",
]


def _straight(start: int, end: int) -> list[int]:
    step = 1 if end >= start else -1
    return list(range(start, end + step, step)) if start != end else [start]


def dor_path(src: Router, dst: Router) -> list[Router]:
    """Dimension-ordered (X-then-Y) route: move along the row first."""
    path: list[Router] = []
    r0, c0 = src
    r1, c1 = dst
    for c in _straight(c0, c1):
        path.append((r0, c))
    for r in _straight(r0, r1)[1:]:
        path.append((r, c1))
    return path


def _yx_path(src: Router, dst: Router) -> list[Router]:
    r0, c0 = src
    r1, c1 = dst
    path: list[Router] = [(r, c0) for r in _straight(r0, r1)]
    path.extend((r1, c) for c in _straight(c0, c1)[1:])
    return path


def _staircase(src: Router, dst: Router, via_row: int) -> list[Router]:
    """Detour: go to ``via_row`` in the source column, across, then down."""
    r0, c0 = src
    r1, c1 = dst
    path: list[Router] = [(r, c0) for r in _straight(r0, via_row)]
    path.extend((via_row, c) for c in _straight(c0, c1)[1:])
    path.extend((r, c1) for r in _straight(via_row, r1)[1:])
    return path


def _staircase_col(src: Router, dst: Router, via_col: int) -> list[Router]:
    """Detour through an intermediate column (transpose of _staircase)."""
    r0, c0 = src
    r1, c1 = dst
    path: list[Router] = [(r0, c) for c in _straight(c0, via_col)]
    path.extend((r, via_col) for r in _straight(r0, r1)[1:])
    path.extend((r1, c) for c in _straight(via_col, c1)[1:])
    return path


def _dedupe(path: list[Router]) -> list[Router]:
    out: list[Router] = []
    for node in path:
        if not out or out[-1] != node:
            out.append(node)
    return out


def alternative_paths(
    mesh: BraidMesh, src: Router, dst: Router, max_detour: int = 4
) -> Iterator[list[Router]]:
    """Candidate routes in preference order (deterministic).

    Yields the XY route, the YX route, then staircase detours through
    rows increasingly far from the endpoints.  All candidates are simple
    L/Z-shaped paths -- the same family a circuit-switched braid router
    can realize cheaply.
    """
    if src == dst:
        yield [src]
        return
    seen: set[tuple[Router, ...]] = set()
    candidates: list[list[Router]] = [dor_path(src, dst), _yx_path(src, dst)]
    row_low, row_high = min(src[0], dst[0]), max(src[0], dst[0])
    col_low, col_high = min(src[1], dst[1]), max(src[1], dst[1])
    # Interior staircases between the endpoints (minimal length).
    for via_row in range(row_low + 1, row_high):
        candidates.append(_staircase(src, dst, via_row))
    for via_col in range(col_low + 1, col_high):
        candidates.append(_staircase_col(src, dst, via_col))
    # Exterior detours, increasingly far outside the bounding box.
    for offset in range(1, max_detour + 1):
        for via_row in (row_low - offset, row_high + offset):
            if 0 <= via_row < mesh.router_rows:
                candidates.append(_staircase(src, dst, via_row))
        for via_col in (col_low - offset, col_high + offset):
            if 0 <= via_col < mesh.router_cols:
                candidates.append(_staircase_col(src, dst, via_col))
    for candidate in candidates:
        cleaned = tuple(_dedupe(candidate))
        if cleaned not in seen:
            seen.add(cleaned)
            yield list(cleaned)


def find_free_path(
    mesh: BraidMesh,
    src: Router,
    dst: Router,
    adaptive: bool,
    max_detour: int = 4,
) -> list[Router] | None:
    """First available route, or None if all candidates are blocked.

    With ``adaptive=False`` only the dimension-ordered route is tried
    (the pre-timeout behavior of Section 6.1).
    """
    if not adaptive:
        path = _dedupe(dor_path(src, dst))
        return path if mesh.is_path_free(path) else None
    for path in alternative_paths(mesh, src, dst, max_detour):
        if mesh.is_path_free(path):
            return path
    return None


class RouteTable:
    """Memoized routes + link masks for one mesh shape and detour radius.

    Candidate order is exactly :func:`alternative_paths`' order, so a
    scan over :meth:`alternatives` stopping at the first free mask picks
    the same route :func:`find_free_path` would.  Masks depend only on
    the mesh *shape* (the link-id scheme), so one table serves every
    mesh -- and every policy's simulation -- of the same dimensions.
    """

    def __init__(self, rows: int, cols: int, max_detour: int = 4) -> None:
        self.rows = rows
        self.cols = cols
        self.max_detour = max_detour
        self._shape_mesh = BraidMesh(rows, cols)
        self._dor: dict[
            tuple[Router, Router], tuple[tuple[Router, ...], int]
        ] = {}
        self._alts: dict[
            tuple[Router, Router], tuple[tuple[tuple[Router, ...], int], ...]
        ] = {}

    def dor(self, src: Router, dst: Router) -> tuple[tuple[Router, ...], int]:
        """Deduped dimension-ordered route and its link mask."""
        key = (src, dst)
        entry = self._dor.get(key)
        if entry is None:
            path = tuple(_dedupe(dor_path(src, dst)))
            entry = (path, self._shape_mesh.path_mask(path))
            self._dor[key] = entry
        return entry

    def alternatives(
        self, src: Router, dst: Router
    ) -> tuple[tuple[tuple[Router, ...], int], ...]:
        """All candidate routes (DOR first) with precomputed masks."""
        key = (src, dst)
        entry = self._alts.get(key)
        if entry is None:
            mesh = self._shape_mesh
            entry = tuple(
                (tuple(path), mesh.path_mask(path))
                for path in alternative_paths(
                    mesh, src, dst, self.max_detour
                )
            )
            self._alts[key] = entry
        return entry


ROUTE_TABLE_CAPACITY = 16
"""Default bound on distinct mesh shapes kept by :func:`route_table`."""

_ROUTE_TABLES: "OrderedDict[tuple[int, int, int], RouteTable]" = OrderedDict()
_ROUTE_TABLE_CAPACITY = ROUTE_TABLE_CAPACITY


def route_table(rows: int, cols: int, max_detour: int = 4) -> RouteTable:
    """Process-wide :class:`RouteTable` for a mesh shape, LRU-bounded.

    Tables are shared across simulations (the seven-policy Figure 6
    sweep reuses one table per machine shape).  A sweep touches a
    handful of shapes, but a long-lived service churning through many
    mesh dimensions would otherwise grow without bound, so the registry
    keeps only the :data:`ROUTE_TABLE_CAPACITY` most recently used
    shapes and evicts the least recently used beyond that.  Eviction
    only drops the registry's reference: simulators hold their table
    for their whole run, so an evicted table stays alive (and correct)
    until its last user finishes.
    """
    key = (rows, cols, max_detour)
    table = _ROUTE_TABLES.get(key)
    if table is None:
        table = _ROUTE_TABLES[key] = RouteTable(rows, cols, max_detour)
    else:
        _ROUTE_TABLES.move_to_end(key)
    while len(_ROUTE_TABLES) > _ROUTE_TABLE_CAPACITY:
        _ROUTE_TABLES.popitem(last=False)
    return table


def set_route_table_capacity(capacity: int) -> int:
    """Resize the shared route-table LRU; returns the previous bound.

    Shrinking evicts least-recently-used shapes immediately.  Mainly a
    service-tuning and testing hook.
    """
    global _ROUTE_TABLE_CAPACITY
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    previous = _ROUTE_TABLE_CAPACITY
    _ROUTE_TABLE_CAPACITY = capacity
    while len(_ROUTE_TABLES) > _ROUTE_TABLE_CAPACITY:
        _ROUTE_TABLES.popitem(last=False)
    return previous


def route_table_stats() -> dict[str, object]:
    """Shapes currently resident in the LRU (oldest first) + capacity."""
    return {
        "capacity": _ROUTE_TABLE_CAPACITY,
        "shapes": list(_ROUTE_TABLES),
    }
