"""Translation of logical operations into braid-network tasks.

Section 6.1 / Figure 5: a 2-qubit logical operation between double-defect
tiles becomes two braid segments (loop out, loop back), each opened in
one cycle, held ``d`` cycles for syndrome stabilization, and closed in
one cycle.  A T operation consumes a magic state braided in from the
nearest factory tile (Section 4.5).  Single-qubit operations stay local
to their tile.
"""

from __future__ import annotations

import dataclasses

from ..partition.layout import Placement
from ..qasm.circuit import Circuit
from ..qasm.gates import GateKind
from ..qec.codes import SurfaceCode
from .mesh import BraidMesh, Router, manhattan

__all__ = ["BraidSegment", "OpTask", "build_tasks"]


@dataclasses.dataclass(frozen=True)
class BraidSegment:
    """One braid segment: a route claim held for ``hold`` cycles."""

    src: Router
    dst: Router
    hold: int

    @property
    def busy_cycles(self) -> int:
        """Dependence-chain latency of the segment: the open cycle plus
        the stabilization hold.  The close coincides with the cycle in
        which a dependent event may issue, so it adds no chain latency
        (mirroring the simulator's timing exactly -- a zero-contention
        schedule achieves precisely the critical path)."""
        return self.hold + 1

    @property
    def min_length(self) -> int:
        return manhattan(self.src, self.dst)


@dataclasses.dataclass(frozen=True)
class OpTask:
    """Network-level task for one logical operation.

    Attributes:
        index: Operation index in the circuit (program order).
        segments: Braid segments, executed sequentially.  Empty for
            tile-local operations.
        local_cycles: Duration of tile-local work (used when there are
            no segments).
    """

    index: int
    segments: tuple[BraidSegment, ...]
    local_cycles: int

    @property
    def is_braid(self) -> bool:
        return bool(self.segments)

    @property
    def busy_cycles(self) -> int:
        """Dependence-chain latency contribution of this task."""
        if self.is_braid:
            return sum(seg.busy_cycles for seg in self.segments)
        return self.local_cycles

    @property
    def route_length(self) -> int:
        """Minimal total route length (the policy 'length' metric)."""
        return sum(seg.min_length for seg in self.segments)


def _nearest_factory(
    factories: tuple[Router, ...], target: Router
) -> Router:
    if not factories:
        raise ValueError("T operation requires at least one factory site")
    return min(
        factories, key=lambda f: (manhattan(f, target), f)
    )


def _nearest_factory_map(
    factories: tuple[Router, ...], targets: set[Router]
) -> dict[Router, Router]:
    """Nearest factory per distinct target (ties broken by router id).

    Circuits consume magic states at far fewer distinct sites than T
    gates, so resolving each site once beats a per-gate search.
    """
    return {
        target: _nearest_factory(factories, target) for target in targets
    }


def build_tasks(
    circuit: Circuit,
    placement: Placement,
    mesh: BraidMesh,
    code: SurfaceCode,
    distance: int,
    factory_routers: tuple[Router, ...] = (),
) -> list[OpTask]:
    """Build one :class:`OpTask` per circuit operation.

    Args:
        circuit: Flat Clifford+T circuit.
        placement: Data-qubit tile placement.
        mesh: The braid mesh (for endpoint router lookup).
        code: Surface code (for local-op latencies).
        distance: Code distance d (braid stabilization time).
        factory_routers: Router positions of magic-state factories
            (required if the circuit contains T gates).

    Raises:
        ValueError: On composite gates or missing factory sites.
    """
    if distance < 1:
        raise ValueError(f"distance must be >= 1, got {distance}")
    # Resolve per-qubit endpoint routers and the nearest factory per
    # distinct consumption site once, instead of per operation.
    endpoint: dict[str, Router] = {
        q: mesh.tile_router(placement.position(q))
        for q in placement.positions
    }
    magic_sites = {
        endpoint[op.qubits[0]]
        for op in circuit
        if op.consumes_magic_state and op.qubits[0] in endpoint
    }
    nearest = (
        _nearest_factory_map(factory_routers, magic_sites)
        if magic_sites
        else {}
    )
    local_cycles_by_kind: dict[GateKind, int] = {}
    tasks: list[OpTask] = []
    for index, op in enumerate(circuit):
        kind = op.spec.kind
        if kind is GateKind.COMPOSITE:
            raise ValueError(
                f"operation {index} ({op.gate}) must be decomposed before "
                "network simulation"
            )
        if op.arity == 2:
            src = endpoint[op.qubits[0]]
            dst = endpoint[op.qubits[1]]
            segments = (
                BraidSegment(src, dst, hold=distance),
                BraidSegment(src, dst, hold=distance),
            )
            tasks.append(OpTask(index, segments, local_cycles=0))
        elif op.consumes_magic_state:
            target = endpoint[op.qubits[0]]
            factory = nearest[target]
            segments = (BraidSegment(factory, target, hold=distance),)
            tasks.append(OpTask(index, segments, local_cycles=0))
        else:
            cycles = local_cycles_by_kind.get(kind)
            if cycles is None:
                cycles = max(1, round(code.op_cycles(kind, distance)))
                local_cycles_by_kind[kind] = cycles
            tasks.append(OpTask(index, (), local_cycles=cycles))
    return tasks
